//! Vendored, dependency-free JSON (de)serializer over the vendored `serde`
//! value model. Float output uses Rust's shortest-round-trip formatting, so
//! `f64` values survive a write/read cycle bit-exactly (the `float_roundtrip`
//! behaviour of the real crate).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    reason: String,
}

impl Error {
    fn new(reason: impl Into<String>) -> Self {
        Error {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.reason)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the tree contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] when the tree contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the dynamic [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---- writer -------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {f}")));
            }
            // `{}` is shortest-round-trip; force a decimal point so the value
            // re-parses as a float, matching serde_json's output.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                write_sep(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !fields.is_empty() {
                write_sep(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogates are not combined — the workspace never
                        // emits them (keys and messages are ASCII).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Bulk-consume the longest run without a quote or escape,
                // validating UTF-8 over just that run. (`"` and `\` are
                // ASCII, so they can never appear inside a multi-byte
                // UTF-8 sequence — stopping on the raw byte is safe, and
                // the whole string parses in linear time.)
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_float_exact() {
        let xs = vec![0.1f64, -1.0 / 3.0, 1e-300, 12345.678901234567, 1.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1usize, 2usize, 0.5f64), (3, 4, -1.25)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<(usize, usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_rejected() {
        assert!(from_str::<Vec<f64>>("not json").is_err());
        assert!(from_str::<Vec<f64>>("[1, 2").is_err());
        assert!(from_str::<Vec<f64>>("[1] garbage").is_err());
        assert!(from_str::<f64>("\"text\"").is_err());
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\none \"quoted\" \\ tab\t".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nonfinite_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn integers_preserved() {
        let json = to_string(&vec![0usize, 42, usize::MAX]).unwrap();
        let back: Vec<usize> = from_str(&json).unwrap();
        assert_eq!(back, vec![0, 42, usize::MAX]);
    }
}
