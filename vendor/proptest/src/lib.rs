//! Vendored, dependency-free subset of the `proptest` property-testing API.
//!
//! Offline environments cannot fetch the real `proptest`, so this crate
//! reimplements the surface the CirSTAG test suites use: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * No shrinking and no persistence — a failing case panics immediately
//!   with the case number in the thread name context; `.proptest-regressions`
//!   files are ignored.
//! * Case generation is fully deterministic: the RNG is seeded from the test
//!   name and case index, so failures reproduce across runs and machines.

use std::ops::{Range, RangeInclusive};

// ---- deterministic test RNG ---------------------------------------------

/// SplitMix64-based generator used to drive strategies. Deterministic for a
/// given (test name, case index) pair.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name and case index (FNV-1a over the name, mixed
    /// with the case number).
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` via rejection sampling (no modulo bias).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below: empty bound");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

// ---- strategy trait and combinators -------------------------------------

/// A recipe for generating test values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.u64_below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.u64_below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed length or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection::vec");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from the size
    /// specification.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo
                + if span <= 1 {
                    0
                } else {
                    rng.u64_below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size` (a `usize` for exact length, or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---- runner -------------------------------------------------------------

/// Runner configuration. Only `cases` is honoured by this implementation.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Executes `body` once per case with a deterministic per-case RNG. Invoked
/// by the [`proptest!`] macro; assertion failures panic with the case index
/// attached so the exact input is reproducible.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng),
{
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::for_case(name, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest: test `{name}` failed at case {case}/{}",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pattern in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test (panic-based in this
/// implementation, matching `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test (panic-based, matching
/// `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Common imports: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..2000 {
            let x = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = crate::Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec((0usize..100, -1.0f64..1.0), 0..20);
        let mut a = crate::TestRng::for_case("det", 5);
        let mut b = crate::TestRng::for_case("det", 5);
        let va = crate::Strategy::generate(&strat, &mut a);
        let vb = crate::Strategy::generate(&strat, &mut b);
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() == 0.0);
        }
    }

    #[test]
    fn vec_fixed_length() {
        let strat = crate::collection::vec(0.0f64..1.0, 12usize);
        let mut rng = crate::TestRng::for_case("fixed", 1);
        assert_eq!(crate::Strategy::generate(&strat, &mut rng).len(), 12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_with_tuple_pattern((a, b) in (0usize..10, 0usize..10), extra in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert!(b < 10);
            prop_assert!((1..4).contains(&extra), "extra {}", extra);
        }

        #[test]
        fn macro_with_mapped_strategy(v in crate::collection::vec(0u64..5, 3usize).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }
    }
}
