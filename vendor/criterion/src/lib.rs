//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! Offline environments cannot fetch the real `criterion`, so this crate
//! provides a source-compatible harness for the workspace's `harness = false`
//! benches: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Statistics are intentionally simple — per benchmark it runs a short
//! warm-up, takes a bounded number of wall-clock samples, and reports the
//! median per-iteration time. There are no plots, no saved baselines, and no
//! outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box` if they prefer it
/// over `std::hint::black_box`.
pub use std::hint::black_box;

/// Target wall-clock budget for the measurement phase of one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
/// Warm-up budget before sampling starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(120);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier (e.g. `retime_1pin/2000`).
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter's display form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured per-iteration durations, one per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly: a short warm-up, then `sample_size`
    /// samples (each sample batches enough iterations to be measurable) or
    /// until the wall-clock budget runs out, whichever comes first.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up; also establishes a per-iteration estimate for batching.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= WARMUP_BUDGET || warm_iters >= 1000 {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed() / warm_iters;

        // Batch so each sample takes roughly budget / sample_size, at least
        // one iteration.
        let per_sample = MEASURE_BUDGET / self.sample_size as u32;
        let batch = if est_per_iter.is_zero() {
            1000
        } else {
            (per_sample.as_nanos() / est_per_iter.as_nanos().max(1)).clamp(1, 100_000) as u32
        };

        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
            if measure_start.elapsed() >= MEASURE_BUDGET * 2 {
                break;
            }
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, label);
        match bencher.median() {
            Some(m) => println!("{full:<48} time: [{}]", format_duration(m)),
            None => println!("{full:<48} time: [no samples]"),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (provided for API compatibility; output is printed as
    /// benchmarks run).
    pub fn finish(self) {}
}

/// Benchmark driver; one instance is threaded through all group functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            _criterion: self,
        };
        let mut f = f;
        group.run(&id.label, &mut f);
        self
    }
}

/// Defines a benchmark group function that runs each target with a shared
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo's bench runner passes flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("retime", 2000).label, "retime/2000");
        assert_eq!(BenchmarkId::from_parameter(1024).label, "1024");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut group = Criterion::default();
        let mut g = group.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
    }
}
