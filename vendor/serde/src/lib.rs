//! Vendored, dependency-free subset of the `serde` data model.
//!
//! Offline environments cannot fetch the real `serde` + derive machinery, so
//! this crate provides a small value-tree model: types convert to and from
//! [`Value`], and the sibling vendored `serde_json` crate renders/parses the
//! tree as JSON. The [`impl_serde_struct!`] macro replaces
//! `#[derive(Serialize, Deserialize)]` for plain named-field structs.

use std::fmt;

/// A dynamically-typed serialization tree (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate to round-trip values above `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered map (insertion order preserved for stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Deserializes the field `name` of an object.
    ///
    /// # Errors
    ///
    /// Fails when `self` is not an object, the field is missing, or the field
    /// fails to deserialize as `T`.
    pub fn field<T: Deserialize>(&self, name: &str) -> Result<T, DeError> {
        match self.get(name) {
            Some(v) => {
                T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {}", e.reason)))
            }
            None => Err(DeError::new(format!("missing field `{name}`"))),
        }
    }

    /// Like [`Value::field`], but substitutes `default` when the field is
    /// absent — used for forward-compatible additions to stored formats.
    ///
    /// # Errors
    ///
    /// Fails when the field is present but malformed.
    pub fn field_or<T: Deserialize>(&self, name: &str, default: T) -> Result<T, DeError> {
        match self.get(name) {
            Some(v) => {
                T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {}", e.reason)))
            }
            None => Ok(default),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable reason.
#[derive(Debug, Clone)]
pub struct DeError {
    /// What went wrong.
    pub reason: String,
}

impl DeError {
    /// Creates an error from any displayable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        DeError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::new(format!(
                "expected number, got {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i64, i32, i16, i8, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::new(format!(
                        "expected array of {LEN} elements, got {}",
                        items.len()
                    ))),
                    other => Err(DeError::new(format!(
                        "expected array, got {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Implements `Serialize`/`Deserialize` for a named-field struct, replacing
/// `#[derive(Serialize, Deserialize)]`:
///
/// ```ignore
/// serde::impl_serde_struct!(ParamState { rows, cols, data });
/// ```
///
/// Every listed field must itself implement the two traits; objects with
/// missing fields are rejected at deserialization time.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                if !matches!(v, $crate::Value::Object(_)) {
                    return Err($crate::DeError::new(concat!(
                        "expected object for ",
                        stringify!($ty)
                    )));
                }
                Ok(Self {
                    $($field: v.field(stringify!($field))?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: usize,
        b: Vec<f64>,
    }
    impl_serde_struct!(Demo { a, b });

    #[test]
    fn struct_roundtrip() {
        let d = Demo {
            a: 3,
            b: vec![1.5, -2.0],
        };
        let v = d.to_value();
        assert_eq!(Demo::from_value(&v).unwrap(), d);
    }

    #[test]
    fn missing_field_rejected() {
        let v = Value::Object(vec![("a".to_string(), Value::UInt(1))]);
        assert!(Demo::from_value(&v).is_err());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1usize, 2usize, 3.5f64);
        let v = t.to_value();
        assert_eq!(<(usize, usize, f64)>::from_value(&v).unwrap(), t);
        assert!(<(usize, usize)>::from_value(&v).is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(usize::from_value(&Value::Float(4.0)).unwrap(), 4);
        assert!(usize::from_value(&Value::Float(4.5)).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
    }
}
