//! Vendored, dependency-free data-parallelism layer with a rayon-flavoured
//! API surface.
//!
//! Offline environments cannot fetch the real `rayon`, so this crate provides
//! the small subset the CirSTAG workspace needs: a persistent global worker
//! pool, a soft thread-count configuration ([`set_num_threads`] /
//! [`ThreadPoolBuilder`]), and deterministic indexed primitives
//! ([`par_map_indexed`], [`par_chunks_mut`], [`join`]).
//!
//! # Design notes
//!
//! * **Persistent pool, soft config.** Worker threads are spawned lazily and
//!   kept alive for the process lifetime. The thread count is an atomic that
//!   may be changed at any time (unlike real rayon's one-shot global build);
//!   oversubscription beyond the physical core count is allowed, which keeps
//!   1/2/N-thread determinism tests meaningful on single-core machines.
//! * **Determinism by construction.** [`par_map_indexed`] writes result `i`
//!   into slot `i`; work distribution order never affects output order or any
//!   floating-point reduction order, so results are bit-identical for every
//!   thread count.
//! * **No nested pool scheduling.** A parallel region entered from inside
//!   another parallel region runs inline on the current thread (the shared
//!   index counter means one participant can drain the whole region). This
//!   rules out cross-region wait cycles without a work-stealing scheduler.
//! * All `unsafe` in the workspace's parallel stack is confined to this
//!   crate; the consuming crates stay `#![forbid(unsafe_code)]`.

use std::cell::Cell;
use std::fmt;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on helper threads, a backstop against runaway configuration.
const MAX_HELPERS: usize = 255;

/// Requested thread count; `0` means "use all available cores".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing inside a parallel region; nested
    /// regions then run inline instead of re-entering the pool.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Sets the global thread count. `0` restores the default (all cores).
///
/// Unlike real rayon this is a soft setting: it may be called repeatedly and
/// takes effect for subsequent parallel regions. Values above the physical
/// core count are honoured (oversubscription).
pub fn set_num_threads(n: usize) {
    CONFIGURED_THREADS.store(n.min(MAX_HELPERS + 1), Ordering::Relaxed);
}

/// Returns the thread count parallel regions will use: the configured value,
/// or the number of available cores when unset (minimum 1).
pub fn current_num_threads() -> usize {
    match CONFIGURED_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// True when called from code already running inside a parallel region
/// (including pool worker threads executing a task).
pub fn in_parallel_region() -> bool {
    IN_REGION.with(Cell::get)
}

/// Error type for [`ThreadPoolBuilder::build_global`]; kept for rayon API
/// compatibility, never actually produced by this implementation.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to configure global thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// rayon-compatible builder for the global pool configuration.
///
/// ```ignore
/// rayon::ThreadPoolBuilder::new().num_threads(8).build_global()?;
/// ```
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration (all cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` threads; `0` means all available cores.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Applies the configuration globally.
    ///
    /// # Errors
    ///
    /// Never fails in this implementation; the `Result` mirrors real rayon so
    /// call sites stay source-compatible. Repeated calls are allowed and
    /// simply update the soft thread-count setting.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        set_num_threads(self.num_threads);
        Ok(())
    }
}

// ---- countdown latch ----------------------------------------------------

struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Pairing the notify with the lock prevents a missed wakeup
            // between the waiter's check and its wait.
            let _guard = self.lock.lock().unwrap();
            self.cond.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.lock.lock().unwrap();
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard).unwrap();
        }
    }
}

// ---- global worker pool -------------------------------------------------

/// One broadcast parallel region. The task reference is lifetime-erased; the
/// issuing thread blocks on `latch` before returning, so the borrow outlives
/// every worker's use of it.
struct Job {
    task: &'static (dyn Fn(usize) + Sync),
    latch: Latch,
    panicked: AtomicBool,
}

/// A worker's job inbox: the region to run plus this worker's participant id.
type JobSender = Sender<(std::sync::Arc<Job>, usize)>;

struct Pool {
    senders: Mutex<Vec<JobSender>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        senders: Mutex::new(Vec::new()),
    })
}

fn worker_loop(rx: Receiver<(std::sync::Arc<Job>, usize)>) {
    while let Ok((job, participant)) = rx.recv() {
        IN_REGION.with(|c| c.set(true));
        let result = catch_unwind(AssertUnwindSafe(|| (job.task)(participant)));
        IN_REGION.with(|c| c.set(false));
        if result.is_err() {
            job.panicked.store(true, Ordering::Release);
        }
        job.latch.count_down();
    }
}

impl Pool {
    /// Grows the pool to at least `count` workers and returns senders for the
    /// first `count` of them.
    fn helpers(&self, count: usize) -> Vec<JobSender> {
        let mut senders = self.senders.lock().unwrap();
        while senders.len() < count {
            let (tx, rx) = channel();
            let id = senders.len();
            std::thread::Builder::new()
                .name(format!("cirstag-worker-{id}"))
                .spawn(move || worker_loop(rx))
                .expect("failed to spawn pool worker thread");
            senders.push(tx);
        }
        senders[..count].to_vec()
    }
}

/// Runs `task(p)` once for each participant `p in 0..participants`:
/// participant 0 on the calling thread, the rest on pool workers. Blocks
/// until every participant has finished, then propagates any panic.
///
/// Called from inside an existing region (or with fewer than 2 participants)
/// it degrades to `task(0)` inline — tasks must therefore self-schedule their
/// work items (shared atomic counter) rather than partition by participant.
fn run_region(participants: usize, task: &(dyn Fn(usize) + Sync)) {
    if participants <= 1 || in_parallel_region() {
        IN_REGION.with(|c| {
            let was = c.replace(true);
            // Restore on unwind so a caught panic doesn't poison the flag.
            struct Reset<'a>(&'a Cell<bool>, bool);
            impl Drop for Reset<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _reset = Reset(c, was);
            task(0);
        });
        return;
    }

    let helper_count = (participants - 1).min(MAX_HELPERS);
    // SAFETY: lifetime erasure only. `latch.wait()` below does not return
    // until every worker has finished calling `task`, so the reference never
    // outlives the borrow it was created from.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = std::sync::Arc::new(Job {
        task: task_static,
        latch: Latch::new(helper_count),
        panicked: AtomicBool::new(false),
    });

    let senders = pool().helpers(helper_count);
    for (i, tx) in senders.iter().enumerate() {
        // A worker's receiver lives for the process lifetime; send can only
        // fail if its thread died, which `spawn().expect` already rules out.
        tx.send((std::sync::Arc::clone(&job), i + 1))
            .expect("pool worker disappeared");
    }

    IN_REGION.with(|c| c.set(true));
    let own = catch_unwind(AssertUnwindSafe(|| task(0)));
    IN_REGION.with(|c| c.set(false));

    // Must wait even when panicking: workers may still hold the borrow.
    job.latch.wait();

    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if job.panicked.load(Ordering::Acquire) {
        panic!("a parallel task panicked on a pool worker thread");
    }
}

/// Raw-pointer wrapper asserting cross-thread use is externally synchronised
/// (each worker touches a disjoint set of slots).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Computes `f(i)` for every `i in 0..n` across the pool and returns the
/// results in index order.
///
/// Output is bit-identical for every thread count: slot `i` always receives
/// exactly `f(i)`, and no cross-item reduction happens. Panics in `f` are
/// propagated after all threads have quiesced (already-computed results are
/// leaked, never double-dropped).
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let participants = current_num_threads().min(n);
    if participants <= 1 || in_parallel_region() {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<MaybeUninit<T>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    let slots = SendPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);

    run_region(participants, &|_participant| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let value = f(i);
        // SAFETY: `i` is claimed exactly once via fetch_add, so each slot is
        // written by exactly one thread; the Vec outlives the region because
        // run_region blocks until all participants finish.
        unsafe {
            slots.get().add(i).write(MaybeUninit::new(value));
        }
    });

    // Every index was claimed and the region completed without panicking, so
    // all `n` slots are initialised.
    let mut out = ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: MaybeUninit<T> has the same layout as T and all elements are
    // initialised; ManuallyDrop prevents a double free of the buffer.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (last chunk
/// may be shorter) and calls `f(chunk_index, chunk)` for each across the
/// pool. Chunks are disjoint `&mut` views, so no synchronisation is needed in
/// `f`; determinism follows from each chunk owning fixed output slots.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be non-zero");
    let len = data.len();
    let n_chunks = len.div_ceil(chunk_len);
    let participants = current_num_threads().min(n_chunks);
    if participants <= 1 || in_parallel_region() {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    run_region(participants, &|_participant| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        let start = i * chunk_len;
        let this_len = chunk_len.min(len - start);
        // SAFETY: chunk `i` covers `[start, start + this_len)`; distinct `i`
        // values yield disjoint ranges, and the slice outlives the region.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), this_len) };
        f(i, chunk);
    });
}

/// Runs both closures, potentially in parallel, and returns their results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || in_parallel_region() {
        return (oper_a(), oper_b());
    }
    let fa = Mutex::new(Some(oper_a));
    let fb = Mutex::new(Some(oper_b));
    let ra = Mutex::new(None);
    let rb = Mutex::new(None);
    run_region(2, &|_participant| {
        // Both participants race for both halves through the Option locks, so
        // the pair completes even if one participant ends up doing both.
        if let Some(f) = fa.lock().unwrap().take() {
            let r = f();
            *ra.lock().unwrap() = Some(r);
        }
        if let Some(f) = fb.lock().unwrap().take() {
            let r = f();
            *rb.lock().unwrap() = Some(r);
        }
    });
    (
        ra.into_inner()
            .unwrap()
            .expect("join: first closure did not run"),
        rb.into_inner()
            .unwrap()
            .expect("join: second closure did not run"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate the global thread-count setting.
    static CONFIG_GUARD: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = CONFIG_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(n);
        let r = f();
        set_num_threads(0);
        r
    }

    #[test]
    fn map_matches_serial_across_thread_counts() {
        let expected: Vec<f64> = (0..257).map(|i| (i as f64).sqrt() * 1.5).collect();
        for threads in [1, 2, 4, 9] {
            let got = with_threads(threads, || {
                par_map_indexed(257, |i| (i as f64).sqrt() * 1.5)
            });
            assert_eq!(got, expected, "thread count {threads}");
        }
    }

    #[test]
    fn chunks_mut_writes_every_slot() {
        let mut data = vec![0usize; 103];
        with_threads(4, || {
            par_chunks_mut(&mut data, 10, |chunk_idx, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = chunk_idx * 10 + j + 1;
                }
            });
        });
        let expected: Vec<usize> = (1..=103).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = with_threads(3, || join(|| 21 * 2, || "ok".to_string()));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        let got = with_threads(4, || {
            par_map_indexed(8, |i| {
                let inner = par_map_indexed(4, move |j| i * 10 + j);
                inner.iter().sum::<usize>()
            })
        });
        let expected: Vec<usize> = (0..8).map(|i| 4 * (i * 10) + 6).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                par_map_indexed(64, |i| {
                    if i == 33 {
                        panic!("boom");
                    }
                    i
                })
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        let empty = with_threads(4, || par_map_indexed(0, |i| i));
        assert!(empty.is_empty());
        let one = with_threads(4, || par_map_indexed(1, |i| i + 7));
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn builder_is_repeatable() {
        let _guard = CONFIG_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 3);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        set_num_threads(0);
    }
}
