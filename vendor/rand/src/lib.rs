//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The CirSTAG workspace builds in offline environments with no crates.io
//! access, so the external `rand` dependency is replaced by this local crate
//! exposing exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`RngExt::random_range`] over half-open
//! and inclusive numeric ranges.
//!
//! The generator is `xoshiro256**` seeded through SplitMix64 — deterministic
//! across platforms, with state-of-the-art statistical quality for the
//! simulation / initialization workloads in this repository. It is **not** a
//! cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of type `T` uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one sample. Panics on empty ranges, mirroring `rand`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span`, so the result
    // is exactly uniform (no modulo bias).
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

fn f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * f64_unit(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * f64_unit(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (`xoshiro256**`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.random_range(3usize..9);
            assert!((3..9).contains(&y));
            let z = rng.random_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&z));
            let w = rng.random_range(5usize..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..1 << 32) == b.random_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
