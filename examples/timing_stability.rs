//! Case-Study-A walkthrough: identify pins whose capacitance variations most
//! perturb a timing GNN's arrival predictions, and validate the ranking by
//! actually perturbing them (the paper's Table-I protocol at small scale).
//!
//! ```sh
//! cargo run --release --example timing_stability
//! ```

use cirstag_suite::circuit::{perturb_pin_caps, CapPerturbation, StaEngine};
use cirstag_suite::core::{bottom_fraction, top_fraction, CirStagConfig};

// The reusable harness lives in the bench crate; examples link it through
// the meta-crate's dev-dependency.
use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut case = TimingCase::build(
        "example",
        &TimingCaseConfig {
            num_gates: 300,
            seed: 101,
            epochs: 200,
            hidden: 32,
        },
    )?;
    println!(
        "benchmark: {} pins, GNN R² = {:.4}",
        case.timing.num_pins(),
        case.r2
    );

    let report = case.stability(CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        ..Default::default()
    })?;
    let eligible = case.eligible();
    let unstable = top_fraction(&report.node_scores, 0.10, Some(&eligible));
    let stable = bottom_fraction(&report.node_scores, 0.10, Some(&eligible));

    // Perturb each set at 10x capacitance and compare the impact on the
    // GNN's primary-output predictions.
    let impact_unstable = case.perturb_outcome(&unstable, 10.0)?;
    let impact_stable = case.perturb_outcome(&stable, 10.0)?;
    println!(
        "perturbing 10% most-UNSTABLE pins: mean relative change {:.4}, max {:.4}",
        impact_unstable.mean(),
        impact_unstable.max()
    );
    println!(
        "perturbing 10% most-stable pins:   mean relative change {:.4}, max {:.4}",
        impact_stable.mean(),
        impact_stable.max()
    );
    println!(
        "separation: {:.1}x (the CirSTAG claim: unstable ≫ stable)",
        impact_unstable.mean() / impact_stable.mean().max(1e-12)
    );

    // Cross-check against ground truth: re-run real STA with perturbed caps.
    let pert = CapPerturbation::new(unstable.clone(), 10.0)?;
    let caps = perturb_pin_caps(&case.timing, &pert)?;
    let base = StaEngine::new(&case.timing).critical_arrival();
    let after = StaEngine::with_caps(&case.timing, &caps).critical_arrival();
    println!(
        "ground-truth STA critical path: {base:.3} ns → {after:.3} ns (+{:.1}%)",
        (after / base - 1.0) * 100.0
    );
    Ok(())
}
