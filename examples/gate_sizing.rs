//! Application extension from the paper's introduction: *"stability analysis
//! guides circuit optimization tasks, such as gate sizing […] by identifying
//! the most unstable circuit nodes that, when modified, can significantly
//! improve overall performance."*
//!
//! Gate sizing for **variability reduction**: upsizing a gate (halved drive
//! resistance, 1.5× input capacitance) halves the sensitivity of its delay
//! to load changes. We size a fixed budget of gates chosen by CirSTAG
//! instability vs at random, then measure how much the critical path drifts
//! under an ensemble of random pin-capacitance perturbations — the
//! stability-oriented counterpart of classical slack-driven sizing.
//!
//! ```sh
//! cargo run --release --example gate_sizing
//! ```

use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_suite::circuit::{PinRole, StaEngine, TimingGraph};
use cirstag_suite::core::{rank_descending, CirStagConfig};

/// Sizing model: chosen cells get drive ×0.5 and input-pin caps ×1.5.
fn sizing(case: &TimingCase, cells: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let mut drive = vec![1.0f64; case.netlist.num_cells()];
    let mut caps = case.timing.pin_caps();
    for &c in cells {
        drive[c] = 0.5;
        for p in 0..case.timing.num_pins() {
            if let PinRole::CellInput { cell, .. } = case.timing.pin(p).role {
                if cell == c {
                    caps[p] *= 1.5;
                }
            }
        }
    }
    (caps, drive)
}

/// Mean critical-path drift (%) over an ensemble of random 3× perturbations
/// of 10% of the pins, applied on top of the sized design.
fn ensemble_drift(timing: &TimingGraph, caps: &[f64], drive: &[f64]) -> f64 {
    let base = StaEngine::with_adjustments(timing, caps, Some(drive)).critical_arrival();
    let n = timing.num_pins();
    let mut total = 0.0;
    let trials = 40;
    let mut state: u64 = 0x5eed;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for _ in 0..trials {
        let mut perturbed = caps.to_vec();
        for _ in 0..n / 10 {
            let p = (next() % n as u64) as usize;
            if timing.pin(p).role != PinRole::PrimaryOutput {
                perturbed[p] *= 3.0;
            }
        }
        let after = StaEngine::with_adjustments(timing, &perturbed, Some(drive)).critical_arrival();
        total += (after - base).abs() / base;
    }
    total / trials as f64 * 100.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut case = TimingCase::build(
        "sizing",
        &TimingCaseConfig {
            num_gates: 400,
            seed: 21,
            epochs: 220,
            hidden: 32,
        },
    )?;
    let base = StaEngine::new(&case.timing).critical_arrival();
    println!(
        "benchmark: {} gates, base critical path {:.4} ns (GNN R² {:.4})",
        case.netlist.num_cells(),
        base,
        case.r2
    );
    let budget = case.netlist.num_cells() / 10; // size 10% of gates

    // CirSTAG selection: gates whose output pin scores most unstable.
    let report = case.stability(CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        ..Default::default()
    })?;
    let mut cirstag_cells = Vec::new();
    for p in rank_descending(&report.node_scores) {
        if let PinRole::CellOutput { cell } = case.timing.pin(p).role {
            if !cirstag_cells.contains(&cell) {
                cirstag_cells.push(cell);
                if cirstag_cells.len() == budget {
                    break;
                }
            }
        }
    }
    // Random selection (seeded, distinct cells).
    let mut random_cells = Vec::new();
    let mut i = 0usize;
    while random_cells.len() < budget {
        let c = (i * 2654435761 + 17) % case.netlist.num_cells();
        if !random_cells.contains(&c) {
            random_cells.push(c);
        }
        i += 1;
    }

    let nominal_caps = case.timing.pin_caps();
    let nominal_drive = vec![1.0f64; case.netlist.num_cells()];
    let drift_unsized = ensemble_drift(&case.timing, &nominal_caps, &nominal_drive);
    let (caps_c, drive_c) = sizing(&case, &cirstag_cells);
    let drift_cirstag = ensemble_drift(&case.timing, &caps_c, &drive_c);
    let (caps_r, drive_r) = sizing(&case, &random_cells);
    let drift_random = ensemble_drift(&case.timing, &caps_r, &drive_r);

    println!("\ncritical-path drift under random cap variation (mean |Δ|, 40 trials):");
    println!("  no sizing          : {drift_unsized:.3}%");
    println!("  size {budget} CirSTAG gates: {drift_cirstag:.3}%");
    println!("  size {budget} random gates : {drift_random:.3}%");
    println!(
        "\nstability-guided sizing reduces variability at least as well as random: {}",
        drift_cirstag <= drift_random
    );
    Ok(())
}
