//! Working with the substrate directly: write a netlist by hand, serialize
//! it to the BLIF-flavoured text format, parse it back, run STA, and inspect
//! slack — no GNN involved.
//!
//! ```sh
//! cargo run --release --example netlist_io
//! ```

use cirstag_suite::circuit::{
    parse_netlist, write_netlist, CellKind, CellLibrary, Netlist, StaEngine, TimingGraph,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-bit ripple-carry adder, gate by gate.
    let library = CellLibrary::standard();
    let xor = library.by_kind(CellKind::Xor2).expect("XOR2 in library");
    let maj = library.by_kind(CellKind::Maj3).expect("MAJ3 in library");
    let mut netlist = Netlist::new("adder2");
    let a0 = netlist.add_net("a0", 0.001);
    let b0 = netlist.add_net("b0", 0.001);
    let a1 = netlist.add_net("a1", 0.001);
    let b1 = netlist.add_net("b1", 0.001);
    let cin = netlist.add_net("cin", 0.001);
    netlist.primary_inputs = vec![a0, b0, a1, b1, cin];
    // Bit 0.
    let p0 = netlist.add_net("p0", 0.001);
    let s0 = netlist.add_net("s0", 0.001);
    let c0 = netlist.add_net("c0", 0.0015);
    netlist.add_cell("x0", xor, vec![a0, b0], p0)?;
    netlist.add_cell("x1", xor, vec![p0, cin], s0)?;
    netlist.add_cell("m0", maj, vec![a0, b0, cin], c0)?;
    // Bit 1.
    let p1 = netlist.add_net("p1", 0.001);
    let s1 = netlist.add_net("s1", 0.001);
    let c1 = netlist.add_net("c1", 0.001);
    netlist.add_cell("x2", xor, vec![a1, b1], p1)?;
    netlist.add_cell("x3", xor, vec![p1, c0], s1)?;
    netlist.add_cell("m1", maj, vec![a1, b1, c0], c1)?;
    netlist.primary_outputs = vec![s0, s1, c1];
    netlist.validate(&library)?;

    // Serialize and parse back.
    let text = write_netlist(&netlist, &library);
    println!("--- adder2 netlist ---\n{text}");
    let parsed = parse_netlist(&text, &library)?;
    assert_eq!(parsed.num_cells(), netlist.num_cells());
    println!(
        "round trip OK: {} gates, {} nets",
        parsed.num_cells(),
        parsed.num_nets()
    );

    // Timing.
    let timing = TimingGraph::new(&parsed, &library)?;
    let sta = StaEngine::new(&timing);
    println!("critical arrival: {:.4} ns", sta.critical_arrival());
    let slacks = sta.slacks(&timing);
    for &po in timing.po_pins() {
        let net = timing.pin(po).net;
        println!(
            "  output {:<4} arrival {:.4} ns, slack {:.4} ns",
            parsed.nets[net].name,
            sta.arrival(po),
            slacks[po]
        );
    }
    Ok(())
}
