//! Quickstart: score the stability of a small synthetic circuit in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cirstag_suite::circuit::{
    extract_features, generate_circuit, CellLibrary, FeatureConfig, GeneratorConfig, TimingGraph,
};
use cirstag_suite::core::{top_fraction, CirStag, CirStagConfig};
use cirstag_suite::gnn::{Activation, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_suite::linalg::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic 150-gate circuit with its pin-level timing graph.
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates: 150,
            ..Default::default()
        },
        7,
    )?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    println!(
        "circuit: {} gates, {} pins, {} timing arcs",
        netlist.num_cells(),
        timing.num_pins(),
        timing.num_arcs()
    );

    // 2. A quick GNN that mimics static timing analysis (arrival times).
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(&graph, &arcs)?;
    let features = extract_features(
        &timing,
        &netlist,
        &library,
        &timing.pin_caps(),
        &FeatureConfig::default(),
    )?;
    let sta = cirstag_suite::circuit::StaEngine::new(&timing);
    let critical = sta.critical_arrival();
    let targets = DenseMatrix::from_rows(
        &sta.arrival_times()
            .iter()
            .map(|&a| vec![a / critical])
            .collect::<Vec<_>>(),
    )?;
    let mut model = GnnModel::new(
        features.ncols(),
        &[
            LayerSpec::Linear {
                dim: 24,
                activation: Activation::Relu,
            },
            LayerSpec::DagProp {
                dim: 24,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 12,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        42,
    )?;
    let report = model.fit_regression(
        &ctx,
        &features,
        &targets,
        None,
        &TrainConfig {
            epochs: 150,
            ..Default::default()
        },
    )?;
    println!("GNN trained: final loss {:.2e}", report.final_loss);

    // 3. CirSTAG: rank every pin's stability from the GNN's embeddings.
    let embedding = model.embeddings(&ctx, &features)?;
    let config = CirStagConfig {
        embedding_dim: 12,
        knn_k: 8,
        num_eigenpairs: 10,
        ..Default::default()
    };
    let stability = CirStag::new(config).analyze(&graph, Some(&features), &embedding)?;
    let most_unstable = top_fraction(&stability.node_scores, 0.05, None);
    println!(
        "top-5% unstable pins: {:?}…",
        &most_unstable[..most_unstable.len().min(8)]
    );
    println!(
        "largest DMD eigenvalue ζ₁ = {:.3e}; pipeline took {:.2?}",
        stability.eigenvalues[0],
        stability.timings.total()
    );
    Ok(())
}
