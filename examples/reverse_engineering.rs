//! Case-Study-B walkthrough: a GAT classifies gates of an interconnected
//! netlist into sub-circuit classes; CirSTAG finds the gates whose local
//! topology the classifier depends on most, validated by input rewiring.
//!
//! ```sh
//! cargo run --release --example reverse_engineering
//! ```

use cirstag_bench::case_b::{RevengCase, RevengCaseConfig};
use cirstag_suite::core::{bottom_fraction, top_fraction, CirStagConfig};
use cirstag_suite::reveng::SubcircuitKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut case = RevengCase::build(&RevengCaseConfig {
        num_modules: 21,
        seed: 5,
        epochs: 200,
        heads: 2,
        head_dim: 12,
        train_fraction: 0.8,
    })?;
    println!(
        "dataset: {} gates over {} classes; GAT accuracy {:.4}, F1-macro {:.4}",
        case.dataset.netlist.num_cells(),
        SubcircuitKind::ALL.len(),
        case.accuracy,
        case.f1
    );

    let report = case.stability(CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 20,
        knn_k: 8,
        ..Default::default()
    })?;

    // Which sub-circuit classes harbour the most unstable gates?
    let unstable = top_fraction(&report.node_scores, 0.10, None);
    let mut per_class = vec![0usize; SubcircuitKind::ALL.len()];
    for &g in &unstable {
        per_class[case.dataset.labels[g]] += 1;
    }
    println!("\nunstable gates per class (top 10%):");
    for (kind, &count) in SubcircuitKind::ALL.iter().zip(&per_class) {
        println!("  {:<12} {count}", kind.name());
    }

    // Validate: rewiring unstable gates should hurt the classifier more.
    let stable = bottom_fraction(&report.node_scores, 0.10, None);
    let hit_unstable = case.rewire_outcome(&unstable, 9)?;
    let hit_stable = case.rewire_outcome(&stable, 9)?;
    println!(
        "\nrewire 10% most-UNSTABLE gates: cosine {:.4}, F1 {:.4}",
        hit_unstable.cosine, hit_unstable.f1
    );
    println!(
        "rewire 10% most-stable gates:   cosine {:.4}, F1 {:.4}",
        hit_stable.cosine, hit_stable.f1
    );
    Ok(())
}
