//! Ranking helpers for stability scores.

/// Returns node indices sorted by descending score (most unstable first).
/// Ties break by index for determinism. NaN scores sort first under the IEEE
/// total order, so corrupted scores surface at the top rather than panicking.
pub fn rank_descending(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

/// Selects the most-unstable `fraction` of the *eligible* nodes (e.g. the
/// paper's "top 10% unstable nodes", excluding primary-output pins).
///
/// `eligible` is `None` for all nodes. At least one node is returned for a
/// positive fraction with a non-empty eligible set.
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]`, lengths mismatch, or scores are
/// NaN.
pub fn top_fraction(scores: &[f64], fraction: f64, eligible: Option<&[bool]>) -> Vec<usize> {
    select(scores, fraction, eligible, true)
}

/// Selects the most-*stable* `fraction` of the eligible nodes (the paper's
/// control group).
///
/// # Panics
///
/// Same conditions as [`top_fraction`].
pub fn bottom_fraction(scores: &[f64], fraction: f64, eligible: Option<&[bool]>) -> Vec<usize> {
    select(scores, fraction, eligible, false)
}

fn select(scores: &[f64], fraction: f64, eligible: Option<&[bool]>, top: bool) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    if let Some(e) = eligible {
        assert_eq!(e.len(), scores.len(), "eligibility mask length mismatch");
    }
    let mut idx: Vec<usize> = (0..scores.len())
        .filter(|&i| eligible.is_none_or(|e| e[i]))
        .collect();
    idx.sort_by(|&a, &b| {
        let ord = scores[b].total_cmp(&scores[a]);
        if top {
            ord.then(a.cmp(&b))
        } else {
            ord.reverse().then(a.cmp(&b))
        }
    });
    // cirstag-lint: allow(float-discipline) -- exact-zero sentinel: a literal 0.0 fraction disables selection
    if fraction == 0.0 || idx.is_empty() {
        return Vec::new();
    }
    // cirstag-lint: allow(cast-truncation) -- float -> usize saturates (never wraps) and the result is clamped to 1..=idx.len() on the same line
    let count = ((idx.len() as f64 * fraction).round() as usize).clamp(1, idx.len());
    idx.truncate(count);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_descending_orders_scores() {
        let s = [0.1, 0.9, 0.5];
        assert_eq!(rank_descending(&s), vec![1, 2, 0]);
    }

    #[test]
    fn rank_breaks_ties_by_index() {
        let s = [0.5, 0.5, 0.5];
        assert_eq!(rank_descending(&s), vec![0, 1, 2]);
    }

    #[test]
    fn top_and_bottom_are_disjoint_extremes() {
        let s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let top = top_fraction(&s, 0.2, None);
        let bottom = bottom_fraction(&s, 0.2, None);
        assert_eq!(top, vec![9, 8]);
        assert_eq!(bottom, vec![0, 1]);
    }

    #[test]
    fn eligibility_mask_filters() {
        let s = [10.0, 9.0, 8.0, 7.0];
        let eligible = [false, true, true, true];
        let top = top_fraction(&s, 0.34, Some(&eligible));
        assert_eq!(top, vec![1]);
    }

    #[test]
    fn at_least_one_selected_for_positive_fraction() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(top_fraction(&s, 0.01, None).len(), 1);
        assert!(top_fraction(&s, 0.0, None).is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        let _ = top_fraction(&[1.0], 1.5, None);
    }

    #[test]
    fn nan_scores_rank_first_without_panicking() {
        // IEEE total order puts NaN above +inf, so a corrupted score
        // surfaces at the head of the descending ranking.
        let order = rank_descending(&[1.0, f64::NAN, 2.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }
}
