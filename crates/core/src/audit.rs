//! Phase-boundary invariant audits (the `validate` feature).
//!
//! Each pipeline phase hands a structured object to the next one: Phase 1
//! produces the spectral embedding `U`, Phase 2 the manifold graphs
//! `G_X`/`G_Y`, Phase 3 consumes their Laplacians. The audits in this module
//! re-check, at those hand-off points, the invariants the downstream math
//! assumes but never re-verifies on its hot paths:
//!
//! - manifold edges carry finite positive weights with in-bounds endpoints
//!   and no self-loops (the `w_pq` of Eq. 8 must be usable as conductances);
//! - the Laplacian `L = Σ w_pq e_pq e_pqᵀ` of Eq. 5 is well-formed CSR,
//!   symmetric, and positive semidefinite (spot-checked);
//! - the embedding matrix is finite and row-matched to the graph.
//!
//! Callers gate audit invocation behind
//! `#[cfg(any(feature = "validate", debug_assertions))]`, so every debug /
//! `cargo test` build runs them while release builds compile them out
//! entirely unless `validate` is requested. Enforcement follows the
//! [`crate::FailurePolicy`] of the run: `Strict` turns violations into
//! [`crate::CirStagError::InvariantViolation`], `BestEffort` records an
//! `invariant-audit` [`crate::FallbackEvent`] plus a warning and lets the
//! run continue.

use crate::{CirStagError, FailurePolicy, FallbackEvent, RunDiagnostics};
use cirstag_graph::Graph;
use cirstag_linalg::{audit as linalg_audit, CsrMatrix, DenseMatrix};

/// Audits one manifold graph: every edge weight finite and positive,
/// endpoints in bounds and distinct. Returns all violations found.
///
/// Symmetry needs no separate check — [`Graph`] stores undirected edges, so
/// the kNN union-symmetrization of Phase 2 cannot produce an asymmetric
/// adjacency; what can break is the *weights*, which is what this audits.
pub fn manifold_violations(g: &Graph, context: &str) -> Vec<String> {
    let n = g.num_nodes();
    let mut out = Vec::new();
    for (eid, e) in g.edges().iter().enumerate() {
        if e.u >= n || e.v >= n {
            out.push(format!(
                "{context}: edge {eid} endpoints ({}, {}) out of bounds for {n} nodes",
                e.u, e.v
            ));
        } else if e.u == e.v {
            out.push(format!(
                "{context}: edge {eid} is a self-loop on node {}",
                e.u
            ));
        }
        if !e.weight.is_finite() || e.weight <= 0.0 {
            out.push(format!(
                "{context}: edge {eid} ({}, {}) has non-positive or non-finite weight {}",
                e.u, e.v, e.weight
            ));
        }
        if out.len() >= 8 {
            out.push(format!("{context}: further violations suppressed"));
            break;
        }
    }
    out
}

/// Audits a phase-boundary Laplacian: CSR well-formedness, symmetry, and a
/// PSD spot check (see [`cirstag_linalg::audit::laplacian_violations`]).
pub fn laplacian_violations(l: &CsrMatrix, context: &str) -> Vec<String> {
    linalg_audit::laplacian_violations(l, context)
}

/// Audits the Phase-1 embedding hand-off: finite entries, rows matching the
/// graph's node count.
pub fn embedding_violations(u: &DenseMatrix, n: usize, context: &str) -> Vec<String> {
    let mut out = Vec::new();
    if u.nrows() != n {
        out.push(format!(
            "{context}: embedding has {} rows but the graph has {n} nodes",
            u.nrows()
        ));
    }
    if !u.all_finite() {
        out.push(format!("{context}: embedding contains non-finite values"));
    }
    out
}

/// Applies the run's [`FailurePolicy`] to a batch of audit violations.
///
/// No violations: no-op. Under `Strict` the first audit failure aborts the
/// run with [`CirStagError::InvariantViolation`]; under `BestEffort` the
/// violations are recorded as one `invariant-audit` fallback event plus a
/// warning, and the run continues (the stage outputs are used as-is — the
/// audits detect, they do not repair).
///
/// # Errors
///
/// Returns [`CirStagError::InvariantViolation`] under
/// [`FailurePolicy::Strict`] when `violations` is non-empty.
pub fn enforce(
    stage: &'static str,
    violations: Vec<String>,
    policy: FailurePolicy,
    diag: &mut RunDiagnostics,
    elapsed_ms: u64,
) -> Result<(), CirStagError> {
    if violations.is_empty() {
        return Ok(());
    }
    let detail = violations.join("\n");
    if policy == FailurePolicy::Strict {
        return Err(CirStagError::InvariantViolation { stage, detail });
    }
    diag.events.push(FallbackEvent {
        stage: stage.to_string(),
        rung: "invariant-audit".to_string(),
        cause: detail,
        residual: None,
        elapsed_ms,
    });
    diag.warnings.push(format!(
        "{stage}: invariant audit found {} violation{}; continuing best-effort",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" }
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_linalg::CooMatrix;

    fn corrupt_laplacian() -> CsrMatrix {
        // A structurally valid PSD Laplacian, then NaN-corrupted — the same
        // class of damage the `phase3/nan` failpoint models.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..3 {
            coo.push(i, i, 1.0).unwrap();
            coo.push(i + 1, i + 1, 1.0).unwrap();
            coo.push(i, i + 1, -1.0).unwrap();
            coo.push(i + 1, i, -1.0).unwrap();
        }
        let mut l = coo.to_csr();
        l.scale(f64::NAN);
        l
    }

    #[test]
    fn corrupted_csr_is_caught_through_run_diagnostics() {
        let violations = laplacian_violations(&corrupt_laplacian(), "phase3");
        assert!(!violations.is_empty());
        let mut diag = RunDiagnostics::default();
        enforce(
            "phase3/audit",
            violations,
            FailurePolicy::BestEffort,
            &mut diag,
            7,
        )
        .expect("best-effort audits never error");
        assert_eq!(diag.events.len(), 1);
        assert_eq!(diag.events[0].rung, "invariant-audit");
        assert_eq!(diag.events[0].stage, "phase3/audit");
        assert!(diag.events[0].cause.contains("CSR malformed"));
        assert_eq!(diag.warnings.len(), 1);
    }

    #[test]
    fn corrupted_csr_is_a_typed_error_under_strict() {
        let violations = laplacian_violations(&corrupt_laplacian(), "phase3");
        let mut diag = RunDiagnostics::default();
        let err = enforce(
            "phase3/audit",
            violations,
            FailurePolicy::Strict,
            &mut diag,
            0,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CirStagError::InvariantViolation {
                stage: "phase3/audit",
                ..
            }
        ));
        assert!(diag.events.is_empty(), "strict must not record events");
    }

    #[test]
    fn clean_inputs_pass_silently() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)]).unwrap();
        assert!(manifold_violations(&g, "phase2").is_empty());
        let l = g.laplacian();
        assert!(laplacian_violations(&l, "phase3").is_empty());
        let mut diag = RunDiagnostics::default();
        enforce(
            "phase2/audit",
            Vec::new(),
            FailurePolicy::Strict,
            &mut diag,
            0,
        )
        .unwrap();
        assert!(diag.is_empty());
    }

    #[test]
    fn embedding_row_mismatch_flagged() {
        let u = DenseMatrix::zeros(3, 2);
        let v = embedding_violations(&u, 5, "phase1");
        assert!(v.iter().any(|m| m.contains("3 rows")), "{v:?}");
    }
}
