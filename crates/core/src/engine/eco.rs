//! Partition-scoped pipeline execution for incremental (ECO) re-analysis.
//!
//! The unit of computation here is a *partition*: the subgraph induced by a
//! partition's owned nodes plus every node within `halo_depth` hops. Each
//! partition runs the full six-stage pipeline on its subgraph — restricted
//! feature rows and output-embedding rows included — and its owned-node
//! scores are spliced into the global report. Because every sub-pipeline is
//! deterministic, a warm run (untouched partitions replaying from cache,
//! dirty partitions recomputing) is bit-identical to a cold partitioned run
//! of the same edited design: the cache is invisible in the output by
//! construction, and an over-approximated dirty set is harmless — a
//! "dirty" partition whose subgraph did not actually change fingerprints
//! identically and replays anyway.
//!
//! Per-partition subgraphs are fingerprinted as Merkle leaves
//! (`cirstag-partition-leaf/v1`: the subgraph, its global node ids, owned
//! flags, and the restricted feature/embedding rows) chained into a root
//! (`cirstag-partition-root/v1`) that identifies the whole partitioned
//! input; the root is reported so two runs can be compared at a glance.
//! Underneath, each sub-pipeline reuses the existing 128-bit stage chain
//! unchanged — partition-scoped validity is exactly stage-key validity on
//! the partition's subgraph.
//!
//! The splice itself ([`SpliceBuffers`]) is allocation-free in steady
//! state: score vectors and edge lists are arenas reused across deltas,
//! pinned by the counting-allocator test in `crates/bench`.

use crate::engine::fingerprint::{Fingerprint, Fingerprinter};
use crate::engine::{run_pipeline_segmented, CacheRef};
use crate::resilience::CancelToken;
use crate::{ArtifactCache, CirStagConfig, CirStagError, SharedArtifactCache};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One partition's slice of the design: its subgraph and the bookkeeping
/// needed to splice sub-pipeline results back into global coordinates.
#[derive(Debug, Clone)]
pub struct PartitionView {
    /// Partition id.
    pub id: u32,
    /// Global node ids in this view (owned plus halo), ascending; local id
    /// `i` of the subgraph is global node `nodes[i]`.
    pub nodes: Vec<usize>,
    /// `owned[i]` is `true` when `nodes[i]` is owned (not halo).
    pub owned: Vec<bool>,
    /// Number of owned nodes.
    pub owned_count: usize,
    /// The induced subgraph over `nodes`, in local ids.
    pub subgraph: Graph,
    /// Merkle leaf: fingerprint of the subgraph, node ids, owned flags and
    /// restricted feature/embedding rows.
    pub leaf: Fingerprint,
}

impl PartitionView {
    /// Number of halo (non-owned) nodes in the view.
    pub fn halo_count(&self) -> usize {
        self.nodes.len() - self.owned_count
    }
}

/// The partition-scoped decomposition of one design: per-partition views
/// plus the Merkle root chaining their leaves.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Per-partition views, in partition-id order.
    pub views: Vec<PartitionView>,
    /// Root fingerprint over every leaf (plus partition count and halo
    /// depth); identifies the whole partitioned input.
    pub root: Fingerprint,
    /// Halo ring depth the plan was built with.
    pub halo_depth: usize,
}

impl PartitionPlan {
    /// Builds the partition-scoped decomposition of `graph` under
    /// `assignment` (one owning partition id per node, ids in
    /// `0..num_partitions`).
    ///
    /// # Errors
    ///
    /// [`CirStagError::InvalidArgument`] when the assignment does not cover
    /// the graph, a partition owns no nodes, a subgraph is smaller than the
    /// pipeline's 4-node floor, `halo_depth` is zero, or the feature /
    /// embedding row counts do not match the graph.
    pub fn build(
        graph: &Graph,
        features: Option<&DenseMatrix>,
        embedding: &DenseMatrix,
        assignment: &[u32],
        num_partitions: usize,
        halo_depth: usize,
    ) -> Result<PartitionPlan, CirStagError> {
        let n = graph.num_nodes();
        if assignment.len() != n {
            return Err(CirStagError::InvalidArgument {
                reason: format!(
                    "partition assignment covers {} nodes but the graph has {n}",
                    assignment.len()
                ),
            });
        }
        if num_partitions == 0 {
            return Err(CirStagError::InvalidArgument {
                reason: "need at least one partition".to_string(),
            });
        }
        if halo_depth == 0 {
            return Err(CirStagError::InvalidArgument {
                reason: "halo depth must be at least 1".to_string(),
            });
        }
        // cirstag-lint: allow(cast-truncation) -- u32 -> usize widens losslessly on every supported target
        if let Some(&bad) = assignment.iter().find(|&&a| a as usize >= num_partitions) {
            return Err(CirStagError::InvalidArgument {
                reason: format!("assignment references partition {bad} of {num_partitions}"),
            });
        }
        if embedding.nrows() != n {
            return Err(CirStagError::InvalidArgument {
                reason: format!(
                    "output embedding has {} rows but the graph has {n} nodes",
                    embedding.nrows()
                ),
            });
        }
        if let Some(f) = features {
            if f.nrows() != n {
                return Err(CirStagError::InvalidArgument {
                    reason: format!(
                        "node features have {} rows but the graph has {n} nodes",
                        f.nrows()
                    ),
                });
            }
        }

        // Reused scratch: membership ring stamp and global→local id map.
        let mut ring = vec![usize::MAX; n];
        let mut local = vec![0u32; n];
        let mut views = Vec::with_capacity(num_partitions);
        for pid in 0..num_partitions {
            // cirstag-lint: allow(cast-truncation) -- pid < num_partitions, which the u32 assignment domain already bounds
            let pid32 = pid as u32;
            // Owned nodes seed a bounded BFS that adds the halo rings.
            let mut nodes: Vec<usize> = (0..n).filter(|&i| assignment[i] == pid32).collect();
            let owned_count = nodes.len();
            if owned_count == 0 {
                return Err(CirStagError::InvalidArgument {
                    reason: format!("partition {pid} owns no nodes"),
                });
            }
            for &u in &nodes {
                ring[u] = 0;
            }
            let mut frontier = nodes.clone();
            for depth in 1..=halo_depth {
                let mut next = Vec::new();
                for &u in &frontier {
                    for (v, _w) in graph.neighbors(u) {
                        if ring[v] == usize::MAX {
                            ring[v] = depth;
                            next.push(v);
                            nodes.push(v);
                        }
                    }
                }
                next.sort_unstable();
                frontier = next;
            }
            nodes.sort_unstable();
            if nodes.len() < 4 {
                for &u in &nodes {
                    ring[u] = usize::MAX;
                }
                return Err(CirStagError::InvalidArgument {
                    reason: format!(
                        "partition {pid} spans only {} nodes with its halo; the pipeline needs \
                         at least 4 — use fewer partitions",
                        nodes.len()
                    ),
                });
            }
            let owned: Vec<bool> = nodes.iter().map(|&g| assignment[g] == pid32).collect();
            for (li, &g) in nodes.iter().enumerate() {
                local[g] = li as u32; // cirstag-lint: allow(cast-truncation) -- li indexes a view of the pin graph, far below u32::MAX (a 2^32-node graph cannot be built in memory)
            }
            let mut edges = Vec::new();
            for (li, &gu) in nodes.iter().enumerate() {
                for (gv, w) in graph.neighbors(gu) {
                    if gv > gu && ring[gv] != usize::MAX {
                        // cirstag-lint: allow(cast-truncation) -- u32 -> usize widens losslessly on every supported target
                        edges.push((li, local[gv] as usize, w));
                    }
                }
            }
            let subgraph = Graph::from_edges(nodes.len(), &edges).map_err(|e| {
                CirStagError::InvalidArgument {
                    reason: format!("partition {pid} subgraph is malformed: {e}"),
                }
            })?;
            // Reset the ring stamps for the next partition.
            for &u in &nodes {
                ring[u] = usize::MAX;
            }

            let mut fp = Fingerprinter::new();
            fp.write_str("cirstag-partition-leaf/v1");
            fp.write_u64(u64::from(pid32));
            fp.write_usize(halo_depth);
            fp.write_usize(nodes.len());
            for (li, &g) in nodes.iter().enumerate() {
                fp.write_usize(g);
                fp.write_bool(owned[li]);
            }
            fp.write_graph(&subgraph);
            fp.write_bool(features.is_some());
            if let Some(f) = features {
                for &g in &nodes {
                    for &x in f.row(g) {
                        fp.write_f64(x);
                    }
                }
            }
            fp.write_usize(embedding.ncols());
            for &g in &nodes {
                for &x in embedding.row(g) {
                    fp.write_f64(x);
                }
            }
            let leaf = fp.finish();
            views.push(PartitionView {
                id: pid32,
                nodes,
                owned,
                owned_count,
                subgraph,
                leaf,
            });
        }

        let mut fp = Fingerprinter::new();
        fp.write_str("cirstag-partition-root/v1");
        fp.write_usize(num_partitions);
        fp.write_usize(halo_depth);
        for view in &views {
            fp.write_fingerprint(view.leaf);
        }
        Ok(PartitionPlan {
            views,
            root: fp.finish(),
            halo_depth,
        })
    }
}

/// Clamps the pipeline config to a subgraph of `m` nodes: spectral
/// dimensions and kNN degree cannot exceed what the subgraph supports. A
/// pure function of `(config, m)`, so cold and warm runs of the same
/// subgraph always agree (the clamped config feeds the stage fingerprints).
fn clamp_config(config: &CirStagConfig, m: usize) -> CirStagConfig {
    let mut cfg = *config;
    let spectral_cap = (m.saturating_sub(2) / 2).max(1);
    cfg.embedding_dim = cfg.embedding_dim.min(spectral_cap);
    cfg.num_eigenpairs = cfg.num_eigenpairs.min(spectral_cap);
    cfg.knn_k = cfg.knn_k.min(m - 1);
    cfg
}

/// Reusable splice arena: global score vectors and the spliced edge list.
/// Steady-state delta loops reuse one `SpliceBuffers` across re-analyses so
/// the splice path performs zero heap allocations once warm.
#[derive(Debug, Default)]
pub struct SpliceBuffers {
    node_scores: Vec<f64>,
    edge_scores: Vec<(usize, usize, f64)>,
}

impl SpliceBuffers {
    /// An empty arena (first use allocates; reuse does not).
    pub fn new() -> Self {
        SpliceBuffers::default()
    }

    /// Prepares the arena for an `n`-node design, keeping capacity.
    pub fn reset(&mut self, n: usize) {
        self.node_scores.clear();
        self.node_scores.resize(n, 0.0);
        self.edge_scores.clear();
    }

    /// Splices one partition's sub-pipeline result into global coordinates:
    /// owned-node scores land at their global ids, and a manifold edge is
    /// emitted exactly when its lower endpoint is owned by this partition
    /// (owned sets are disjoint, so every edge has at most one emitter).
    pub fn splice(
        &mut self,
        view: &PartitionView,
        node_scores: &[f64],
        edge_scores: &[(usize, usize, f64)],
    ) {
        for (li, &g) in view.nodes.iter().enumerate() {
            if view.owned[li] {
                self.node_scores[g] = node_scores[li];
            }
        }
        for &(lu, lv, s) in edge_scores {
            if view.owned[lu] {
                self.edge_scores.push((view.nodes[lu], view.nodes[lv], s));
            }
        }
    }

    /// Canonicalizes the spliced edge list (sorted by endpoint pair) after
    /// every partition has been spliced.
    pub fn finish(&mut self) {
        self.edge_scores.sort_unstable_by_key(|a| (a.0, a.1));
    }

    /// The spliced global node scores.
    pub fn node_scores(&self) -> &[f64] {
        &self.node_scores
    }

    /// The spliced, canonicalized global edge scores.
    pub fn edge_scores(&self) -> &[(usize, usize, f64)] {
        &self.edge_scores
    }
}

/// Per-partition outcome of a partitioned run.
#[derive(Debug, Clone)]
pub struct PartitionRecord {
    /// Partition id.
    pub id: u32,
    /// Owned node count.
    pub owned: usize,
    /// Halo node count.
    pub halo: usize,
    /// The partition's generalized eigenvalues (its local spectral block).
    pub eigenvalues: Vec<f64>,
    /// `true` when the partition's sub-pipeline degraded.
    pub degraded: bool,
    /// Stages replayed from cache for this partition.
    pub cache_hits: usize,
    /// Cacheable stages that computed for this partition. `> 0` means the
    /// partition was dirty (or the cache was cold).
    pub cache_misses: usize,
    /// Wall-clock time of the partition's sub-pipeline.
    pub wall: Duration,
}

/// The spliced result of a partition-scoped analysis.
#[derive(Debug, Clone)]
pub struct PartitionedReport {
    /// Global per-node stability scores (every node scored by its owner).
    pub node_scores: Vec<f64>,
    /// Global manifold edge scores, sorted by endpoint pair; each edge is
    /// scored by the partition owning its lower endpoint.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// Merkle root of the partitioned input (see [`PartitionPlan`]).
    pub root: Fingerprint,
    /// Partition count.
    pub num_partitions: usize,
    /// Halo ring depth.
    pub halo_depth: usize,
    /// `true` when any partition's sub-pipeline degraded.
    pub degraded: bool,
    /// Active worker-thread count the analysis ran with.
    pub threads: usize,
    /// Per-partition outcomes, in partition-id order.
    pub partitions: Vec<PartitionRecord>,
    /// Total wall-clock time across every partition.
    pub wall: Duration,
}

impl PartitionedReport {
    /// Node ids sorted most-unstable first.
    pub fn ranking(&self) -> Vec<usize> {
        crate::rank_descending(&self.node_scores)
    }

    /// Ids of partitions that recomputed at least one stage: the dirty set
    /// of a warm run (a cache miss on any cacheable stage), or every
    /// partition of a cache-less run (`EcoCache::Cold` records neither hits
    /// nor misses, so zero hits means nothing was replayed).
    pub fn recomputed(&self) -> Vec<u32> {
        self.partitions
            .iter()
            .filter(|p| p.cache_misses > 0 || p.cache_hits == 0)
            .map(|p| p.id)
            .collect()
    }

    /// Total cache hits across partitions.
    pub fn cache_hits(&self) -> usize {
        self.partitions.iter().map(|p| p.cache_hits).sum()
    }

    /// Total cache misses across partitions.
    pub fn cache_misses(&self) -> usize {
        self.partitions.iter().map(|p| p.cache_misses).sum()
    }
}

/// Cache binding for a partitioned run (mirrors the engine's `CacheRef`,
/// which is crate-private and not reborrowable across loop iterations).
pub enum EcoCache<'c> {
    /// Uncached: every partition computes (the cold baseline).
    Cold,
    /// One tenant, exclusive borrow.
    Exclusive(&'c mut ArtifactCache),
    /// Many tenants, shared single-flight cache (the serve path).
    Shared(&'c SharedArtifactCache),
}

/// Runs the partition-scoped pipeline: one sub-pipeline per partition (in
/// partition-id order) spliced into a global report via `buffers`.
///
/// Warm-vs-cold bit-identity: with the same `(config, graph, features,
/// embedding, assignment, halo_depth)`, the report is byte-for-byte
/// identical whatever `cache` binding is used and whatever subset of
/// partitions replays — sub-pipelines are deterministic and cached stage
/// artifacts replay their exact cold-run output.
///
/// # Errors
///
/// Any [`CirStagError`] a sub-pipeline raises, plus the plan-validation
/// errors of [`PartitionPlan::build`].
#[allow(clippy::too_many_arguments)]
pub fn analyze_partitioned(
    config: &CirStagConfig,
    graph: &Graph,
    features: Option<&DenseMatrix>,
    embedding: &DenseMatrix,
    assignment: &[u32],
    num_partitions: usize,
    halo_depth: usize,
    mut cache: EcoCache<'_>,
    cancel: Option<&CancelToken>,
    buffers: &mut SpliceBuffers,
) -> Result<PartitionedReport, CirStagError> {
    let plan = PartitionPlan::build(
        graph,
        features,
        embedding,
        assignment,
        num_partitions,
        halo_depth,
    )?;
    let n = graph.num_nodes();
    buffers.reset(n);

    let mut records = Vec::with_capacity(plan.views.len());
    let mut degraded = false;
    let mut threads = 1;
    // cirstag-lint: allow(nondeterminism) -- recompute-report wall-clock diagnostics only; excluded from the deterministic payload
    let t0 = Instant::now();
    let mut segment = String::new();
    for view in &plan.views {
        let m = view.nodes.len();
        let cfg = clamp_config(config, m);
        let sub_features = match features {
            Some(f) => Some(gather_rows(f, &view.nodes)?),
            None => None,
        };
        let sub_embedding = gather_rows(embedding, &view.nodes)?;
        segment.clear();
        let _ = write!(segment, "partition/{}", view.id);
        // cirstag-lint: allow(nondeterminism) -- recompute-report wall-clock diagnostics only; excluded from the deterministic payload
        let sub_t0 = Instant::now();
        let sub = run_pipeline_segmented(
            &cfg,
            &view.subgraph,
            sub_features.as_ref(),
            &sub_embedding,
            match &mut cache {
                EcoCache::Cold => CacheRef::None,
                EcoCache::Exclusive(c) => CacheRef::Exclusive(c),
                EcoCache::Shared(s) => CacheRef::Shared(s),
            },
            cancel,
            Some(&segment),
        )?;
        // cirstag-lint: allow(nondeterminism) -- recompute-report wall-clock diagnostics only; excluded from the deterministic payload
        let sub_wall = sub_t0.elapsed();
        threads = sub.timings.threads;
        degraded = degraded || sub.degraded;
        buffers.splice(view, &sub.node_scores, &sub.edge_scores);
        records.push(PartitionRecord {
            id: view.id,
            owned: view.owned_count,
            halo: view.halo_count(),
            eigenvalues: sub.eigenvalues,
            degraded: sub.degraded,
            cache_hits: sub.timings.cache_hits,
            cache_misses: sub.timings.cache_misses,
            wall: sub_wall,
        });
    }
    buffers.finish();

    Ok(PartitionedReport {
        node_scores: buffers.node_scores().to_vec(),
        edge_scores: buffers.edge_scores().to_vec(),
        root: plan.root,
        num_partitions,
        halo_depth,
        degraded,
        threads,
        partitions: records,
        // cirstag-lint: allow(nondeterminism) -- recompute-report wall-clock diagnostics only; excluded from the deterministic payload
        wall: t0.elapsed(),
    })
}

/// Gathers `rows` of `m` into a new dense matrix (the per-partition
/// restriction of a global feature/embedding matrix).
fn gather_rows(m: &DenseMatrix, rows: &[usize]) -> Result<DenseMatrix, CirStagError> {
    let mut data = Vec::with_capacity(rows.len() * m.ncols());
    for &r in rows {
        data.extend_from_slice(m.row(r));
    }
    DenseMatrix::from_vec(rows.len(), m.ncols(), data).map_err(|e| CirStagError::InvalidArgument {
        reason: format!("partition row restriction failed: {e}"),
    })
}

/// Replays or computes a partitioned analysis against an exclusive cache.
///
/// # Errors
///
/// See [`analyze_partitioned`].
#[allow(clippy::too_many_arguments)]
pub fn analyze_partitioned_cached(
    config: &CirStagConfig,
    graph: &Graph,
    features: Option<&DenseMatrix>,
    embedding: &DenseMatrix,
    assignment: &[u32],
    num_partitions: usize,
    halo_depth: usize,
    cache: &mut ArtifactCache,
) -> Result<PartitionedReport, CirStagError> {
    let mut buffers = SpliceBuffers::new();
    analyze_partitioned(
        config,
        graph,
        features,
        embedding,
        assignment,
        num_partitions,
        halo_depth,
        EcoCache::Exclusive(cache),
        None,
        &mut buffers,
    )
}

/// Uncached partitioned analysis — the cold baseline a warm run must match
/// bit-for-bit.
///
/// # Errors
///
/// See [`analyze_partitioned`].
pub fn analyze_partitioned_cold(
    config: &CirStagConfig,
    graph: &Graph,
    features: Option<&DenseMatrix>,
    embedding: &DenseMatrix,
    assignment: &[u32],
    num_partitions: usize,
    halo_depth: usize,
) -> Result<PartitionedReport, CirStagError> {
    let mut buffers = SpliceBuffers::new();
    analyze_partitioned(
        config,
        graph,
        features,
        embedding,
        assignment,
        num_partitions,
        halo_depth,
        EcoCache::Cold,
        None,
        &mut buffers,
    )
}

/// Partitioned analysis against a shared single-flight cache (the serve
/// `delta` path), with optional cancellation.
///
/// # Errors
///
/// See [`analyze_partitioned`].
#[allow(clippy::too_many_arguments)]
pub fn analyze_partitioned_shared(
    config: &CirStagConfig,
    graph: &Graph,
    features: Option<&DenseMatrix>,
    embedding: &DenseMatrix,
    assignment: &[u32],
    num_partitions: usize,
    halo_depth: usize,
    cache: &SharedArtifactCache,
    cancel: Option<&CancelToken>,
) -> Result<PartitionedReport, CirStagError> {
    let mut buffers = SpliceBuffers::new();
    analyze_partitioned(
        config,
        graph,
        features,
        embedding,
        assignment,
        num_partitions,
        halo_depth,
        EcoCache::Shared(cache),
        cancel,
        &mut buffers,
    )
}

// ---- deterministic export --------------------------------------------------

/// One partition's deterministic summary inside an [`EcoReportExport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionExport {
    /// Partition id.
    pub id: usize,
    /// Owned node count.
    pub owned: usize,
    /// Halo node count.
    pub halo: usize,
    /// `true` when the partition's sub-pipeline degraded.
    pub degraded: bool,
    /// The partition's generalized eigenvalues.
    pub eigenvalues: Vec<f64>,
}

serde::impl_serde_struct!(PartitionExport {
    id,
    owned,
    halo,
    degraded,
    eigenvalues,
});

/// The *deterministic* payload of a partitioned analysis: everything here
/// is a pure function of the partitioned input, so a warm delta run and a
/// cold run of the same edited design serialize to byte-identical JSON.
/// Run-specific facts (timings, replayed-vs-computed, thread count) are
/// deliberately excluded — `cirstag diff` prints those to stdout instead.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoReportExport {
    /// Export schema tag (`cirstag-eco-report/v1`).
    pub schema: String,
    /// Merkle root of the partitioned input, as 32 hex digits.
    pub root: String,
    /// Partition count.
    pub num_partitions: usize,
    /// Halo ring depth.
    pub halo_depth: usize,
    /// Global per-node stability scores.
    pub node_scores: Vec<f64>,
    /// Node ids sorted most-unstable first.
    pub ranking: Vec<usize>,
    /// Global manifold edge scores `(p, q, score)`, sorted by endpoints.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// `true` when any partition degraded.
    pub degraded: bool,
    /// Per-partition summaries, in partition-id order.
    pub partitions: Vec<PartitionExport>,
}

serde::impl_serde_struct!(EcoReportExport {
    schema,
    root,
    num_partitions,
    halo_depth,
    node_scores,
    ranking,
    edge_scores,
    degraded,
    partitions,
});

impl EcoReportExport {
    /// Builds the deterministic export of `report`.
    pub fn from_report(report: &PartitionedReport) -> Self {
        EcoReportExport {
            schema: "cirstag-eco-report/v1".to_string(),
            root: report.root.hex(),
            num_partitions: report.num_partitions,
            halo_depth: report.halo_depth,
            node_scores: report.node_scores.clone(),
            ranking: report.ranking(),
            edge_scores: report.edge_scores.clone(),
            degraded: report.degraded,
            partitions: report
                .partitions
                .iter()
                .map(|p| PartitionExport {
                    id: p.id as usize, // cirstag-lint: allow(cast-truncation) -- u32 -> usize widens losslessly on every supported target
                    owned: p.owned,
                    halo: p.halo,
                    degraded: p.degraded,
                    eigenvalues: p.eigenvalues.clone(),
                })
                .collect(),
        }
    }

    /// Serializes to pretty JSON. Byte-identical across warm and cold runs
    /// of the same partitioned input.
    ///
    /// # Errors
    ///
    /// [`CirStagError::InvalidArgument`] when serialization fails (only
    /// reachable for non-finite scores).
    pub fn to_json(&self) -> Result<String, CirStagError> {
        serde_json::to_string_pretty(self).map_err(|e| CirStagError::InvalidArgument {
            reason: format!("eco report serialization failed: {e}"),
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// [`CirStagError::InvalidArgument`] for malformed input.
    pub fn from_json(text: &str) -> Result<Self, CirStagError> {
        let parsed: EcoReportExport =
            serde_json::from_str(text).map_err(|e| CirStagError::InvalidArgument {
                reason: format!("eco report deserialization failed: {e}"),
            })?;
        if parsed.schema != "cirstag-eco-report/v1" {
            return Err(CirStagError::InvalidArgument {
                reason: format!("unsupported eco report schema {:?}", parsed.schema),
            });
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(side: usize) -> Graph {
        let n = side * side;
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let u = r * side + c;
                if c + 1 < side {
                    edges.push((u, u + 1, 1.0));
                }
                if r + 1 < side {
                    edges.push((u, u + side, 1.0));
                }
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    /// Four quadrants of a `side × side` grid.
    fn quadrants(side: usize) -> Vec<u32> {
        (0..side * side)
            .map(|i| {
                let (r, c) = (i / side, i % side);
                (u32::from(r >= side / 2) << 1) | u32::from(c >= side / 2)
            })
            .collect()
    }

    fn synth_embedding(n: usize, dim: usize) -> DenseMatrix {
        DenseMatrix::from_rows(
            &(0..n)
                .map(|i| {
                    (0..dim)
                        .map(|j| ((i * (j + 2)) as f64 * 0.37).sin())
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn small_config() -> CirStagConfig {
        CirStagConfig {
            embedding_dim: 6,
            knn_k: 6,
            num_eigenpairs: 4,
            ..Default::default()
        }
    }

    #[test]
    fn plan_covers_every_node_once_and_halo_is_ring() {
        let g = grid(10);
        let assignment = quadrants(10);
        let emb = synth_embedding(100, 4);
        let plan = PartitionPlan::build(&g, None, &emb, &assignment, 4, 1).unwrap();
        assert_eq!(plan.views.len(), 4);
        let owned_total: usize = plan.views.iter().map(|v| v.owned_count).sum();
        assert_eq!(owned_total, 100);
        for view in &plan.views {
            // Local ids map back to ascending global ids.
            assert!(view.nodes.windows(2).all(|w| w[0] < w[1]));
            // Subgraph edges mirror the induced global edges.
            for e in view.subgraph.edges() {
                let (gu, gv) = (view.nodes[e.u], view.nodes[e.v]);
                assert_eq!(g.edge_weight(gu, gv), Some(e.weight));
            }
        }
    }

    #[test]
    fn leaf_fingerprints_localize_edits() {
        let g = grid(10);
        let assignment = quadrants(10);
        let emb = synth_embedding(100, 4);
        let base = PartitionPlan::build(&g, None, &emb, &assignment, 4, 1).unwrap();

        // Rescale one edge deep inside quadrant 0 (nodes 0 and 1 are in the
        // top-left quadrant, away from every other quadrant's halo).
        let edited = g.map_weights(|_, e| if e.u == 0 && e.v == 1 { 2.0 } else { e.weight });
        let after = PartitionPlan::build(&edited, None, &emb, &assignment, 4, 1).unwrap();
        assert_ne!(base.root, after.root);
        let changed: Vec<u32> = base
            .views
            .iter()
            .zip(&after.views)
            .filter(|(a, b)| a.leaf != b.leaf)
            .map(|(a, _)| a.id)
            .collect();
        assert_eq!(changed, vec![0], "edit must dirty exactly quadrant 0");
    }

    #[test]
    fn warm_partitioned_run_is_bit_identical_to_cold() {
        let g = grid(10);
        let assignment = quadrants(10);
        let emb = synth_embedding(100, 4);
        let cfg = small_config();

        let cold = analyze_partitioned_cold(&cfg, &g, None, &emb, &assignment, 4, 1).unwrap();
        let mut cache = ArtifactCache::new();
        let first = analyze_partitioned_cached(&cfg, &g, None, &emb, &assignment, 4, 1, &mut cache)
            .unwrap();
        let warm = analyze_partitioned_cached(&cfg, &g, None, &emb, &assignment, 4, 1, &mut cache)
            .unwrap();

        assert_eq!(cold.node_scores, first.node_scores);
        assert_eq!(cold.node_scores, warm.node_scores);
        assert_eq!(cold.edge_scores, warm.edge_scores);
        assert_eq!(cold.root, warm.root);
        assert!(first.partitions.iter().all(|p| p.cache_misses > 0));
        assert!(
            warm.partitions
                .iter()
                .all(|p| p.cache_misses == 0 && p.cache_hits > 0),
            "fully warm run must replay every partition"
        );
        assert!(warm.recomputed().is_empty());

        // The deterministic export is byte-identical.
        let cold_json = EcoReportExport::from_report(&cold).to_json().unwrap();
        let warm_json = EcoReportExport::from_report(&warm).to_json().unwrap();
        assert_eq!(cold_json, warm_json);
    }

    #[test]
    fn one_quadrant_edit_recomputes_only_dirty_partitions() {
        let g = grid(10);
        let assignment = quadrants(10);
        let emb = synth_embedding(100, 4);
        let cfg = small_config();

        let mut cache = ArtifactCache::new();
        analyze_partitioned_cached(&cfg, &g, None, &emb, &assignment, 4, 1, &mut cache).unwrap();

        // Edit deep inside quadrant 0.
        let edited = g.map_weights(|_, e| if e.u == 0 && e.v == 1 { 2.0 } else { e.weight });
        let warm =
            analyze_partitioned_cached(&cfg, &edited, None, &emb, &assignment, 4, 1, &mut cache)
                .unwrap();
        assert_eq!(warm.recomputed(), vec![0], "only quadrant 0 recomputes");

        // And the spliced result matches a cold run of the edited design.
        let cold = analyze_partitioned_cold(&cfg, &edited, None, &emb, &assignment, 4, 1).unwrap();
        assert_eq!(cold.node_scores, warm.node_scores);
        assert_eq!(cold.edge_scores, warm.edge_scores);
        let cold_json = EcoReportExport::from_report(&cold).to_json().unwrap();
        let warm_json = EcoReportExport::from_report(&warm).to_json().unwrap();
        assert_eq!(cold_json, warm_json);
    }

    #[test]
    fn plan_validation_is_typed() {
        let g = grid(6);
        let emb = synth_embedding(36, 4);
        let bad_len = vec![0u32; 10];
        assert!(PartitionPlan::build(&g, None, &emb, &bad_len, 1, 1).is_err());
        let assignment = quadrants(6);
        assert!(PartitionPlan::build(&g, None, &emb, &assignment, 0, 1).is_err());
        assert!(PartitionPlan::build(&g, None, &emb, &assignment, 4, 0).is_err());
        // Partition 7 referenced but only 4 declared.
        let mut rogue = assignment.clone();
        rogue[0] = 7;
        assert!(PartitionPlan::build(&g, None, &emb, &rogue, 4, 1).is_err());
        // Partition 3 owns nothing.
        let empty3: Vec<u32> = assignment.iter().map(|&a| a.min(2)).collect();
        assert!(PartitionPlan::build(&g, None, &emb, &empty3, 4, 1).is_err());
    }

    #[test]
    fn eco_export_roundtrips() {
        let g = grid(8);
        let assignment = quadrants(8);
        let emb = synth_embedding(64, 4);
        let cfg = small_config();
        let report = analyze_partitioned_cold(&cfg, &g, None, &emb, &assignment, 4, 1).unwrap();
        let export = EcoReportExport::from_report(&report);
        let json = export.to_json().unwrap();
        let back = EcoReportExport::from_json(&json).unwrap();
        assert_eq!(back, export);
        assert!(EcoReportExport::from_json("nope").is_err());
    }
}
