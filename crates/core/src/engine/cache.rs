//! Fingerprint-keyed artifact cache: in-memory LRU plus an optional
//! on-disk layer.
//!
//! A cache entry stores a stage's output artifact *and* the diagnostics
//! segment (fallback events + warnings) the stage emitted while computing
//! it. On a hit the executor replays that segment verbatim before reusing
//! the artifact, so a warm run's report is bit-identical to the cold run
//! that populated the cache — including `degraded` status and event order.
//!
//! The disk layer is best-effort by design: entries that fail to
//! serialize (e.g. non-finite floats, which the JSON writer rejects) or
//! write are treated as misses and never fail the run. Writes are
//! crash-safe: the entry is rendered to a temporary file in the same
//! directory and atomically renamed into place, so a crash mid-write can
//! never leave a half-written entry under a live key. Every entry carries a
//! content checksum; an entry that fails to parse or verify on read is
//! *quarantined* — renamed aside with a `.quarantined` suffix and surfaced
//! as a [`FallbackEvent`] in the run's diagnostics — rather than silently
//! skipped, so corruption is observable and never re-read.
//!
//! [`SharedArtifactCache`] wraps a cache for concurrent tenants (the
//! `cirstag serve` daemon): per-operation locking plus single-flight
//! deduplication, so two workers racing on the same stage fingerprint
//! yield exactly one compute and one replay.

use crate::engine::fingerprint::{Fingerprint, Fingerprinter};
use crate::{ApproxKnnRecord, FallbackEvent};
use cirstag_graph::Graph;
use cirstag_linalg::{fail, DenseMatrix};
use cirstag_solver::GeneralizedEigen;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Schema tag written into every on-disk entry; bumped whenever the
/// payload layout changes so stale files read as misses, not garbage.
/// v3 added the `segment` field (the partition label of a
/// partition-scoped stage artifact).
const DISK_SCHEMA: &str = "cirstag-artifact/v3";

/// Error-message prefix for a schema mismatch. A stale-but-well-formed
/// entry written by another version reads as a plain miss (the disk dir may
/// be shared across versions), unlike genuine corruption, which quarantines.
const SCHEMA_MISMATCH: &str = "unsupported cache entry schema";

/// Suffix appended to a corrupt entry's file name when it is quarantined.
const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Diagnostics stage name for disk-layer events.
const DISK_STAGE: &str = "cache/disk";

/// Process-wide counter making temporary file names unique across threads
/// (two exclusive caches in one process may write the same key's entry).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Default in-memory capacity (entries). Five cacheable stages per run
/// leaves room for a ~10-config sweep before eviction starts.
const DEFAULT_CAPACITY: usize = 64;

/// The DMD scoring output of Phase 3 (the data half of a
/// [`crate::StabilityReport`]).
#[derive(Debug, Clone)]
pub struct ScoreSet {
    /// The `s` largest generalized eigenvalues, post-guardrail.
    pub eigenvalues: Vec<f64>,
    /// Per-edge DMD scores `(p, q, score)` over the input manifold.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// Per-node mean of incident edge scores.
    pub node_scores: Vec<f64>,
}

/// A cacheable stage artifact.
#[derive(Debug, Clone)]
pub enum CachedPayload {
    /// Phase-1 embedding hand-off; `None` means the raw circuit graph
    /// becomes the input manifold (skip ablation or exhausted ladder).
    Embedding(Option<DenseMatrix>),
    /// A Phase-2 manifold graph.
    Manifold(Graph),
    /// Phase-3 generalized eigenpairs.
    Eigen(GeneralizedEigen),
    /// Phase-3 DMD scores.
    Scores(ScoreSet),
}

impl CachedPayload {
    /// Stable tag for the on-disk `kind` field.
    fn kind(&self) -> &'static str {
        match self {
            CachedPayload::Embedding(_) => "embedding",
            CachedPayload::Manifold(_) => "manifold",
            CachedPayload::Eigen(_) => "eigen",
            CachedPayload::Scores(_) => "scores",
        }
    }
}

/// One cache entry: the artifact plus the diagnostics segment emitted
/// while computing it, replayed verbatim on a hit.
#[derive(Debug, Clone)]
pub struct CachedArtifact {
    /// The stage's output artifact.
    pub payload: CachedPayload,
    /// Fallback events the stage recorded when it was computed.
    pub events: Vec<FallbackEvent>,
    /// Warnings the stage recorded when it was computed.
    pub warnings: Vec<String>,
    /// Approximate-kNN records the stage emitted when it was computed.
    pub knn: Vec<ApproxKnnRecord>,
    /// Partition label (`"partition/<id>"`) for segmented, partition-scoped
    /// artifacts; `None` for whole-design stages. Metadata only — the
    /// fingerprint key already separates segments, since each partition's
    /// subgraph hashes differently — but recorded so operators can map a
    /// disk entry back to its region.
    pub segment: Option<String>,
}

/// An in-memory entry plus its LRU clock reading.
#[derive(Debug, Clone)]
struct Slot {
    value: CachedArtifact,
    last_used: u64,
}

/// Fingerprint-keyed artifact cache shared across pipeline runs.
///
/// Construct one, then pass it to [`crate::CirStag::analyze_cached`] or
/// [`crate::analyze_sweep`]; runs whose stage fingerprints match replay
/// the stored artifacts instead of recomputing them.
///
/// Failpoint-armed runs (the `failpoints` feature) should use the
/// uncached [`crate::CirStag::analyze`]: a cache hit replays the stored
/// outcome and will not consume a one-shot failpoint arming.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    entries: BTreeMap<Fingerprint, Slot>,
    capacity: usize,
    tick: u64,
    disk_dir: Option<PathBuf>,
    /// Disk-layer events (quarantined entries) accumulated since the last
    /// [`ArtifactCache::take_pending_events`] call; the engine drains these
    /// into the running analysis' diagnostics.
    pending_events: Vec<FallbackEvent>,
}

impl ArtifactCache {
    /// An in-memory cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An in-memory cache holding at most `capacity` entries (minimum 1);
    /// the least-recently-used entry is evicted at capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ArtifactCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            disk_dir: None,
            pending_events: Vec::new(),
        }
    }

    /// Adds a best-effort on-disk layer under `dir` (created on first
    /// write). Disk entries survive the process and back-fill the
    /// in-memory layer on lookup.
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// The configured disk layer, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every in-memory entry (the disk layer is untouched).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks up `key`, consulting memory first and then disk. A disk hit
    /// is promoted into the in-memory layer.
    pub(crate) fn lookup(&mut self, key: Fingerprint) -> Option<CachedArtifact> {
        self.tick = self.tick.wrapping_add(1);
        if let Some(slot) = self.entries.get_mut(&key) {
            slot.last_used = self.tick;
            return Some(slot.value.clone());
        }
        let value = self.disk_lookup(key)?;
        self.insert_memory(key, value.clone());
        Some(value)
    }

    /// Stores `value` under `key` in memory and (best-effort) on disk.
    pub(crate) fn store(&mut self, key: Fingerprint, value: CachedArtifact) {
        self.disk_store(key, &value);
        self.tick = self.tick.wrapping_add(1);
        self.insert_memory(key, value);
    }

    fn insert_memory(&mut self, key: Fingerprint, value: CachedArtifact) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Linear scan is fine at cache scale (tens of entries).
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k);
            if let Some(k) = oldest {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(
            key,
            Slot {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Drains the disk-layer events (quarantined corrupt entries) recorded
    /// since the last call. The engine appends them to the running
    /// analysis' diagnostics so corruption is observable, not silent.
    pub fn take_pending_events(&mut self) -> Vec<FallbackEvent> {
        std::mem::take(&mut self.pending_events)
    }

    fn entry_path(&self, key: Fingerprint) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("art-{}.json", key.hex())))
    }

    /// Reads `key`'s disk entry. A missing file is a plain miss; a file
    /// that fails to parse or checksum-verify is quarantined (renamed with
    /// [`QUARANTINE_SUFFIX`]) and recorded in [`ArtifactCache::pending_events`].
    fn disk_lookup(&mut self, key: Fingerprint) -> Option<CachedArtifact> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match serde_json::from_str(&text) {
            Ok(entry) => Some(entry),
            Err(e) => {
                let reason = e.to_string();
                if reason.contains(SCHEMA_MISMATCH) {
                    // Stale version, not corruption: leave the file for the
                    // version that wrote it and treat it as a miss.
                    return None;
                }
                self.quarantine(&path, &reason);
                None
            }
        }
    }

    /// Renames a corrupt entry aside and logs the event. Renaming (rather
    /// than deleting) preserves the evidence for post-mortems and keeps the
    /// corrupt bytes from being re-read as this key on the next lookup.
    fn quarantine(&mut self, path: &Path, reason: &str) {
        let mut aside = path.as_os_str().to_owned();
        aside.push(QUARANTINE_SUFFIX);
        let renamed = std::fs::rename(path, &aside).is_ok();
        self.pending_events.push(FallbackEvent {
            stage: DISK_STAGE.to_string(),
            rung: "quarantine".to_string(),
            cause: format!(
                "corrupt cache entry {}{}: {reason}",
                path.display(),
                if renamed {
                    " quarantined"
                } else {
                    " (rename aside failed)"
                },
            ),
            residual: None,
            elapsed_ms: 0,
        });
    }

    fn disk_store(&self, key: Fingerprint, value: &CachedArtifact) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        // Best-effort: non-finite floats are unserializable by design
        // (the JSON writer rejects them) and I/O failures must never
        // fail an analysis — either way the entry simply stays
        // memory-only.
        let Ok(mut json) = serde_json::to_string(value) else {
            return;
        };
        // Failpoint: simulate a torn write (power loss mid-`write`). The
        // checksum must catch the truncated entry on the next read.
        if fail::check("cache/disk-corrupt").is_some() {
            json.truncate(json.len() / 2);
        }
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        // Crash-safe publish: render into a uniquely named temp file in the
        // same directory, then atomically rename over the final path. A
        // crash between the two steps leaves only a stray `.tmp-*` file,
        // never a half-written entry under a live key.
        let tmp = dir.join(format!(
            "art-{}.json.tmp-{}-{}",
            key.hex(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        if std::fs::write(&tmp, json).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

// ---- shared, single-flight layer ------------------------------------------

/// State behind the [`SharedArtifactCache`] lock: the cache itself plus the
/// set of keys currently being computed by some tenant.
#[derive(Debug)]
struct SharedState {
    cache: ArtifactCache,
    in_flight: BTreeSet<Fingerprint>,
}

/// A thread-safe [`ArtifactCache`] for concurrent tenants.
///
/// The lock is held only across individual lookup/store operations, never
/// while a stage computes, so tenants analyzing *different* keys proceed in
/// parallel. Tenants racing on the *same* key are deduplicated
/// single-flight: the first miss becomes the leader and computes; later
/// arrivals block until the leader publishes (or fails) and then replay the
/// stored artifact. Two workers analyzing the same fingerprint therefore
/// yield exactly one compute and one replay, with bit-identical
/// diagnostics.
#[derive(Debug)]
pub struct SharedArtifactCache {
    state: Mutex<SharedState>,
    published: Condvar,
}

impl Default for SharedArtifactCache {
    fn default() -> Self {
        SharedArtifactCache::new(ArtifactCache::new())
    }
}

impl SharedArtifactCache {
    /// Wraps `cache` for shared use.
    pub fn new(cache: ArtifactCache) -> Self {
        SharedArtifactCache {
            state: Mutex::new(SharedState {
                cache,
                in_flight: BTreeSet::new(),
            }),
            published: Condvar::new(),
        }
    }

    /// Unwraps the inner cache (consumes the shared layer).
    pub fn into_inner(self) -> ArtifactCache {
        self.state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .cache
    }

    /// Runs `f` with exclusive access to the inner cache (e.g. to read
    /// `len()` for stats). Do not block inside `f`.
    pub fn with<R>(&self, f: impl FnOnce(&mut ArtifactCache) -> R) -> R {
        f(&mut self.lock().cache)
    }

    fn lock(&self) -> MutexGuard<'_, SharedState> {
        // A tenant that panicked mid-operation cannot leave the map half
        // mutated (every mutation is a single insert/remove), so the
        // poisoned state is safe to adopt.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`; on a miss, either becomes the leader for it (the
    /// caller must compute and then [`InFlightGuard::fulfill`] or drop the
    /// guard) or waits for the current leader and replays its result.
    pub(crate) fn lookup_or_lead(&self, key: Fingerprint) -> SharedLookup<'_> {
        let mut st = self.lock();
        loop {
            if let Some(hit) = st.cache.lookup(key) {
                let events = st.cache.take_pending_events();
                return SharedLookup::Hit(hit, events);
            }
            if !st.in_flight.contains(&key) {
                st.in_flight.insert(key);
                let events = st.cache.take_pending_events();
                return SharedLookup::Lead(
                    InFlightGuard {
                        owner: self,
                        key,
                        fulfilled: false,
                    },
                    events,
                );
            }
            st = self
                .published
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Outcome of [`SharedArtifactCache::lookup_or_lead`], carrying any
/// disk-layer events (quarantines) the lookup surfaced.
pub(crate) enum SharedLookup<'a> {
    /// The entry was present (or became present while waiting): replay it.
    Hit(CachedArtifact, Vec<FallbackEvent>),
    /// The caller is the leader for this key and must compute it.
    Lead(InFlightGuard<'a>, Vec<FallbackEvent>),
}

/// Leadership over one in-flight key. Dropping the guard without
/// [`InFlightGuard::fulfill`] (stage error, cancellation, or a panic
/// unwinding through the engine) releases the key so a waiting tenant can
/// take over as the new leader instead of deadlocking.
pub(crate) struct InFlightGuard<'a> {
    owner: &'a SharedArtifactCache,
    key: Fingerprint,
    fulfilled: bool,
}

impl InFlightGuard<'_> {
    /// Publishes the computed entry and wakes every tenant waiting on it.
    pub(crate) fn fulfill(mut self, value: CachedArtifact) {
        let mut st = self.owner.lock();
        st.cache.store(self.key, value);
        st.in_flight.remove(&self.key);
        self.fulfilled = true;
        drop(st);
        self.owner.published.notify_all();
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut st = self.owner.lock();
            st.in_flight.remove(&self.key);
            drop(st);
            self.owner.published.notify_all();
        }
    }
}

// ---- on-disk serialization ------------------------------------------------

/// Folds a JSON value tree into `fp` with type tags, so e.g. the string
/// `"1"` and the integer `1` cannot collide.
fn fingerprint_value(v: &Value, fp: &mut Fingerprinter) {
    match v {
        Value::Null => fp.write_byte(0),
        Value::Bool(b) => {
            fp.write_byte(1);
            fp.write_bool(*b);
        }
        Value::Int(i) => {
            fp.write_byte(2);
            fp.write_u64(u64::from_le_bytes(i.to_le_bytes()));
        }
        Value::UInt(u) => {
            fp.write_byte(3);
            fp.write_u64(*u);
        }
        Value::Float(x) => {
            fp.write_byte(4);
            fp.write_f64(*x);
        }
        Value::Str(s) => {
            fp.write_byte(5);
            fp.write_str(s);
        }
        Value::Array(items) => {
            fp.write_byte(6);
            fp.write_usize(items.len());
            for item in items {
                fingerprint_value(item, fp);
            }
        }
        Value::Object(fields) => {
            fp.write_byte(7);
            fp.write_usize(fields.len());
            for (k, item) in fields {
                fp.write_str(k);
                fingerprint_value(item, fp);
            }
        }
    }
}

/// Content checksum of a disk entry: a [`Fingerprint`] over every field
/// except `schema` and the checksum itself, rendered as the same 32-digit
/// hex the cache uses for file names.
fn content_checksum(fields: &[(&str, &Value)]) -> String {
    let mut fp = Fingerprinter::new();
    fp.write_str("cirstag-artifact-checksum/v1");
    for (name, value) in fields {
        fp.write_str(name);
        fingerprint_value(value, &mut fp);
    }
    fp.finish().hex()
}

fn matrix_to_value(m: &DenseMatrix) -> Value {
    Value::Object(vec![
        ("nrows".to_string(), m.nrows().to_value()),
        ("ncols".to_string(), m.ncols().to_value()),
        ("data".to_string(), m.as_slice().to_vec().to_value()),
    ])
}

fn matrix_from_value(v: &Value) -> Result<DenseMatrix, DeError> {
    let nrows: usize = v.field("nrows")?;
    let ncols: usize = v.field("ncols")?;
    let data: Vec<f64> = v.field("data")?;
    DenseMatrix::from_vec(nrows, ncols, data)
        .map_err(|e| DeError::new(format!("cached matrix is malformed: {e}")))
}

fn graph_to_value(g: &Graph) -> Value {
    let edges: Vec<(usize, usize, f64)> = g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
    Value::Object(vec![
        ("num_nodes".to_string(), g.num_nodes().to_value()),
        ("edges".to_string(), edges.to_value()),
    ])
}

fn graph_from_value(v: &Value) -> Result<Graph, DeError> {
    let num_nodes: usize = v.field("num_nodes")?;
    let edges: Vec<(usize, usize, f64)> = v.field("edges")?;
    Graph::from_edges(num_nodes, &edges)
        .map_err(|e| DeError::new(format!("cached graph is malformed: {e}")))
}

impl Serialize for CachedArtifact {
    fn to_value(&self) -> Value {
        let payload = match &self.payload {
            CachedPayload::Embedding(None) => Value::Null,
            CachedPayload::Embedding(Some(m)) => matrix_to_value(m),
            CachedPayload::Manifold(g) => graph_to_value(g),
            CachedPayload::Eigen(geig) => Value::Object(vec![
                ("eigenvalues".to_string(), geig.eigenvalues.to_value()),
                (
                    "eigenvectors".to_string(),
                    matrix_to_value(&geig.eigenvectors),
                ),
                ("iterations".to_string(), geig.iterations.to_value()),
            ]),
            CachedPayload::Scores(s) => Value::Object(vec![
                ("eigenvalues".to_string(), s.eigenvalues.to_value()),
                ("edge_scores".to_string(), s.edge_scores.to_value()),
                ("node_scores".to_string(), s.node_scores.to_value()),
            ]),
        };
        let kind = self.payload.kind().to_value();
        let events = self.events.to_value();
        let warnings = self.warnings.to_value();
        let knn = self.knn.to_value();
        let segment = self.segment.to_value();
        let checksum = content_checksum(&[
            ("kind", &kind),
            ("payload", &payload),
            ("events", &events),
            ("warnings", &warnings),
            ("knn", &knn),
            ("segment", &segment),
        ]);
        Value::Object(vec![
            ("schema".to_string(), DISK_SCHEMA.to_value()),
            ("checksum".to_string(), checksum.to_value()),
            ("kind".to_string(), kind),
            ("payload".to_string(), payload),
            ("events".to_string(), events),
            ("warnings".to_string(), warnings),
            ("knn".to_string(), knn),
            ("segment".to_string(), segment),
        ])
    }
}

impl Deserialize for CachedArtifact {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema: String = v.field("schema")?;
        if schema != DISK_SCHEMA {
            return Err(DeError::new(format!("{SCHEMA_MISMATCH} `{schema}`")));
        }
        let kind: String = v.field("kind")?;
        let payload_value = v
            .get("payload")
            .ok_or_else(|| DeError::new("cache entry missing `payload`"))?;
        // Verify the content checksum before trusting any field: a torn
        // write that truncated the JSON fails the parse above, but a flipped
        // byte inside a number would otherwise deserialize cleanly.
        let stored_checksum: String = v.field("checksum")?;
        let mut checked = Vec::with_capacity(6);
        for name in ["kind", "payload", "events", "warnings", "knn", "segment"] {
            let field = v
                .get(name)
                .ok_or_else(|| DeError::new(format!("cache entry missing `{name}`")))?;
            checked.push((name, field));
        }
        let expected = content_checksum(&checked);
        if stored_checksum != expected {
            return Err(DeError::new(format!(
                "cache entry checksum mismatch: stored {stored_checksum}, content hashes to {expected}"
            )));
        }
        let payload = match kind.as_str() {
            "embedding" => match payload_value {
                Value::Null => CachedPayload::Embedding(None),
                other => CachedPayload::Embedding(Some(matrix_from_value(other)?)),
            },
            "manifold" => CachedPayload::Manifold(graph_from_value(payload_value)?),
            "eigen" => CachedPayload::Eigen(GeneralizedEigen {
                eigenvalues: payload_value.field("eigenvalues")?,
                eigenvectors: matrix_from_value(
                    payload_value
                        .get("eigenvectors")
                        .ok_or_else(|| DeError::new("cache entry missing `eigenvectors`"))?,
                )?,
                iterations: payload_value.field("iterations")?,
            }),
            "scores" => CachedPayload::Scores(ScoreSet {
                eigenvalues: payload_value.field("eigenvalues")?,
                edge_scores: payload_value.field("edge_scores")?,
                node_scores: payload_value.field("node_scores")?,
            }),
            other => return Err(DeError::new(format!("unknown cache entry kind `{other}`"))),
        };
        Ok(CachedArtifact {
            payload,
            events: v.field("events")?,
            warnings: v.field("warnings")?,
            knn: v.field("knn")?,
            segment: v.field("segment")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> Fingerprint {
        Fingerprint {
            lo: n,
            hi: n ^ 0xABCD,
        }
    }

    fn manifold_entry(weight: f64) -> CachedArtifact {
        CachedArtifact {
            payload: CachedPayload::Manifold(
                Graph::from_edges(4, &[(0, 1, weight), (1, 2, 1.0), (2, 3, 1.0)]).unwrap(),
            ),
            events: vec![FallbackEvent {
                stage: "phase2/pgm-input".to_string(),
                rung: "random-prune".to_string(),
                cause: "test".to_string(),
                residual: Some(0.5),
                elapsed_ms: 3,
            }],
            warnings: vec!["w".to_string()],
            knn: vec![ApproxKnnRecord {
                stage: "phase2/manifold-input".to_string(),
                method: "hnsw".to_string(),
                requested_k: 10,
                min_candidates: 37,
                mean_candidates: 52.5,
            }],
            segment: Some("partition/3".to_string()),
        }
    }

    #[test]
    fn memory_roundtrip_and_lru_eviction() {
        let mut cache = ArtifactCache::with_capacity(2);
        cache.store(key(1), manifold_entry(1.0));
        cache.store(key(2), manifold_entry(2.0));
        assert!(cache.lookup(key(1)).is_some()); // refresh 1
        cache.store(key(3), manifold_entry(3.0)); // evicts 2
        assert!(cache.lookup(key(2)).is_none());
        assert!(cache.lookup(key(1)).is_some());
        assert!(cache.lookup(key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disk_layer_roundtrips_bit_exact() {
        let dir = std::env::temp_dir().join(format!("cirstag-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Weight with a non-trivial mantissa to exercise exact float I/O.
        let w = 0.1 + 0.2;
        {
            let mut writer = ArtifactCache::new().with_disk_dir(&dir);
            writer.store(key(7), manifold_entry(w));
        }
        let mut reader = ArtifactCache::new().with_disk_dir(&dir);
        let hit = reader.lookup(key(7)).expect("disk hit");
        match &hit.payload {
            CachedPayload::Manifold(g) => {
                let e0 = g.edges().first().unwrap();
                assert_eq!(e0.weight.to_bits(), w.to_bits());
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
        assert_eq!(hit.events.len(), 1);
        assert_eq!(hit.warnings, vec!["w".to_string()]);
        assert_eq!(hit.knn.len(), 1);
        assert_eq!(hit.knn[0].method, "hnsw");
        assert_eq!(hit.knn[0].mean_candidates.to_bits(), 52.5f64.to_bits());
        assert_eq!(hit.segment.as_deref(), Some("partition/3"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_schema_entry_is_a_plain_miss_not_quarantine() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-stale-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(15);
        let path = dir.join(format!("art-{}.json", k.hex()));
        // A structurally valid entry from an older schema version.
        std::fs::write(
            &path,
            r#"{"schema": "cirstag-artifact/v2", "checksum": "0", "kind": "scores",
               "payload": {"eigenvalues": [], "edge_scores": [], "node_scores": []},
               "events": [], "warnings": [], "knn": []}"#,
        )
        .unwrap();
        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        assert!(cache.lookup(k).is_none(), "stale schema must miss");
        assert!(
            cache.take_pending_events().is_empty(),
            "stale schema must not raise a quarantine event"
        );
        assert!(path.exists(), "stale entry must stay for its own version");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_payloads_stay_memory_only() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-nan-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        let entry = CachedArtifact {
            payload: CachedPayload::Scores(ScoreSet {
                eigenvalues: vec![f64::NAN],
                edge_scores: vec![],
                node_scores: vec![],
            }),
            events: vec![],
            warnings: vec![],
            knn: vec![],
            segment: None,
        };
        cache.store(key(9), entry);
        // Memory hit works; no disk file was produced.
        assert!(cache.lookup(key(9)).is_some());
        let mut fresh = ArtifactCache::new().with_disk_dir(&dir);
        assert!(fresh.lookup(key(9)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_reads_as_miss_and_quarantines() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(11);
        let path = dir.join(format!("art-{}.json", k.hex()));
        std::fs::write(&path, "{not json").unwrap();
        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        assert!(cache.lookup(k).is_none());
        // The corrupt file was renamed aside and the event recorded.
        assert!(!path.exists(), "corrupt entry still at its live path");
        let aside = dir.join(format!("art-{}.json{QUARANTINE_SUFFIX}", k.hex()));
        assert!(aside.exists(), "quarantined copy missing");
        let events = cache.take_pending_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, DISK_STAGE);
        assert_eq!(events[0].rung, "quarantine");
        assert!(cache.take_pending_events().is_empty(), "events drain once");
        // A second lookup is a plain miss: the quarantined bytes are not
        // re-read and no new event fires.
        assert!(cache.lookup(k).is_none());
        assert!(cache.take_pending_events().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_fails_checksum_and_quarantines() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-bitflip-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut writer = ArtifactCache::new().with_disk_dir(&dir);
            writer.store(key(21), manifold_entry(2.5));
        }
        let path = {
            let k = key(21);
            dir.join(format!("art-{}.json", k.hex()))
        };
        // Flip one digit inside a number: still valid JSON, wrong content.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("2.5", "2.75", 1);
        assert_ne!(text, corrupted, "fixture must actually change");
        std::fs::write(&path, corrupted).unwrap();

        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        assert!(cache.lookup(key(21)).is_none(), "checksum must reject");
        let events = cache.take_pending_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].cause.contains("checksum"), "{}", events[0].cause);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_leaves_no_temp_files() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-tmp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        for i in 0..4 {
            cache.store(key(30 + i), manifold_entry(1.0 + i as f64));
        }
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_cache_single_flight_dedups_leaders() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Barrier};

        let shared = Arc::new(SharedArtifactCache::default());
        let computes = Arc::new(AtomicUsize::new(0));
        let replays = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let k = key(77);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let computes = Arc::clone(&computes);
                let replays = Arc::clone(&replays);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match shared.lookup_or_lead(k) {
                        SharedLookup::Hit(hit, _) => {
                            replays.fetch_add(1, Ordering::SeqCst);
                            match hit.payload {
                                CachedPayload::Manifold(g) => assert_eq!(g.num_nodes(), 4),
                                other => panic!("wrong payload {other:?}"),
                            }
                        }
                        SharedLookup::Lead(guard, _) => {
                            // Simulate the stage compute while holding
                            // leadership (lock is NOT held here).
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            computes.fetch_add(1, Ordering::SeqCst);
                            guard.fulfill(manifold_entry(1.5));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(replays.load(Ordering::SeqCst), 3, "everyone else replays");
    }

    #[test]
    fn dropped_leader_hands_off_instead_of_deadlocking() {
        let shared = SharedArtifactCache::default();
        let k = key(88);
        match shared.lookup_or_lead(k) {
            SharedLookup::Lead(guard, _) => drop(guard), // leader fails
            SharedLookup::Hit(..) => panic!("fresh cache cannot hit"),
        }
        // The key must be takeable again, not stuck in-flight.
        match shared.lookup_or_lead(k) {
            SharedLookup::Lead(guard, _) => guard.fulfill(manifold_entry(3.0)),
            SharedLookup::Hit(..) => panic!("nothing was published yet"),
        }
        match shared.lookup_or_lead(k) {
            SharedLookup::Hit(..) => {}
            SharedLookup::Lead(..) => panic!("published entry must hit"),
        };
    }
}
