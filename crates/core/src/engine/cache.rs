//! Fingerprint-keyed artifact cache: in-memory LRU plus an optional
//! on-disk layer.
//!
//! A cache entry stores a stage's output artifact *and* the diagnostics
//! segment (fallback events + warnings) the stage emitted while computing
//! it. On a hit the executor replays that segment verbatim before reusing
//! the artifact, so a warm run's report is bit-identical to the cold run
//! that populated the cache — including `degraded` status and event order.
//!
//! The disk layer is best-effort by design: entries that fail to
//! serialize (e.g. non-finite floats, which the JSON writer rejects),
//! write, read, or parse are treated as misses and never fail the run.

use crate::engine::fingerprint::Fingerprint;
use crate::FallbackEvent;
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use cirstag_solver::GeneralizedEigen;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Schema tag written into every on-disk entry; bumped whenever the
/// payload layout changes so stale files read as misses, not garbage.
const DISK_SCHEMA: &str = "cirstag-artifact/v1";

/// Default in-memory capacity (entries). Five cacheable stages per run
/// leaves room for a ~10-config sweep before eviction starts.
const DEFAULT_CAPACITY: usize = 64;

/// The DMD scoring output of Phase 3 (the data half of a
/// [`crate::StabilityReport`]).
#[derive(Debug, Clone)]
pub struct ScoreSet {
    /// The `s` largest generalized eigenvalues, post-guardrail.
    pub eigenvalues: Vec<f64>,
    /// Per-edge DMD scores `(p, q, score)` over the input manifold.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// Per-node mean of incident edge scores.
    pub node_scores: Vec<f64>,
}

/// A cacheable stage artifact.
#[derive(Debug, Clone)]
pub enum CachedPayload {
    /// Phase-1 embedding hand-off; `None` means the raw circuit graph
    /// becomes the input manifold (skip ablation or exhausted ladder).
    Embedding(Option<DenseMatrix>),
    /// A Phase-2 manifold graph.
    Manifold(Graph),
    /// Phase-3 generalized eigenpairs.
    Eigen(GeneralizedEigen),
    /// Phase-3 DMD scores.
    Scores(ScoreSet),
}

impl CachedPayload {
    /// Stable tag for the on-disk `kind` field.
    fn kind(&self) -> &'static str {
        match self {
            CachedPayload::Embedding(_) => "embedding",
            CachedPayload::Manifold(_) => "manifold",
            CachedPayload::Eigen(_) => "eigen",
            CachedPayload::Scores(_) => "scores",
        }
    }
}

/// One cache entry: the artifact plus the diagnostics segment emitted
/// while computing it, replayed verbatim on a hit.
#[derive(Debug, Clone)]
pub struct CachedArtifact {
    /// The stage's output artifact.
    pub payload: CachedPayload,
    /// Fallback events the stage recorded when it was computed.
    pub events: Vec<FallbackEvent>,
    /// Warnings the stage recorded when it was computed.
    pub warnings: Vec<String>,
}

/// An in-memory entry plus its LRU clock reading.
#[derive(Debug, Clone)]
struct Slot {
    value: CachedArtifact,
    last_used: u64,
}

/// Fingerprint-keyed artifact cache shared across pipeline runs.
///
/// Construct one, then pass it to [`crate::CirStag::analyze_cached`] or
/// [`crate::analyze_sweep`]; runs whose stage fingerprints match replay
/// the stored artifacts instead of recomputing them.
///
/// Failpoint-armed runs (the `failpoints` feature) should use the
/// uncached [`crate::CirStag::analyze`]: a cache hit replays the stored
/// outcome and will not consume a one-shot failpoint arming.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    entries: BTreeMap<Fingerprint, Slot>,
    capacity: usize,
    tick: u64,
    disk_dir: Option<PathBuf>,
}

impl ArtifactCache {
    /// An in-memory cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An in-memory cache holding at most `capacity` entries (minimum 1);
    /// the least-recently-used entry is evicted at capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ArtifactCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            disk_dir: None,
        }
    }

    /// Adds a best-effort on-disk layer under `dir` (created on first
    /// write). Disk entries survive the process and back-fill the
    /// in-memory layer on lookup.
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// The configured disk layer, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every in-memory entry (the disk layer is untouched).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks up `key`, consulting memory first and then disk. A disk hit
    /// is promoted into the in-memory layer.
    pub(crate) fn lookup(&mut self, key: Fingerprint) -> Option<CachedArtifact> {
        self.tick = self.tick.wrapping_add(1);
        if let Some(slot) = self.entries.get_mut(&key) {
            slot.last_used = self.tick;
            return Some(slot.value.clone());
        }
        let value = self.disk_lookup(key)?;
        self.insert_memory(key, value.clone());
        Some(value)
    }

    /// Stores `value` under `key` in memory and (best-effort) on disk.
    pub(crate) fn store(&mut self, key: Fingerprint, value: CachedArtifact) {
        self.disk_store(key, &value);
        self.tick = self.tick.wrapping_add(1);
        self.insert_memory(key, value);
    }

    fn insert_memory(&mut self, key: Fingerprint, value: CachedArtifact) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Linear scan is fine at cache scale (tens of entries).
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k);
            if let Some(k) = oldest {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(
            key,
            Slot {
                value,
                last_used: self.tick,
            },
        );
    }

    fn entry_path(&self, key: Fingerprint) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("art-{}.json", key.hex())))
    }

    fn disk_lookup(&self, key: Fingerprint) -> Option<CachedArtifact> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    fn disk_store(&self, key: Fingerprint, value: &CachedArtifact) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        // Best-effort: non-finite floats are unserializable by design
        // (the JSON writer rejects them) and I/O failures must never
        // fail an analysis — either way the entry simply stays
        // memory-only.
        let Ok(json) = serde_json::to_string(value) else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let _ = std::fs::write(path, json);
    }
}

// ---- on-disk serialization ------------------------------------------------

fn matrix_to_value(m: &DenseMatrix) -> Value {
    Value::Object(vec![
        ("nrows".to_string(), m.nrows().to_value()),
        ("ncols".to_string(), m.ncols().to_value()),
        ("data".to_string(), m.as_slice().to_vec().to_value()),
    ])
}

fn matrix_from_value(v: &Value) -> Result<DenseMatrix, DeError> {
    let nrows: usize = v.field("nrows")?;
    let ncols: usize = v.field("ncols")?;
    let data: Vec<f64> = v.field("data")?;
    DenseMatrix::from_vec(nrows, ncols, data)
        .map_err(|e| DeError::new(format!("cached matrix is malformed: {e}")))
}

fn graph_to_value(g: &Graph) -> Value {
    let edges: Vec<(usize, usize, f64)> = g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
    Value::Object(vec![
        ("num_nodes".to_string(), g.num_nodes().to_value()),
        ("edges".to_string(), edges.to_value()),
    ])
}

fn graph_from_value(v: &Value) -> Result<Graph, DeError> {
    let num_nodes: usize = v.field("num_nodes")?;
    let edges: Vec<(usize, usize, f64)> = v.field("edges")?;
    Graph::from_edges(num_nodes, &edges)
        .map_err(|e| DeError::new(format!("cached graph is malformed: {e}")))
}

impl Serialize for CachedArtifact {
    fn to_value(&self) -> Value {
        let payload = match &self.payload {
            CachedPayload::Embedding(None) => Value::Null,
            CachedPayload::Embedding(Some(m)) => matrix_to_value(m),
            CachedPayload::Manifold(g) => graph_to_value(g),
            CachedPayload::Eigen(geig) => Value::Object(vec![
                ("eigenvalues".to_string(), geig.eigenvalues.to_value()),
                (
                    "eigenvectors".to_string(),
                    matrix_to_value(&geig.eigenvectors),
                ),
                ("iterations".to_string(), geig.iterations.to_value()),
            ]),
            CachedPayload::Scores(s) => Value::Object(vec![
                ("eigenvalues".to_string(), s.eigenvalues.to_value()),
                ("edge_scores".to_string(), s.edge_scores.to_value()),
                ("node_scores".to_string(), s.node_scores.to_value()),
            ]),
        };
        Value::Object(vec![
            ("schema".to_string(), DISK_SCHEMA.to_value()),
            ("kind".to_string(), self.payload.kind().to_value()),
            ("payload".to_string(), payload),
            ("events".to_string(), self.events.to_value()),
            ("warnings".to_string(), self.warnings.to_value()),
        ])
    }
}

impl Deserialize for CachedArtifact {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema: String = v.field("schema")?;
        if schema != DISK_SCHEMA {
            return Err(DeError::new(format!(
                "unsupported cache entry schema `{schema}`"
            )));
        }
        let kind: String = v.field("kind")?;
        let payload_value = v
            .get("payload")
            .ok_or_else(|| DeError::new("cache entry missing `payload`"))?;
        let payload = match kind.as_str() {
            "embedding" => match payload_value {
                Value::Null => CachedPayload::Embedding(None),
                other => CachedPayload::Embedding(Some(matrix_from_value(other)?)),
            },
            "manifold" => CachedPayload::Manifold(graph_from_value(payload_value)?),
            "eigen" => CachedPayload::Eigen(GeneralizedEigen {
                eigenvalues: payload_value.field("eigenvalues")?,
                eigenvectors: matrix_from_value(
                    payload_value
                        .get("eigenvectors")
                        .ok_or_else(|| DeError::new("cache entry missing `eigenvectors`"))?,
                )?,
                iterations: payload_value.field("iterations")?,
            }),
            "scores" => CachedPayload::Scores(ScoreSet {
                eigenvalues: payload_value.field("eigenvalues")?,
                edge_scores: payload_value.field("edge_scores")?,
                node_scores: payload_value.field("node_scores")?,
            }),
            other => return Err(DeError::new(format!("unknown cache entry kind `{other}`"))),
        };
        Ok(CachedArtifact {
            payload,
            events: v.field("events")?,
            warnings: v.field("warnings")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> Fingerprint {
        Fingerprint {
            lo: n,
            hi: n ^ 0xABCD,
        }
    }

    fn manifold_entry(weight: f64) -> CachedArtifact {
        CachedArtifact {
            payload: CachedPayload::Manifold(
                Graph::from_edges(4, &[(0, 1, weight), (1, 2, 1.0), (2, 3, 1.0)]).unwrap(),
            ),
            events: vec![FallbackEvent {
                stage: "phase2/pgm-input".to_string(),
                rung: "random-prune".to_string(),
                cause: "test".to_string(),
                residual: Some(0.5),
                elapsed_ms: 3,
            }],
            warnings: vec!["w".to_string()],
        }
    }

    #[test]
    fn memory_roundtrip_and_lru_eviction() {
        let mut cache = ArtifactCache::with_capacity(2);
        cache.store(key(1), manifold_entry(1.0));
        cache.store(key(2), manifold_entry(2.0));
        assert!(cache.lookup(key(1)).is_some()); // refresh 1
        cache.store(key(3), manifold_entry(3.0)); // evicts 2
        assert!(cache.lookup(key(2)).is_none());
        assert!(cache.lookup(key(1)).is_some());
        assert!(cache.lookup(key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disk_layer_roundtrips_bit_exact() {
        let dir = std::env::temp_dir().join(format!("cirstag-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Weight with a non-trivial mantissa to exercise exact float I/O.
        let w = 0.1 + 0.2;
        {
            let mut writer = ArtifactCache::new().with_disk_dir(&dir);
            writer.store(key(7), manifold_entry(w));
        }
        let mut reader = ArtifactCache::new().with_disk_dir(&dir);
        let hit = reader.lookup(key(7)).expect("disk hit");
        match &hit.payload {
            CachedPayload::Manifold(g) => {
                let e0 = g.edges().first().unwrap();
                assert_eq!(e0.weight.to_bits(), w.to_bits());
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
        assert_eq!(hit.events.len(), 1);
        assert_eq!(hit.warnings, vec!["w".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_payloads_stay_memory_only() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-nan-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        let entry = CachedArtifact {
            payload: CachedPayload::Scores(ScoreSet {
                eigenvalues: vec![f64::NAN],
                edge_scores: vec![],
                node_scores: vec![],
            }),
            events: vec![],
            warnings: vec![],
        };
        cache.store(key(9), entry);
        // Memory hit works; no disk file was produced.
        assert!(cache.lookup(key(9)).is_some());
        let mut fresh = ArtifactCache::new().with_disk_dir(&dir);
        assert!(fresh.lookup(key(9)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_reads_as_miss() {
        let dir =
            std::env::temp_dir().join(format!("cirstag-cache-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(11);
        std::fs::write(dir.join(format!("art-{}.json", k.hex())), "{not json").unwrap();
        let mut cache = ArtifactCache::new().with_disk_dir(&dir);
        assert!(cache.lookup(k).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
