//! Typed stage-graph execution engine behind [`crate::CirStag::analyze`].
//!
//! The three CirSTAG phases decompose into six typed stages (see DESIGN.md
//! §5e): `phase1/embedding` → `phase2/manifold-input` →
//! `phase2/manifold-output` → `phase3/pencil` → `phase3/geig` →
//! `phase3/dmd`. One executor applies the cross-cutting machinery — stage
//! fingerprinting, cache lookup/replay, diagnostics segment capture —
//! uniformly, while the phase driver in [`run_pipeline`] keeps the
//! *phase-level* semantics (stall failpoints, wall-clock timing, budget
//! enforcement) exactly where the monolithic pipeline had them.
//!
//! Caching works per stage: a stage's key fingerprints its inputs
//! (Merkle-chained artifact fingerprints) plus only the config fields it
//! declares it reads, so changing a Phase-3 knob such as
//! [`crate::CirStagConfig::num_eigenpairs`] invalidates only the
//! `phase3/geig` and `phase3/dmd` keys — Phase-1/2 artifacts replay from
//! cache bit-identically. `num_threads` is excluded everywhere (results
//! are thread-count-independent), so warm hits also cross thread counts.
//! Budgets are enforced against the *actual* wall clock of each run and
//! are never cached.

pub mod cache;
pub mod eco;
pub mod fingerprint;
mod stages;

pub use cache::{ArtifactCache, CachedArtifact, CachedPayload, ScoreSet, SharedArtifactCache};
pub use fingerprint::{Fingerprint, Fingerprinter};

use crate::resilience::CancelToken;
use crate::{
    CirStagConfig, CirStagError, FailurePolicy, PhaseTimings, RunDiagnostics, StabilityReport,
    StageCacheRecord,
};
use cache::{InFlightGuard, SharedLookup};
use cirstag_graph::Graph;
use cirstag_linalg::{fail, par, CsrMatrix, DenseMatrix};
use cirstag_solver::{GeneralizedEigen, LaplacianSolver, SolverWorkspace};
use std::time::{Duration, Instant};

/// Saturating millisecond conversion for diagnostics timestamps: a `u128`
/// elapsed time beyond `u64::MAX` ms clamps instead of truncating.
pub(crate) fn millis_u64(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX)
}

/// The Phase-3 Laplacian pencil: `L_X` and the preconditioned `L_Y` solver.
pub(crate) struct PencilArtifact {
    /// The input manifold's Laplacian `L_X`.
    pub lx: CsrMatrix,
    /// The output manifold's solver (applies `L_Y⁺`).
    pub ly: LaplacianSolver,
}

/// A typed value flowing along the stage graph's edges.
pub(crate) enum Artifact {
    /// Phase-1 embedding hand-off (`None` = raw-graph manifold path).
    Embedding(Option<DenseMatrix>),
    /// A Phase-2 manifold graph.
    Manifold(Graph),
    /// The Phase-3 Laplacian pencil (not cacheable; boxed — the solver's
    /// preconditioner state dwarfs every other variant).
    Pencil(Box<PencilArtifact>),
    /// Phase-3 generalized eigenpairs.
    Eigen(GeneralizedEigen),
    /// Phase-3 DMD scores.
    Scores(ScoreSet),
}

impl Artifact {
    /// The cacheable projection of this artifact, if it has one.
    fn to_payload(&self) -> Option<CachedPayload> {
        match self {
            Artifact::Embedding(e) => Some(CachedPayload::Embedding(e.clone())),
            Artifact::Manifold(g) => Some(CachedPayload::Manifold(g.clone())),
            Artifact::Eigen(geig) => Some(CachedPayload::Eigen(geig.clone())),
            Artifact::Scores(s) => Some(CachedPayload::Scores(s.clone())),
            Artifact::Pencil(_) => None,
        }
    }

    /// Rehydrates an artifact from a cached payload.
    fn from_payload(payload: CachedPayload) -> Self {
        match payload {
            CachedPayload::Embedding(e) => Artifact::Embedding(e),
            CachedPayload::Manifold(g) => Artifact::Manifold(g),
            CachedPayload::Eigen(geig) => Artifact::Eigen(geig),
            CachedPayload::Scores(s) => Artifact::Scores(s),
        }
    }
}

/// Everything a stage may read or append to while running.
pub(crate) struct StageCtx<'a> {
    /// Seed-mixed effective configuration.
    pub cfg: &'a CirStagConfig,
    /// The circuit graph `G`.
    pub graph: &'a Graph,
    /// Optional per-node features.
    pub features: Option<&'a DenseMatrix>,
    /// The GNN's output embedding `Y`.
    pub output_embedding: &'a DenseMatrix,
    /// Node count (== `graph.num_nodes()`).
    pub n: usize,
    /// Run diagnostics; stages append events/warnings here and the
    /// executor captures the appended segment for cache replay.
    pub diag: &'a mut RunDiagnostics,
    /// Shared solver scratch arena.
    pub ws: &'a mut SolverWorkspace,
    /// Start instant of the enclosing phase — guard/audit events timestamp
    /// relative to this, exactly like the monolithic pipeline did.
    pub phase_start: Instant,
}

/// One unit of pipeline work with a declared cache contract.
pub(crate) trait Stage {
    /// Stable stage name; part of the cache key and the diagnostics.
    fn name(&self) -> &'static str;
    /// Whether the stage's artifact (plus diagnostics segment) may be
    /// cached and replayed.
    fn cacheable(&self) -> bool;
    /// Folds the raw data and config fields this stage reads into `fp`.
    /// Input artifacts are chained by the executor and must not be
    /// re-declared here.
    fn fingerprint(&self, ctx: &StageCtx<'_>, fp: &mut Fingerprinter);
    /// Computes the stage's artifact, appending any fallback events,
    /// guard events, and warnings to `ctx.diag`.
    fn run(&self, ctx: &mut StageCtx<'_>, inputs: &[&Artifact]) -> Result<Artifact, CirStagError>;
}

/// Cache interaction status: the stage's stored segment was replayed.
const STATUS_REPLAYED: &str = "replayed";
/// Cache interaction status: the stage ran and its result was stored.
const STATUS_COMPUTED: &str = "computed";
/// Cache interaction status: the stage is not cacheable.
const STATUS_UNCACHED: &str = "uncached";

/// The cache binding of one pipeline run: none, an exclusively borrowed
/// cache (the historical `analyze_cached` path), or a shared cache serving
/// concurrent tenants through per-operation locking and single-flight
/// deduplication (the `cirstag serve` path).
pub(crate) enum CacheRef<'c> {
    /// Uncached run.
    None,
    /// One tenant, exclusive borrow.
    Exclusive(&'c mut ArtifactCache),
    /// Many tenants, per-operation locking.
    Shared(&'c SharedArtifactCache),
}

/// Applies the uniform cross-cutting machinery around every stage: key
/// derivation, cache lookup/replay, diagnostics segment capture, hit/miss
/// accounting, and cancellation polling.
struct Executor<'c> {
    cache: CacheRef<'c>,
    cancel: Option<&'c CancelToken>,
    /// Partition label stamped into stored entries (`None` for whole-design
    /// runs). Metadata only: the stage key already separates segments.
    segment: Option<&'c str>,
    hits: usize,
    misses: usize,
    records: Vec<StageCacheRecord>,
}

impl<'c> Executor<'c> {
    fn new(cache: CacheRef<'c>, cancel: Option<&'c CancelToken>, segment: Option<&'c str>) -> Self {
        Executor {
            cache,
            cancel,
            segment,
            hits: 0,
            misses: 0,
            records: Vec::new(),
        }
    }

    fn record(&mut self, stage: &dyn Stage, status: &str) {
        self.records.push(StageCacheRecord {
            stage: stage.name().to_string(),
            status: status.to_string(),
        });
    }

    /// Polls the token, derives the stage key, replays a cached segment on
    /// a hit, or runs the stage and captures its diagnostics segment on a
    /// miss.
    fn run_stage(
        &mut self,
        stage: &dyn Stage,
        ctx: &mut StageCtx<'_>,
        inputs: &[&Artifact],
        input_fps: &[Fingerprint],
    ) -> Result<(Artifact, Fingerprint), CirStagError> {
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(CirStagError::Cancelled {
                stage: stage.name(),
            });
        }
        let mut fp = Fingerprinter::new();
        fp.write_str("cirstag-stage/v1");
        fp.write_str(stage.name());
        // Run-wide knobs that change which code path produced an artifact.
        fp.write_bool(ctx.cfg.policy == FailurePolicy::BestEffort);
        fp.write_usize(ctx.cfg.stage_budget.retry_iter_factor);
        // Audits fire only in validate/debug builds and leave events in the
        // captured segment, so the build flavor is part of the key.
        fp.write_bool(cfg!(any(feature = "validate", debug_assertions)));
        for f in input_fps {
            fp.write_fingerprint(*f);
        }
        stage.fingerprint(ctx, &mut fp);
        let key = fp.finish();

        let cacheable = stage.cacheable();
        // Single-flight leadership over `key` while a shared-cache miss
        // computes; dropped (releasing the key to waiting tenants) if the
        // stage errors or produces no cacheable payload.
        let mut lead: Option<InFlightGuard<'_>> = None;
        if cacheable {
            // Disk-layer quarantine events surfaced by the lookup are
            // appended *before* the segment marks below, so they are never
            // captured into (and replayed from) the stage's own segment.
            match &mut self.cache {
                CacheRef::None => {}
                CacheRef::Exclusive(cache) => {
                    let hit = cache.lookup(key);
                    ctx.diag.events.extend(cache.take_pending_events());
                    if let Some(hit) = hit {
                        ctx.diag.events.extend(hit.events);
                        ctx.diag.warnings.extend(hit.warnings);
                        ctx.diag.approx_knn.extend(hit.knn);
                        self.hits += 1;
                        self.record(stage, STATUS_REPLAYED);
                        return Ok((Artifact::from_payload(hit.payload), key));
                    }
                }
                CacheRef::Shared(shared) => match shared.lookup_or_lead(key) {
                    SharedLookup::Hit(hit, disk_events) => {
                        ctx.diag.events.extend(disk_events);
                        ctx.diag.events.extend(hit.events);
                        ctx.diag.warnings.extend(hit.warnings);
                        ctx.diag.approx_knn.extend(hit.knn);
                        self.hits += 1;
                        self.record(stage, STATUS_REPLAYED);
                        return Ok((Artifact::from_payload(hit.payload), key));
                    }
                    SharedLookup::Lead(guard, disk_events) => {
                        ctx.diag.events.extend(disk_events);
                        lead = Some(guard);
                    }
                },
            }
        }
        let ev_mark = ctx.diag.events.len();
        let warn_mark = ctx.diag.warnings.len();
        let knn_mark = ctx.diag.approx_knn.len();
        let artifact = stage.run(ctx, inputs)?;
        if !matches!(self.cache, CacheRef::None) {
            if cacheable {
                if let Some(payload) = artifact.to_payload() {
                    let entry = CachedArtifact {
                        payload,
                        events: ctx.diag.events.get(ev_mark..).unwrap_or(&[]).to_vec(),
                        warnings: ctx.diag.warnings.get(warn_mark..).unwrap_or(&[]).to_vec(),
                        knn: ctx.diag.approx_knn.get(knn_mark..).unwrap_or(&[]).to_vec(),
                        segment: self.segment.map(str::to_string),
                    };
                    match (&mut self.cache, lead.take()) {
                        (CacheRef::Exclusive(cache), _) => cache.store(key, entry),
                        (CacheRef::Shared(_), Some(guard)) => guard.fulfill(entry),
                        _ => {}
                    }
                }
                self.misses += 1;
                self.record(stage, STATUS_COMPUTED);
            } else {
                self.record(stage, STATUS_UNCACHED);
            }
        }
        Ok((artifact, key))
    }
}

/// Enforces the per-stage wall-clock budget: a typed error under
/// [`FailurePolicy::Strict`], a recorded degradation under
/// [`FailurePolicy::BestEffort`]. Budgets meter the *actual* run and are
/// never part of a cache key or a replayed segment.
fn enforce_budget(
    stage: &'static str,
    elapsed: Duration,
    cfg: &CirStagConfig,
    diag: &mut RunDiagnostics,
) -> Result<(), CirStagError> {
    let Some(budget_ms) = cfg.stage_budget.wall_clock_ms else {
        return Ok(());
    };
    let elapsed_ms = millis_u64(elapsed);
    if elapsed_ms <= budget_ms {
        return Ok(());
    }
    if cfg.policy == FailurePolicy::BestEffort {
        diag.events.push(crate::FallbackEvent {
            stage: stage.to_string(),
            rung: "budget".to_string(),
            cause: format!(
                "stage exceeded its wall-clock budget ({elapsed_ms}ms spent, {budget_ms}ms allowed)"
            ),
            residual: None,
            elapsed_ms,
        });
        Ok(())
    } else {
        Err(CirStagError::BudgetExhausted {
            stage,
            elapsed_ms,
            budget_ms,
        })
    }
}

/// Runs the full stage graph: validation, seed mixing, the three phases
/// with their stall failpoints and budgets, and report assembly.
///
/// This is the single implementation behind [`crate::CirStag::analyze`]
/// (`cache = None`), [`crate::CirStag::analyze_cached`], and
/// [`crate::analyze_sweep`].
pub(crate) fn run_pipeline(
    config: &CirStagConfig,
    input_graph: &Graph,
    node_features: Option<&DenseMatrix>,
    output_embedding: &DenseMatrix,
    cache: CacheRef<'_>,
    cancel: Option<&CancelToken>,
) -> Result<StabilityReport, CirStagError> {
    run_pipeline_segmented(
        config,
        input_graph,
        node_features,
        output_embedding,
        cache,
        cancel,
        None,
    )
}

/// [`run_pipeline`] with a partition label stamped into every artifact the
/// run stores (the partition-scoped driver in [`eco`] runs one sub-pipeline
/// per partition and labels each segment `"partition/<id>"`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline_segmented(
    config: &CirStagConfig,
    input_graph: &Graph,
    node_features: Option<&DenseMatrix>,
    output_embedding: &DenseMatrix,
    cache: CacheRef<'_>,
    cancel: Option<&CancelToken>,
    segment: Option<&str>,
) -> Result<StabilityReport, CirStagError> {
    let n = input_graph.num_nodes();
    if n < 4 {
        return Err(CirStagError::InvalidArgument {
            reason: format!("need at least 4 nodes, got {n}"),
        });
    }
    if output_embedding.nrows() != n {
        return Err(CirStagError::InvalidArgument {
            reason: format!(
                "output embedding has {} rows but the graph has {n} nodes",
                output_embedding.nrows()
            ),
        });
    }
    if let Some(f) = node_features {
        if f.nrows() != n {
            return Err(CirStagError::InvalidArgument {
                reason: format!(
                    "node features have {} rows but the graph has {n} nodes",
                    f.nrows()
                ),
            });
        }
    }
    // Mix the master seed into every stochastic sub-stage so that varying
    // `seed` alone re-randomizes the whole pipeline.
    let mut cfg = *config;
    cfg.spectral.seed ^= cfg.seed;
    cfg.knn.seed ^= cfg.seed;
    cfg.pgm.seed ^= cfg.seed;
    let cfg = &cfg;

    // Single entry point for the parallel execution layer: every stage
    // below reads the pool size set here.
    par::set_num_threads(cfg.num_threads);
    let threads = par::current_num_threads();

    let mut diag = RunDiagnostics::default();
    // One scratch-buffer arena for the whole run: the Phase-1 Lanczos and
    // Phase-3 generalized Lanczos share length-`n` vectors, so buffers
    // warmed in Phase 1 are reused in Phase 3 instead of reallocated.
    let mut ws = SolverWorkspace::new();
    let mut exec = Executor::new(cache, cancel, segment);

    // ---- Phase 1: input/output embedding matrices -------------------
    // cirstag-lint: allow(nondeterminism) -- phase wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t0 = Instant::now();
    fail::trigger("phase1/stall");
    let (embedding_art, embedding_fp) = {
        let mut ctx = StageCtx {
            cfg,
            graph: input_graph,
            features: node_features,
            output_embedding,
            n,
            diag: &mut diag,
            ws: &mut ws,
            phase_start: t0,
        };
        exec.run_stage(&stages::EmbeddingStage, &mut ctx, &[], &[])?
    };
    // cirstag-lint: allow(nondeterminism) -- phase wall-clock diagnostics only; excluded from fingerprints and artifacts
    let phase1 = t0.elapsed();
    enforce_budget("phase1", phase1, cfg, &mut diag)?;

    // ---- Phase 2: graph-based manifolds via PGMs ---------------------
    // cirstag-lint: allow(nondeterminism) -- phase wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t1 = Instant::now();
    fail::trigger("phase2/stall");
    let (input_manifold_art, input_manifold_fp, output_manifold_art, output_manifold_fp) = {
        let mut ctx = StageCtx {
            cfg,
            graph: input_graph,
            features: node_features,
            output_embedding,
            n,
            diag: &mut diag,
            ws: &mut ws,
            phase_start: t1,
        };
        let (min_art, min_fp) = exec.run_stage(
            &stages::InputManifoldStage,
            &mut ctx,
            &[&embedding_art],
            &[embedding_fp],
        )?;
        let (mout_art, mout_fp) = exec.run_stage(
            &stages::OutputManifoldStage,
            &mut ctx,
            &[&min_art],
            &[min_fp],
        )?;
        (min_art, min_fp, mout_art, mout_fp)
    };
    // cirstag-lint: allow(nondeterminism) -- phase wall-clock diagnostics only; excluded from fingerprints and artifacts
    let phase2 = t1.elapsed();
    enforce_budget("phase2", phase2, cfg, &mut diag)?;

    // ---- Phase 3: DMD stability scores -------------------------------
    // cirstag-lint: allow(nondeterminism) -- phase wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t2 = Instant::now();
    fail::trigger("phase3/stall");
    let scores_art = {
        let mut ctx = StageCtx {
            cfg,
            graph: input_graph,
            features: node_features,
            output_embedding,
            n,
            diag: &mut diag,
            ws: &mut ws,
            phase_start: t2,
        };
        let (pencil_art, pencil_fp) = exec.run_stage(
            &stages::PencilStage,
            &mut ctx,
            &[&input_manifold_art, &output_manifold_art],
            &[input_manifold_fp, output_manifold_fp],
        )?;
        let (geig_art, geig_fp) =
            exec.run_stage(&stages::GeigStage, &mut ctx, &[&pencil_art], &[pencil_fp])?;
        let (scores_art, _scores_fp) = exec.run_stage(
            &stages::DmdStage,
            &mut ctx,
            &[&geig_art, &input_manifold_art],
            &[geig_fp, input_manifold_fp],
        )?;
        scores_art
    };
    // cirstag-lint: allow(nondeterminism) -- phase wall-clock diagnostics only; excluded from fingerprints and artifacts
    let phase3 = t2.elapsed();
    enforce_budget("phase3", phase3, cfg, &mut diag)?;

    let Artifact::Scores(scores) = scores_art else {
        return Err(CirStagError::InvalidArgument {
            reason: "internal: phase3/dmd produced a non-score artifact".to_string(),
        });
    };
    let Artifact::Manifold(input_manifold) = input_manifold_art else {
        return Err(CirStagError::InvalidArgument {
            reason: "internal: phase2/manifold-input produced a non-manifold artifact".to_string(),
        });
    };
    let Artifact::Manifold(output_manifold) = output_manifold_art else {
        return Err(CirStagError::InvalidArgument {
            reason: "internal: phase2/manifold-output produced a non-manifold artifact".to_string(),
        });
    };

    diag.cache = exec.records;
    let degraded = !diag.events.is_empty();
    Ok(StabilityReport {
        node_scores: scores.node_scores,
        edge_scores: scores.edge_scores,
        eigenvalues: scores.eigenvalues,
        input_manifold,
        output_manifold,
        timings: PhaseTimings {
            phase1,
            phase2,
            phase3,
            threads,
            cache_hits: exec.hits,
            cache_misses: exec.misses,
        },
        degraded,
        diagnostics: diag,
    })
}
