//! Content fingerprints for the stage-graph artifact cache.
//!
//! Every stage key is a 128-bit [`Fingerprint`] produced by hashing, in
//! order: an engine schema tag, the stage name, the run-wide knobs that
//! change *behavior* (failure policy, retry budget, audit build flavor),
//! the fingerprints of the stage's input artifacts (Merkle-style chaining),
//! and finally the raw data plus config fields the stage itself declares it
//! reads. Fields a stage does not read — most importantly `num_threads`
//! (results are bit-identical at every thread count) and Phase-3-only knobs
//! in Phase-1/2 keys — are deliberately excluded, which is what makes
//! incremental re-runs hit the cache.
//!
//! The hash is two independent FNV-1a lanes over the same byte stream; it
//! is a content address for caching, not a cryptographic commitment.

use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;

/// 64-bit FNV-1a prime shared by both lanes.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Standard FNV-1a offset basis (low lane).
const FNV_OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325;
/// High-lane offset basis; the lane also whitens each byte so the two
/// lanes never collapse onto the same trajectory.
const FNV_OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;
/// Per-byte whitening constant for the high lane.
const HI_LANE_XOR: u64 = 0x5c;

/// A 128-bit content fingerprint: the cache key of one stage invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fingerprint {
    /// Low hash lane.
    pub lo: u64,
    /// High hash lane.
    pub hi: u64,
}

impl Fingerprint {
    /// 32-hex-digit rendering, used for on-disk cache file names.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Streaming hasher producing a [`Fingerprint`].
///
/// All multi-byte writes are little-endian and floats hash by their exact
/// bit pattern, so a fingerprint is reproducible across runs, thread
/// counts, and platforms with IEEE-754 `f64`.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    lo: u64,
    hi: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprinter {
            lo: FNV_OFFSET_LO,
            hi: FNV_OFFSET_HI,
        }
    }

    /// Absorbs one byte into both lanes.
    pub fn write_byte(&mut self, b: u8) {
        let x = u64::from(b);
        self.lo = (self.lo ^ x).wrapping_mul(FNV_PRIME);
        self.hi = (self.hi ^ (x ^ HI_LANE_XOR)).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_byte(b);
        }
    }

    /// Absorbs a `usize`, widened to `u64` (saturating on exotic targets).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(u64::try_from(v).unwrap_or(u64::MAX));
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_byte(u8::from(v));
    }

    /// Absorbs an `f64` by exact bit pattern (NaN payloads included).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for &b in s.as_bytes() {
            self.write_byte(b);
        }
    }

    /// Chains another fingerprint (Merkle-style input linking).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_u64(fp.lo);
        self.write_u64(fp.hi);
    }

    /// Absorbs a graph's full content: node count plus every edge's
    /// endpoints and exact weight bits, in stored edge order.
    pub fn write_graph(&mut self, g: &Graph) {
        self.write_usize(g.num_nodes());
        self.write_usize(g.num_edges());
        for e in g.edges() {
            self.write_usize(e.u);
            self.write_usize(e.v);
            self.write_f64(e.weight);
        }
    }

    /// Absorbs a dense matrix's shape and exact element bits.
    pub fn write_matrix(&mut self, m: &DenseMatrix) {
        self.write_usize(m.nrows());
        self.write_usize(m.ncols());
        for &x in m.as_slice() {
            self.write_f64(x);
        }
    }

    /// Absorbs an optional matrix (presence flag plus content).
    pub fn write_opt_matrix(&mut self, m: Option<&DenseMatrix>) {
        match m {
            None => self.write_bool(false),
            Some(m) => {
                self.write_bool(true);
                self.write_matrix(m);
            }
        }
    }

    /// Finalizes the two lanes into a [`Fingerprint`].
    pub fn finish(&self) -> Fingerprint {
        Fingerprint {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fingerprinter::new();
        a.write_str("stage");
        a.write_u64(7);
        let mut b = Fingerprinter::new();
        b.write_str("stage");
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprinter::new();
        c.write_u64(7);
        c.write_str("stage");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn float_bits_distinguish_zero_signs() {
        let mut a = Fingerprinter::new();
        a.write_f64(0.0);
        let mut b = Fingerprinter::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn graph_content_changes_fingerprint() {
        let g1 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let g2 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]).unwrap();
        let mut a = Fingerprinter::new();
        a.write_graph(&g1);
        let mut b = Fingerprinter::new();
        b.write_graph(&g2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_32_digits() {
        let fp = Fingerprinter::new().finish();
        assert_eq!(fp.hex().len(), 32);
    }
}
