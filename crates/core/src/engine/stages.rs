//! The concrete pipeline stages and their fallback ladders.
//!
//! Each stage reproduces the corresponding block of the historical
//! monolithic `CirStag::analyze` exactly — same ladder rungs, same event
//! stage/rung strings, same guardrails — so the engine-backed pipeline is
//! behaviorally indistinguishable from the pre-engine one. The per-stage
//! `fingerprint` implementations declare precisely the raw data and config
//! fields each stage reads; anything not written there does not invalidate
//! the stage's cache entry.

#[cfg(any(feature = "validate", debug_assertions))]
use crate::audit;
use crate::engine::cache::ScoreSet;
use crate::engine::fingerprint::Fingerprinter;
use crate::engine::{millis_u64, Artifact, PencilArtifact, Stage, StageCtx};
use crate::{
    ApproxKnnRecord, CirStagConfig, CirStagError, FailurePolicy, FallbackEvent, RunDiagnostics,
};
use cirstag_embed::{
    augment_with_features, dense_spectral_embedding, knn_graph_with_stats, spectral_embedding_ws,
    EmbedError, KnnConfig, KnnMethod, KnnStats, SpectralConfig,
};
use cirstag_graph::Graph;
use cirstag_linalg::{fail, par, DenseMatrix};
use cirstag_pgm::{learn_manifold, random_prune, PgmConfig};
use cirstag_solver::{
    generalized_eigen_dense, generalized_lanczos_ws, CgOptions, GeneralizedEigen, LadderRung,
    LaplacianSolver, SolverError, SolverWorkspace,
};
use std::time::Instant;

/// Seed perturbation applied to re-seeded eigensolver retries so the retry
/// explores a different Krylov subspace than the failed attempt.
const RETRY_RESEED: u64 = 0x5EED_F00D;

/// Fetches the `idx`-th input artifact, erroring on a wiring bug.
fn stage_input<'x>(
    inputs: &[&'x Artifact],
    idx: usize,
    stage: &'static str,
) -> Result<&'x Artifact, CirStagError> {
    inputs
        .get(idx)
        .copied()
        .ok_or_else(|| CirStagError::InvalidArgument {
            reason: format!("internal: stage {stage} is missing input artifact {idx}"),
        })
}

/// Internal wiring-bug error: a stage received the wrong artifact kind.
fn artifact_mismatch(stage: &'static str) -> CirStagError {
    CirStagError::InvalidArgument {
        reason: format!("internal: stage {stage} received a mismatched artifact kind"),
    }
}

/// Folds the Phase-2 manifold-construction knobs (kNN + PGM) into `fp`.
fn write_phase2_cfg(cfg: &CirStagConfig, fp: &mut Fingerprinter) {
    fp.write_usize(cfg.knn_k);
    write_knn_cfg(&cfg.knn, fp);
    fp.write_bool(cfg.skip_manifold_sparsification);
    fp.write_bool(cfg.random_prune);
    write_pgm_cfg(&cfg.pgm, fp);
}

/// Folds the kNN construction options into `fp`.
fn write_knn_cfg(knn: &KnnConfig, fp: &mut Fingerprinter) {
    match knn.method {
        KnnMethod::Exact => fp.write_byte(0),
        KnnMethod::RpForest {
            num_trees,
            leaf_size,
        } => {
            fp.write_byte(1);
            fp.write_usize(num_trees);
            fp.write_usize(leaf_size);
        }
        KnnMethod::Hnsw {
            m,
            ef_construction,
            ef_search,
        } => {
            fp.write_byte(2);
            fp.write_usize(m);
            fp.write_usize(ef_construction);
            fp.write_usize(ef_search);
        }
    }
    fp.write_u64(knn.seed);
    fp.write_f64(knn.weight_epsilon);
    fp.write_bool(knn.ensure_connected);
}

/// Records an approximate-kNN diagnostic for `stage` when the search
/// reported one (exact searches report `None`). The record lands in the
/// stage's captured diagnostics segment, so cache hits replay it verbatim.
fn record_knn_stats(stage: &'static str, stats: Option<KnnStats>, diag: &mut RunDiagnostics) {
    if let Some(stats) = stats {
        diag.approx_knn.push(ApproxKnnRecord {
            stage: stage.to_string(),
            method: stats.method.to_string(),
            requested_k: stats.requested_k,
            min_candidates: stats.min_candidates,
            mean_candidates: stats.mean_candidates,
        });
    }
}

/// Folds the PGM sparsification options into `fp`.
fn write_pgm_cfg(pgm: &PgmConfig, fp: &mut Fingerprinter) {
    fp.write_f64(pgm.degree_target);
    fp.write_usize(pgm.resistance_probes);
    fp.write_f64(pgm.lrd_keep_quantile);
    fp.write_u64(pgm.seed);
}

// ---- Phase 1 --------------------------------------------------------------

/// Phase 1: spectral embedding of the circuit graph (Eq. 4), feature
/// augmentation, NaN guardrail, and embedding audit.
pub(crate) struct EmbeddingStage;

impl Stage for EmbeddingStage {
    fn name(&self) -> &'static str {
        "phase1/embedding"
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn fingerprint(&self, ctx: &StageCtx<'_>, fp: &mut Fingerprinter) {
        let cfg = ctx.cfg;
        fp.write_graph(ctx.graph);
        fp.write_bool(cfg.skip_dimension_reduction);
        fp.write_usize(cfg.embedding_dim);
        fp.write_usize(cfg.spectral.max_iter);
        fp.write_f64(cfg.spectral.tol);
        fp.write_u64(cfg.spectral.seed);
        let augment = cfg.feature_weight > 0.0 && ctx.features.is_some();
        fp.write_bool(augment);
        if augment {
            fp.write_f64(cfg.feature_weight);
            fp.write_opt_matrix(ctx.features);
        }
    }

    fn run(&self, ctx: &mut StageCtx<'_>, _inputs: &[&Artifact]) -> Result<Artifact, CirStagError> {
        let cfg = ctx.cfg;
        let n = ctx.n;
        let best_effort = cfg.policy == FailurePolicy::BestEffort;
        let mut input_data: Option<DenseMatrix> = if cfg.skip_dimension_reduction {
            None // raw graph becomes the manifold directly
        } else {
            let m = cfg.embedding_dim.min(n - 1).max(1);
            match phase1_embedding(ctx.graph, m, cfg, ctx.diag, ctx.ws)? {
                None => None,
                Some(u) => {
                    let u = match ctx.features {
                        Some(f) if cfg.feature_weight > 0.0 => {
                            augment_with_features(&u, f, cfg.feature_weight)?
                        }
                        _ => u,
                    };
                    Some(u)
                }
            }
        };
        // Failpoint: corrupt the inter-phase hand-off to exercise the
        // finiteness guardrail below.
        if matches!(fail::check("phase1/nan"), Some(fail::FailAction::Nan)) {
            if let Some(u) = &mut input_data {
                u.set(0, 0, f64::NAN); // cirstag-lint: allow(float-discipline) -- deliberate failpoint corruption exercising the finiteness guardrail below
            }
        }
        // Guardrail: the embedding must be finite before it seeds Phase 2.
        if input_data.as_ref().is_some_and(|u| !u.all_finite()) {
            if best_effort {
                ctx.diag.events.push(FallbackEvent {
                    stage: "phase1/nan-guard".to_string(),
                    rung: "degraded".to_string(),
                    cause: "spectral embedding contains non-finite values".to_string(),
                    residual: None,
                    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
                    elapsed_ms: millis_u64(ctx.phase_start.elapsed()),
                });
                ctx.diag.warnings.push(
                    "phase1 embedding was non-finite; using the raw circuit graph as the input manifold"
                        .to_string(),
                );
                input_data = None;
            } else {
                return Err(CirStagError::NonFiniteStage { stage: "phase1" });
            }
        }
        // Invariant audit (validate feature / debug builds): the embedding
        // hand-off must be finite and row-matched to the circuit graph.
        #[cfg(any(feature = "validate", debug_assertions))]
        if let Some(u) = &input_data {
            audit::enforce(
                "phase1/audit",
                audit::embedding_violations(u, n, "input embedding"),
                cfg.policy,
                ctx.diag,
                // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
                millis_u64(ctx.phase_start.elapsed()),
            )?;
        }
        Ok(Artifact::Embedding(input_data))
    }
}

// ---- Phase 2 --------------------------------------------------------------

/// Phase 2a: the input manifold `G_X` — kNN over the Phase-1 embedding,
/// PGM-sparsified, or the raw circuit graph when there is no embedding.
pub(crate) struct InputManifoldStage;

impl Stage for InputManifoldStage {
    fn name(&self) -> &'static str {
        "phase2/manifold-input"
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn fingerprint(&self, ctx: &StageCtx<'_>, fp: &mut Fingerprinter) {
        write_phase2_cfg(ctx.cfg, fp);
    }

    fn run(&self, ctx: &mut StageCtx<'_>, inputs: &[&Artifact]) -> Result<Artifact, CirStagError> {
        let cfg = ctx.cfg;
        let embedding = match stage_input(inputs, 0, "phase2/manifold-input")? {
            Artifact::Embedding(e) => e,
            _ => return Err(artifact_mismatch("phase2/manifold-input")),
        };
        let k = cfg.knn_k.min(ctx.n - 1).max(1);
        let manifold = match embedding {
            None => ctx.graph.clone(),
            Some(u) => {
                let (dense, stats) = knn_graph_with_stats(u, k, &cfg.knn)?;
                record_knn_stats("phase2/manifold-input", stats, ctx.diag);
                sparsify_with_ladder(&dense, cfg, "phase2/pgm-input", ctx.diag)?
            }
        };
        Ok(Artifact::Manifold(manifold))
    }
}

/// Phase 2b: the output manifold `G_Y` — kNN over the GNN embedding,
/// PGM-sparsified — plus the combined manifold audit over `G_X` and `G_Y`
/// (which is why `G_X` is an input of this stage).
pub(crate) struct OutputManifoldStage;

impl Stage for OutputManifoldStage {
    fn name(&self) -> &'static str {
        "phase2/manifold-output"
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn fingerprint(&self, ctx: &StageCtx<'_>, fp: &mut Fingerprinter) {
        fp.write_matrix(ctx.output_embedding);
        write_phase2_cfg(ctx.cfg, fp);
    }

    fn run(&self, ctx: &mut StageCtx<'_>, inputs: &[&Artifact]) -> Result<Artifact, CirStagError> {
        let cfg = ctx.cfg;
        let input_manifold = match stage_input(inputs, 0, "phase2/manifold-output")? {
            Artifact::Manifold(g) => g,
            _ => return Err(artifact_mismatch("phase2/manifold-output")),
        };
        let k = cfg.knn_k.min(ctx.n - 1).max(1);
        let (dense_y, stats) = knn_graph_with_stats(ctx.output_embedding, k, &cfg.knn)?;
        record_knn_stats("phase2/manifold-output", stats, ctx.diag);
        let output_manifold = sparsify_with_ladder(&dense_y, cfg, "phase2/pgm-output", ctx.diag)?;
        // Invariant audit: both manifolds must carry finite positive weights
        // before their Laplacians seed the Phase-3 eigenproblem (Eq. 8 treats
        // the weights as conductances).
        #[cfg(any(feature = "validate", debug_assertions))]
        {
            let mut violations = audit::manifold_violations(input_manifold, "input manifold");
            violations.extend(audit::manifold_violations(
                &output_manifold,
                "output manifold",
            ));
            audit::enforce(
                "phase2/audit",
                violations,
                cfg.policy,
                ctx.diag,
                // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
                millis_u64(ctx.phase_start.elapsed()),
            )?;
        }
        #[cfg(not(any(feature = "validate", debug_assertions)))]
        let _ = input_manifold;
        Ok(Artifact::Manifold(output_manifold))
    }
}

// ---- Phase 3 --------------------------------------------------------------

/// Phase 3a: the Laplacian pencil `(L_X, L_Y⁺)` — `L_X` assembly, the
/// Laplacian audit, and the preconditioned `L_Y` solver. Not cacheable:
/// the solver holds preconditioner state that is cheap to rebuild and
/// expensive to serialize.
pub(crate) struct PencilStage;

impl Stage for PencilStage {
    fn name(&self) -> &'static str {
        "phase3/pencil"
    }

    fn cacheable(&self) -> bool {
        false
    }

    fn fingerprint(&self, _ctx: &StageCtx<'_>, _fp: &mut Fingerprinter) {
        // Everything this stage reads arrives through its input manifolds;
        // the solver options are fixed constants.
    }

    fn run(&self, ctx: &mut StageCtx<'_>, inputs: &[&Artifact]) -> Result<Artifact, CirStagError> {
        let cfg = ctx.cfg;
        let input_manifold = match stage_input(inputs, 0, "phase3/pencil")? {
            Artifact::Manifold(g) => g,
            _ => return Err(artifact_mismatch("phase3/pencil")),
        };
        let output_manifold = match stage_input(inputs, 1, "phase3/pencil")? {
            Artifact::Manifold(g) => g,
            _ => return Err(artifact_mismatch("phase3/pencil")),
        };
        let lx = input_manifold.laplacian();
        // Invariant audit: Eq. 5 requires L = Σ w_pq e_pq e_pqᵀ — well-formed
        // CSR, symmetric, and PSD (spot-checked with deterministic probes).
        #[cfg(any(feature = "validate", debug_assertions))]
        {
            let mut violations = audit::laplacian_violations(&lx, "L_X");
            violations.extend(audit::laplacian_violations(
                &output_manifold.laplacian(),
                "L_Y",
            ));
            audit::enforce(
                "phase3/audit",
                violations,
                cfg.policy,
                ctx.diag,
                // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
                millis_u64(ctx.phase_start.elapsed()),
            )?;
        }
        // Ranking-grade solver options: manifold Laplacians mix weights
        // spanning ~1/ε, so the default 1e-10 tolerance is unnecessarily
        // strict for eigen-subspace estimation and can fail to converge.
        let ly_options = CgOptions {
            tol: 1e-6,
            max_iter: 10_000,
        };
        // Strict keeps the historical fail-fast solver; BestEffort lets the
        // inner CG escalate tree → dense instead of surfacing NoConvergence.
        let ly = if cfg.policy == FailurePolicy::BestEffort {
            LaplacianSolver::with_ladder(output_manifold, ly_options, LadderRung::Tree)?
        } else {
            LaplacianSolver::with_tree_preconditioner(output_manifold, ly_options)?
        };
        Ok(Artifact::Pencil(Box::new(PencilArtifact { lx, ly })))
    }
}

/// Phase 3b: the generalized eigensolve `L_Y⁺ L_X v = ζ v` with its fallback
/// ladder, surfacing the inner CG ladder's escalations and warnings.
pub(crate) struct GeigStage;

impl Stage for GeigStage {
    fn name(&self) -> &'static str {
        "phase3/geig"
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn fingerprint(&self, ctx: &StageCtx<'_>, fp: &mut Fingerprinter) {
        fp.write_usize(ctx.cfg.num_eigenpairs);
        fp.write_usize(ctx.cfg.geig_max_iter);
        fp.write_u64(ctx.cfg.seed);
    }

    fn run(&self, ctx: &mut StageCtx<'_>, inputs: &[&Artifact]) -> Result<Artifact, CirStagError> {
        let cfg = ctx.cfg;
        let pencil = match stage_input(inputs, 0, "phase3/geig")? {
            Artifact::Pencil(p) => p,
            _ => return Err(artifact_mismatch("phase3/geig")),
        };
        let s = cfg.num_eigenpairs.min(ctx.n.saturating_sub(2)).max(1);
        let geig = phase3_eigenpairs(&pencil.lx, &pencil.ly, s, ctx.n, cfg, ctx.diag, ctx.ws)?;
        // Surface the inner CG ladder's escalations and warnings.
        for ev in pencil.ly.take_events() {
            ctx.diag.events.push(FallbackEvent {
                stage: "phase3/cg".to_string(),
                rung: ev.to.name().to_string(),
                cause: ev.cause,
                residual: ev.residual.filter(|r| r.is_finite()),
                elapsed_ms: ev.elapsed_ms,
            });
        }
        ctx.diag.warnings.extend(pencil.ly.take_warnings());
        Ok(Artifact::Eigen(geig))
    }
}

/// Phase 3c: DMD edge/node scores (Eq. 9) with the finiteness guardrail.
pub(crate) struct DmdStage;

impl Stage for DmdStage {
    fn name(&self) -> &'static str {
        "phase3/dmd"
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn fingerprint(&self, _ctx: &StageCtx<'_>, _fp: &mut Fingerprinter) {
        // Fully determined by the eigenpairs and the input manifold, which
        // arrive as chained input artifacts.
    }

    fn run(&self, ctx: &mut StageCtx<'_>, inputs: &[&Artifact]) -> Result<Artifact, CirStagError> {
        let cfg = ctx.cfg;
        let best_effort = cfg.policy == FailurePolicy::BestEffort;
        let geig = match stage_input(inputs, 0, "phase3/dmd")? {
            Artifact::Eigen(g) => g,
            _ => return Err(artifact_mismatch("phase3/dmd")),
        };
        let input_manifold = match stage_input(inputs, 1, "phase3/dmd")? {
            Artifact::Manifold(g) => g,
            _ => return Err(artifact_mismatch("phase3/dmd")),
        };
        let mut eigenvalues = geig.eigenvalues.clone();
        // Failpoint: corrupt the spectrum to exercise the score guardrail.
        if matches!(fail::check("phase3/nan"), Some(fail::FailAction::Nan)) {
            if let Some(z) = eigenvalues.first_mut() {
                *z = f64::NAN; // cirstag-lint: allow(float-discipline) -- deliberate failpoint corruption exercising the score guardrail
            }
        }

        // Edge scores ‖V_sᵀe_pq‖² = Σ_i ζ_i (v_i[p] − v_i[q])² over E_X.
        // Each edge's score depends only on that edge, so the map runs across
        // the pool; the node accumulation stays serial in edge order so the
        // floating-point reduction is identical for every thread count.
        let zetas: Vec<f64> = eigenvalues.iter().map(|&z| z.max(0.0)).collect();
        let vs = &geig.eigenvectors;
        let edges = input_manifold.edges();
        let mut edge_scores: Vec<(usize, usize, f64)> = par::map_indexed(edges.len(), |eid| {
            let e = &edges[eid];
            // Row-major eigenvector storage makes both endpoint rows
            // contiguous, so the score is a fused sweep over two slices
            // instead of 2s bounds-checked `get` calls.
            let ru = vs.row(e.u);
            let rv = vs.row(e.v);
            let mut score = 0.0;
            for ((&z, &a), &b) in zetas.iter().zip(ru).zip(rv) {
                let d = a - b;
                score += z * d * d;
            }
            (e.u, e.v, score)
        });
        // Guardrail: scores must be finite before they reach the report.
        if edge_scores.iter().any(|&(_, _, s)| !s.is_finite())
            || eigenvalues.iter().any(|z| !z.is_finite())
        {
            if best_effort {
                ctx.diag.events.push(FallbackEvent {
                    stage: "phase3/nan-guard".to_string(),
                    rung: "degraded".to_string(),
                    cause: "DMD spectrum or edge scores contain non-finite values".to_string(),
                    residual: None,
                    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
                    elapsed_ms: millis_u64(ctx.phase_start.elapsed()),
                });
                ctx.diag.warnings.push(
                    "phase3 produced non-finite values; they were zeroed in the report".to_string(),
                );
                for (_, _, s) in edge_scores.iter_mut() {
                    if !s.is_finite() {
                        *s = 0.0;
                    }
                }
                for z in eigenvalues.iter_mut() {
                    if !z.is_finite() {
                        *z = 0.0;
                    }
                }
            } else {
                return Err(CirStagError::NonFiniteStage { stage: "phase3" });
            }
        }
        let n = ctx.n;
        let mut node_acc = vec![0.0f64; n];
        let mut node_count = vec![0usize; n];
        for &(u, v, score) in &edge_scores {
            node_acc[u] += score;
            node_acc[v] += score;
            node_count[u] += 1;
            node_count[v] += 1;
        }
        let node_scores: Vec<f64> = node_acc
            .iter()
            .zip(&node_count)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        Ok(Artifact::Scores(ScoreSet {
            eigenvalues,
            edge_scores,
            node_scores,
        }))
    }
}

// ---- fallback ladders -----------------------------------------------------

/// Residual norm carried by an embedding-stage failure, when a finite one
/// exists (diagnostics are JSON-exported, which cannot represent infinity).
fn embed_residual(e: &EmbedError) -> Option<f64> {
    match e {
        EmbedError::Solver(SolverError::NoConvergence { residual, .. }) => {
            Some(*residual).filter(|r| r.is_finite())
        }
        _ => None,
    }
}

/// Residual norm carried by a solver-stage failure, when a finite one exists.
fn solver_residual(e: &SolverError) -> Option<f64> {
    match e {
        SolverError::NoConvergence { residual, .. } => Some(*residual).filter(|r| r.is_finite()),
        _ => None,
    }
}

/// Phase-1 fallback ladder: Lanczos → re-seeded retry with an enlarged
/// Krylov budget → dense eigendecomposition → (BestEffort only) raw circuit
/// graph as the input manifold (`Ok(None)`).
fn phase1_embedding(
    g: &Graph,
    m: usize,
    cfg: &CirStagConfig,
    diag: &mut RunDiagnostics,
    ws: &mut SolverWorkspace,
) -> Result<Option<DenseMatrix>, CirStagError> {
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t = Instant::now();
    let first = spectral_embedding_ws(g, m, &cfg.spectral, ws);
    let err = match first {
        Ok(u) => return Ok(Some(u)),
        Err(err) if cfg.policy == FailurePolicy::Strict => return Err(err.into()),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase1/eigs".to_string(),
        rung: "retry".to_string(),
        cause: err.to_string(),
        residual: embed_residual(&err),
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t.elapsed()),
    });
    let retry_cfg = SpectralConfig {
        max_iter: cfg
            .spectral
            .max_iter
            .saturating_mul(cfg.stage_budget.retry_iter_factor.max(1)),
        seed: cfg.spectral.seed ^ RETRY_RESEED,
        ..cfg.spectral
    };
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t_retry = Instant::now();
    let err = match spectral_embedding_ws(g, m, &retry_cfg, ws) {
        Ok(u) => return Ok(Some(u)),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase1/eigs".to_string(),
        rung: "dense".to_string(),
        cause: err.to_string(),
        residual: embed_residual(&err),
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t_retry.elapsed()),
    });
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t_dense = Instant::now();
    let err = match dense_spectral_embedding(g, m) {
        Ok(u) => return Ok(Some(u)),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase1/eigs".to_string(),
        rung: "degraded".to_string(),
        cause: err.to_string(),
        residual: embed_residual(&err),
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t_dense.elapsed()),
    });
    diag.warnings.push(
        "phase1 spectral embedding failed on every rung; using the raw circuit graph as the input manifold"
            .to_string(),
    );
    Ok(None)
}

/// Phase-3 fallback ladder: generalized Lanczos → re-seeded retry with an
/// enlarged iteration budget → dense generalized eigensolver → (BestEffort
/// only) a zero spectrum, which yields all-zero stability scores.
#[allow(clippy::too_many_arguments)]
fn phase3_eigenpairs(
    lx: &cirstag_linalg::CsrMatrix,
    ly_solver: &LaplacianSolver,
    s: usize,
    n: usize,
    cfg: &CirStagConfig,
    diag: &mut RunDiagnostics,
    ws: &mut SolverWorkspace,
) -> Result<GeneralizedEigen, CirStagError> {
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t = Instant::now();
    let first = generalized_lanczos_ws(lx, ly_solver, s, cfg.geig_max_iter, cfg.seed, ws);
    let err = match first {
        Ok(geig) => return Ok(geig),
        Err(err) if cfg.policy == FailurePolicy::Strict => return Err(err.into()),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase3/geig".to_string(),
        rung: "retry".to_string(),
        cause: err.to_string(),
        residual: solver_residual(&err),
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t.elapsed()),
    });
    let retry_iters = cfg
        .geig_max_iter
        .saturating_mul(cfg.stage_budget.retry_iter_factor.max(1));
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t_retry = Instant::now();
    let err =
        match generalized_lanczos_ws(lx, ly_solver, s, retry_iters, cfg.seed ^ RETRY_RESEED, ws) {
            Ok(geig) => return Ok(geig),
            Err(err) => err,
        };
    diag.events.push(FallbackEvent {
        stage: "phase3/geig".to_string(),
        rung: "dense".to_string(),
        cause: err.to_string(),
        residual: solver_residual(&err),
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t_retry.elapsed()),
    });
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t_dense = Instant::now();
    let err = match generalized_eigen_dense(lx, ly_solver.laplacian(), s) {
        Ok(geig) => return Ok(geig),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase3/geig".to_string(),
        rung: "degraded".to_string(),
        cause: err.to_string(),
        residual: solver_residual(&err),
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t_dense.elapsed()),
    });
    diag.warnings.push(
        "phase3 generalized eigensolve failed on every rung; reporting a zero spectrum and zero scores"
            .to_string(),
    );
    Ok(GeneralizedEigen {
        eigenvalues: vec![0.0; s],
        eigenvectors: DenseMatrix::zeros(n, s),
        iterations: 0,
    })
}

/// Applies the configured Phase-2 sparsification variant, with a fallback
/// ladder under [`FailurePolicy::BestEffort`]: PGM learning → uniform random
/// pruning → the dense kNN graph unsparsified.
fn sparsify_with_ladder(
    dense: &Graph,
    cfg: &CirStagConfig,
    stage: &str,
    diag: &mut RunDiagnostics,
) -> Result<Graph, CirStagError> {
    if cfg.skip_manifold_sparsification {
        return Ok(dense.clone());
    }
    if cfg.random_prune {
        return Ok(random_prune(dense, &cfg.pgm)?.graph);
    }
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t = Instant::now();
    let err = match learn_manifold(dense, &cfg.pgm) {
        Ok(r) => return Ok(r.graph),
        Err(err) if cfg.policy == FailurePolicy::Strict => return Err(err.into()),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: stage.to_string(),
        rung: "random-prune".to_string(),
        cause: err.to_string(),
        residual: None,
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t.elapsed()),
    });
    // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
    let t_prune = Instant::now();
    let err = match random_prune(dense, &cfg.pgm) {
        Ok(r) => return Ok(r.graph),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: stage.to_string(),
        rung: "dense-knn".to_string(),
        cause: err.to_string(),
        residual: None,
        // cirstag-lint: allow(nondeterminism) -- stage wall-clock diagnostics only; excluded from fingerprints and artifacts
        elapsed_ms: millis_u64(t_prune.elapsed()),
    });
    diag.warnings.push(format!(
        "{stage}: sparsification failed on every rung; keeping the dense kNN manifold"
    ));
    Ok(dense.clone())
}
