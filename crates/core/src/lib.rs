//! CirSTAG: circuit stability analysis on graph-based manifolds.
//!
//! This crate implements the paper's contribution end-to-end (Algorithm 1):
//!
//! 1. **Phase 1** — a weighted spectral embedding of the input circuit graph
//!    (Eq. 4), optionally augmented with node features so feature
//!    perturbations (pin capacitances) are visible on the input manifold;
//!    the GNN's node embeddings serve as the output-side data.
//! 2. **Phase 2** — low-dimensional input/output *manifold graphs* learned
//!    as probabilistic graphical models: dense kNN graphs pruned by the
//!    spectral-distortion criterion `η_pq = w_pq·R^eff_pq` (Eq. 8).
//! 3. **Phase 3** — distance-mapping-distortion (DMD) scores from the
//!    largest eigenpairs of `L_Y⁺ L_X`: the weighted eigensubspace
//!    `V_s = [v₁√ζ₁, …, v_s√ζ_s]` gives the edge stability `‖V_sᵀe_pq‖²`
//!    and the node score of Eq. (9) — a surrogate for the GNN's local
//!    Lipschitz constant at each circuit node.
//!
//! Ablation switches reproduce the paper's Fig. 4 (skip dimensionality
//! reduction) plus a manifold-sparsification ablation.
//!
//! # Example
//!
//! ```
//! use cirstag::{CirStag, CirStagConfig};
//! use cirstag_graph::Graph;
//! use cirstag_linalg::DenseMatrix;
//!
//! # fn main() -> Result<(), cirstag::CirStagError> {
//! // A ring circuit graph and a fake GNN embedding that distorts one region.
//! let n = 24;
//! let g = Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>())?;
//! let emb = DenseMatrix::from_rows(
//!     &(0..n)
//!         .map(|i| {
//!             let t = i as f64 / n as f64 * std::f64::consts::TAU;
//!             let stretch = if i < 4 { 8.0 } else { 1.0 }; // distorted region
//!             vec![stretch * t.cos(), stretch * t.sin()]
//!         })
//!         .collect::<Vec<_>>(),
//! )?;
//! let config = CirStagConfig { embedding_dim: 4, knn_k: 4, num_eigenpairs: 3, ..Default::default() };
//! let report = CirStag::new(config).analyze(&g, None, &emb)?;
//! assert_eq!(report.node_scores.len(), n);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
mod error;
mod export;
mod pipeline;
mod resilience;
mod selection;

pub use engine::eco::{
    analyze_partitioned, analyze_partitioned_cached, analyze_partitioned_cold,
    analyze_partitioned_shared, EcoCache, EcoReportExport, PartitionExport, PartitionPlan,
    PartitionRecord, PartitionView, PartitionedReport, SpliceBuffers,
};
pub use engine::{ArtifactCache, Fingerprint, Fingerprinter, SharedArtifactCache};
pub use error::CirStagError;
pub use export::ReportExport;
pub use pipeline::{analyze_sweep, CirStag, CirStagConfig, PhaseTimings, StabilityReport};
pub use resilience::{
    ApproxKnnRecord, CancelToken, FailurePolicy, FallbackEvent, RunDiagnostics, StageBudget,
    StageCacheRecord,
};
pub use selection::{bottom_fraction, rank_descending, top_fraction};

/// Deterministic failpoint injection (re-exported from the linalg layer).
///
/// The registry is a no-op unless the `failpoints` cargo feature is enabled;
/// see the module docs for the `<stage>/<site>` naming scheme used across
/// the pipeline.
pub use cirstag_linalg::fail as failpoint;
