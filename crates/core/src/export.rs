//! JSON export of stability reports for downstream tooling.

use crate::{
    ApproxKnnRecord, CirStagError, FallbackEvent, RunDiagnostics, StabilityReport, StageCacheRecord,
};
use serde::{DeError, Deserialize, Serialize, Value};

/// Serializable form of a [`StabilityReport`] (scores, rankings and run
/// metadata — the manifold graphs are omitted as they are cheap to
/// recompute and large to store).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportExport {
    /// Per-node stability score (Eq. 9).
    pub node_scores: Vec<f64>,
    /// Node ids sorted most-unstable first.
    pub ranking: Vec<usize>,
    /// Per-edge DMD scores over the input manifold as `(p, q, score)`.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// The generalized eigenvalues `ζ₁ ≥ … ≥ ζ_s`.
    pub eigenvalues: Vec<f64>,
    /// Phase wall-clock times in seconds `(phase1, phase2, phase3)`.
    pub phase_seconds: (f64, f64, f64),
    /// Active worker-thread count the analysis ran with (`1` = serial).
    pub threads: usize,
    /// `true` when any fallback rung fired during the analysis.
    pub degraded: bool,
    /// Non-fatal warnings raised during the run.
    pub warnings: Vec<String>,
    /// Fallback-ladder escalations, in the order they fired.
    pub fallback_events: Vec<FallbackEvent>,
    /// Stages replayed from the artifact cache (`0` for uncached runs).
    pub cache_hits: usize,
    /// Cacheable stages that had to compute (`0` for uncached runs).
    pub cache_misses: usize,
    /// Per-stage cache status in execution order (empty for uncached runs).
    pub stage_cache: Vec<StageCacheRecord>,
    /// Approximate-kNN diagnostics, one per manifold stage that used an
    /// approximate method (empty for exact runs).
    pub approx_knn: Vec<ApproxKnnRecord>,
}

// Manual impls (rather than `impl_serde_struct!`) so fields added after the
// initial release (`threads`, the resilience trio) default sensibly when
// parsing reports written by older versions.
impl Serialize for ReportExport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("node_scores".to_string(), self.node_scores.to_value()),
            ("ranking".to_string(), self.ranking.to_value()),
            ("edge_scores".to_string(), self.edge_scores.to_value()),
            ("eigenvalues".to_string(), self.eigenvalues.to_value()),
            ("phase_seconds".to_string(), self.phase_seconds.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("degraded".to_string(), self.degraded.to_value()),
            ("warnings".to_string(), self.warnings.to_value()),
            (
                "fallback_events".to_string(),
                self.fallback_events.to_value(),
            ),
            ("cache_hits".to_string(), self.cache_hits.to_value()),
            ("cache_misses".to_string(), self.cache_misses.to_value()),
            ("stage_cache".to_string(), self.stage_cache.to_value()),
            ("approx_knn".to_string(), self.approx_knn.to_value()),
        ])
    }
}

impl Deserialize for ReportExport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::new("expected object for ReportExport"));
        }
        Ok(ReportExport {
            node_scores: v.field("node_scores")?,
            ranking: v.field("ranking")?,
            edge_scores: v.field("edge_scores")?,
            eigenvalues: v.field("eigenvalues")?,
            phase_seconds: v.field("phase_seconds")?,
            threads: v.field_or("threads", 1)?,
            degraded: v.field_or("degraded", false)?,
            warnings: v.field_or("warnings", Vec::new())?,
            fallback_events: v.field_or("fallback_events", Vec::new())?,
            cache_hits: v.field_or("cache_hits", 0)?,
            cache_misses: v.field_or("cache_misses", 0)?,
            stage_cache: v.field_or("stage_cache", Vec::new())?,
            approx_knn: v.field_or("approx_knn", Vec::new())?,
        })
    }
}

impl ReportExport {
    /// Builds the export form of a report.
    pub fn from_report(report: &StabilityReport) -> Self {
        ReportExport {
            node_scores: report.node_scores.clone(),
            ranking: report.ranking(),
            edge_scores: report.edge_scores.clone(),
            eigenvalues: report.eigenvalues.clone(),
            phase_seconds: (
                report.timings.phase1.as_secs_f64(),
                report.timings.phase2.as_secs_f64(),
                report.timings.phase3.as_secs_f64(),
            ),
            threads: report.timings.threads,
            degraded: report.degraded,
            warnings: report.diagnostics.warnings.clone(),
            fallback_events: report.diagnostics.events.clone(),
            cache_hits: report.timings.cache_hits,
            cache_misses: report.timings.cache_misses,
            stage_cache: report.diagnostics.cache.clone(),
            approx_knn: report.diagnostics.approx_knn.clone(),
        }
    }

    /// Reassembles the diagnostics carried by this export.
    pub fn diagnostics(&self) -> RunDiagnostics {
        RunDiagnostics {
            events: self.fallback_events.clone(),
            warnings: self.warnings.clone(),
            cache: self.stage_cache.clone(),
            approx_knn: self.approx_knn.clone(),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CirStagError::InvalidArgument`] when serialization fails
    /// (unreachable for finite scores).
    pub fn to_json(&self) -> Result<String, CirStagError> {
        serde_json::to_string_pretty(self).map_err(|e| CirStagError::InvalidArgument {
            reason: format!("report serialization failed: {e}"),
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CirStagError::InvalidArgument`] for malformed input.
    pub fn from_json(text: &str) -> Result<Self, CirStagError> {
        serde_json::from_str(text).map_err(|e| CirStagError::InvalidArgument {
            reason: format!("report deserialization failed: {e}"),
        })
    }
}

impl StabilityReport {
    /// Convenience: export this report straight to JSON.
    ///
    /// # Errors
    ///
    /// Same as [`ReportExport::to_json`].
    pub fn to_json(&self) -> Result<String, CirStagError> {
        ReportExport::from_report(self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CirStag, CirStagConfig};
    use cirstag_graph::Graph;
    use cirstag_linalg::DenseMatrix;

    fn sample_report() -> StabilityReport {
        let n = 16;
        let g = Graph::from_edges(
            n,
            &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let emb = DenseMatrix::from_rows(
            &(0..n)
                .map(|i| {
                    let t = i as f64 / n as f64 * std::f64::consts::TAU;
                    vec![t.cos(), t.sin()]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        CirStag::new(CirStagConfig {
            embedding_dim: 4,
            knn_k: 4,
            num_eigenpairs: 3,
            ..Default::default()
        })
        .analyze(&g, None, &emb)
        .unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let report = sample_report();
        let json = report.to_json().unwrap();
        let parsed = ReportExport::from_json(&json).unwrap();
        assert_eq!(parsed.node_scores, report.node_scores);
        assert_eq!(parsed.ranking, report.ranking());
        assert_eq!(parsed.eigenvalues, report.eigenvalues);
        assert_eq!(parsed.edge_scores.len(), report.edge_scores.len());
    }

    #[test]
    fn ranking_is_embedded_consistently() {
        let report = sample_report();
        let export = ReportExport::from_report(&report);
        for w in export.ranking.windows(2) {
            assert!(export.node_scores[w[0]] >= export.node_scores[w[1]]);
        }
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ReportExport::from_json("nope").is_err());
    }

    #[test]
    fn pre_resilience_json_still_parses() {
        // A report written before the degraded/warnings/fallback_events
        // fields existed must keep parsing, with the new fields defaulted.
        let old = r#"{
            "node_scores": [0.5, 0.25],
            "ranking": [0, 1],
            "edge_scores": [[0, 1, 0.75]],
            "eigenvalues": [1.5],
            "phase_seconds": [0.1, 0.2, 0.3],
            "threads": 2
        }"#;
        let parsed = ReportExport::from_json(old).unwrap();
        assert_eq!(parsed.node_scores, vec![0.5, 0.25]);
        assert!(!parsed.degraded);
        assert!(parsed.warnings.is_empty());
        assert!(parsed.fallback_events.is_empty());
        assert!(parsed.diagnostics().is_empty());
    }

    #[test]
    fn degraded_report_roundtrips_diagnostics() {
        let report = sample_report();
        let mut export = ReportExport::from_report(&report);
        export.degraded = true;
        export.warnings.push("clamped diagonal".to_string());
        export.fallback_events.push(FallbackEvent {
            stage: "phase3/geig".to_string(),
            rung: "dense".to_string(),
            cause: "no convergence".to_string(),
            residual: Some(1e-3),
            elapsed_ms: 42,
        });
        let json = export.to_json().unwrap();
        let back = ReportExport::from_json(&json).unwrap();
        assert!(back.degraded);
        assert_eq!(back.warnings, export.warnings);
        assert_eq!(back.fallback_events, export.fallback_events);
        assert_eq!(back.diagnostics().summary(), export.diagnostics().summary());
    }
}
