use std::error::Error;
use std::fmt;

/// Error type for the CirSTAG pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CirStagError {
    /// Embedding / kNN stage failed.
    Embed(cirstag_embed::EmbedError),
    /// PGM manifold learning failed.
    Pgm(cirstag_pgm::PgmError),
    /// Eigen/solver stage failed.
    Solver(cirstag_solver::SolverError),
    /// Graph construction failed.
    Graph(cirstag_graph::GraphError),
    /// Linear algebra failed.
    Linalg(cirstag_linalg::LinalgError),
    /// An argument was invalid.
    InvalidArgument {
        /// Description of the violated requirement.
        reason: String,
    },
    /// A pipeline stage exceeded its wall-clock budget
    /// (see [`crate::StageBudget`]).
    BudgetExhausted {
        /// Stage that ran over budget (e.g. `"phase2"`).
        stage: &'static str,
        /// Milliseconds actually spent in the stage.
        elapsed_ms: u64,
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// A pipeline stage produced NaN or infinite values.
    NonFiniteStage {
        /// Stage whose output failed the finiteness guardrail
        /// (e.g. `"phase1"`).
        stage: &'static str,
    },
    /// The run's [`crate::CancelToken`] fired — an explicit cancel or an
    /// expired deadline — and the pipeline stopped at a stage boundary.
    Cancelled {
        /// Stage at whose boundary the cancellation was observed.
        stage: &'static str,
    },
    /// A phase-boundary invariant audit failed (the `validate` feature):
    /// malformed CSR storage, an asymmetric or indefinite Laplacian, or
    /// non-finite manifold edge weights.
    InvariantViolation {
        /// Phase boundary where the audit fired (e.g. `"phase2/audit"`).
        stage: &'static str,
        /// Every violation the audit found, newline-joined.
        detail: String,
    },
}

impl fmt::Display for CirStagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CirStagError::Embed(e) => write!(f, "embedding stage failed: {e}"),
            CirStagError::Pgm(e) => write!(f, "manifold learning failed: {e}"),
            CirStagError::Solver(e) => write!(f, "eigensolver stage failed: {e}"),
            CirStagError::Graph(e) => write!(f, "graph error: {e}"),
            CirStagError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CirStagError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            CirStagError::BudgetExhausted {
                stage,
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "stage {stage} exhausted its wall-clock budget: {elapsed_ms}ms spent, {budget_ms}ms allowed"
            ),
            CirStagError::Cancelled { stage } => {
                write!(f, "analysis cancelled at stage boundary {stage}")
            }
            CirStagError::NonFiniteStage { stage } => {
                write!(f, "stage {stage} produced non-finite values")
            }
            CirStagError::InvariantViolation { stage, detail } => {
                write!(f, "invariant audit failed at {stage}: {detail}")
            }
        }
    }
}

impl Error for CirStagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CirStagError::Embed(e) => Some(e),
            CirStagError::Pgm(e) => Some(e),
            CirStagError::Solver(e) => Some(e),
            CirStagError::Graph(e) => Some(e),
            CirStagError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cirstag_embed::EmbedError> for CirStagError {
    fn from(e: cirstag_embed::EmbedError) -> Self {
        CirStagError::Embed(e)
    }
}
impl From<cirstag_pgm::PgmError> for CirStagError {
    fn from(e: cirstag_pgm::PgmError) -> Self {
        CirStagError::Pgm(e)
    }
}
impl From<cirstag_solver::SolverError> for CirStagError {
    fn from(e: cirstag_solver::SolverError) -> Self {
        CirStagError::Solver(e)
    }
}
impl From<cirstag_graph::GraphError> for CirStagError {
    fn from(e: cirstag_graph::GraphError) -> Self {
        CirStagError::Graph(e)
    }
}
impl From<cirstag_linalg::LinalgError> for CirStagError {
    fn from(e: cirstag_linalg::LinalgError) -> Self {
        CirStagError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: CirStagError = cirstag_graph::GraphError::Disconnected.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CirStagError>();
    }
}
