//! The three-phase CirSTAG pipeline (Algorithm 1 of the paper).
//!
//! The phases themselves are implemented as typed stages executed by the
//! [`crate::engine`] module; this module holds the public configuration,
//! report types, and the [`CirStag`] entry points ([`CirStag::analyze`],
//! [`CirStag::analyze_cached`], and the batched [`analyze_sweep`]).

use crate::engine::{self, ArtifactCache, SharedArtifactCache};
use crate::{CancelToken, CirStagError, FailurePolicy, RunDiagnostics, StageBudget};
use cirstag_embed::{KnnConfig, SpectralConfig};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use cirstag_pgm::PgmConfig;
use std::time::Duration;

/// Configuration for the [`CirStag`] analyzer.
#[derive(Debug, Clone, Copy)]
pub struct CirStagConfig {
    /// Input spectral-embedding dimension `M` (Eq. 4).
    pub embedding_dim: usize,
    /// `k` for the dense kNN graphs of Phase 2.
    pub knn_k: usize,
    /// kNN construction options (method, connectivity backbone, …).
    pub knn: KnnConfig,
    /// PGM sparsification options (Phase 2).
    pub pgm: PgmConfig,
    /// Number of generalized eigenpairs `s` for the DMD subspace (Phase 3).
    pub num_eigenpairs: usize,
    /// Weight for concatenating node features onto the input embedding.
    /// The default `0.0` is the paper's Eq. 4 — structure-only input
    /// manifold; feature perturbation sensitivity enters through the GNN's
    /// output embeddings. (Empirically, letting features dominate the input
    /// manifold *degrades* the instability ranking — see EXPERIMENTS.md.)
    pub feature_weight: f64,
    /// Ablation (paper Fig. 4): skip Phase-1 dimensionality reduction and
    /// use the raw circuit graph as the input manifold.
    pub skip_dimension_reduction: bool,
    /// Ablation: keep the dense kNN graphs as manifolds (skip the PGM
    /// sparsification of Phase 2).
    pub skip_manifold_sparsification: bool,
    /// Ablation (A1): prune the kNN graphs to the same budget but with
    /// uniformly random edge selection instead of the η criterion of Eq. 8.
    pub random_prune: bool,
    /// Eigensolver options for the spectral embedding.
    pub spectral: SpectralConfig,
    /// Lanczos budget for the Phase-3 generalized eigensolver.
    pub geig_max_iter: usize,
    /// Master seed, XOR-mixed into every stochastic stage (spectral start
    /// vectors, kNN projection trees, tree/sketch randomness, Phase-3
    /// Lanczos). The default `0` leaves each sub-config's own seed in
    /// effect; any nonzero value re-randomizes the whole pipeline at once.
    pub seed: u64,
    /// Worker-thread count for the parallel execution layer (kNN queries,
    /// resistance sketching, dense matmul, DMD edge scoring). `0` (the
    /// default) uses all available cores; `1` forces serial execution;
    /// larger values may oversubscribe the machine. Results are bit-identical
    /// for every setting — parallelism never changes reduction order, and
    /// the artifact cache therefore excludes the thread count from its keys.
    pub num_threads: usize,
    /// What to do when a stage fails: fail fast ([`FailurePolicy::Strict`],
    /// the default and historical behavior) or climb the fallback ladders and
    /// finish degraded ([`FailurePolicy::BestEffort`]).
    pub policy: FailurePolicy,
    /// Per-stage wall-clock and retry budgets.
    pub stage_budget: StageBudget,
}

impl Default for CirStagConfig {
    fn default() -> Self {
        CirStagConfig {
            embedding_dim: 10,
            knn_k: 10,
            knn: KnnConfig::default(),
            pgm: PgmConfig::default(),
            num_eigenpairs: 10,
            feature_weight: 0.0,
            skip_dimension_reduction: false,
            skip_manifold_sparsification: false,
            random_prune: false,
            spectral: SpectralConfig::default(),
            geig_max_iter: 80,
            seed: 0,
            num_threads: 0,
            policy: FailurePolicy::Strict,
            stage_budget: StageBudget::default(),
        }
    }
}

/// Wall-clock timings of the three phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase 1: embeddings.
    pub phase1: Duration,
    /// Phase 2: manifold (PGM) construction.
    pub phase2: Duration,
    /// Phase 3: generalized eigenproblem + scores.
    pub phase3: Duration,
    /// Worker-thread count the analysis ran with (`1` = serial build or
    /// serial configuration).
    pub threads: usize,
    /// Stages replayed from the artifact cache (`0` for uncached runs).
    pub cache_hits: usize,
    /// Cacheable stages that had to compute (`0` for uncached runs).
    pub cache_misses: usize,
}

impl PhaseTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.phase1 + self.phase2 + self.phase3
    }

    /// Human-readable per-stage timing report, e.g.
    /// `phase1 12.3ms | phase2 45.6ms | phase3 7.8ms | total 65.7ms | 4 threads`.
    /// Cache-backed runs append `| cache 4 hits / 1 miss`.
    pub fn summary(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut s = format!(
            "phase1 {:.1}ms | phase2 {:.1}ms | phase3 {:.1}ms | total {:.1}ms | {} thread{}",
            ms(self.phase1),
            ms(self.phase2),
            ms(self.phase3),
            ms(self.total()),
            self.threads.max(1),
            if self.threads == 1 { "" } else { "s" },
        );
        if self.cache_hits + self.cache_misses > 0 {
            s.push_str(&format!(
                " | cache {} hit{} / {} miss{}",
                self.cache_hits,
                if self.cache_hits == 1 { "" } else { "s" },
                self.cache_misses,
                if self.cache_misses == 1 { "" } else { "es" },
            ));
        }
        s
    }
}

/// Output of a CirSTAG analysis.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Per-node stability score (Eq. 9) — larger means more unstable.
    pub node_scores: Vec<f64>,
    /// Per-edge DMD scores `(p, q, ‖V_sᵀe_pq‖²)` over the input manifold.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// The `s` largest generalized eigenvalues `ζ₁ ≥ … ≥ ζ_s` of `L_Y⁺L_X`.
    pub eigenvalues: Vec<f64>,
    /// The learned input manifold `G_X`.
    pub input_manifold: Graph,
    /// The learned output manifold `G_Y`.
    pub output_manifold: Graph,
    /// Phase timings (Fig. 5 scalability data).
    pub timings: PhaseTimings,
    /// `true` when any fallback rung fired during the analysis — the scores
    /// are usable but were produced by a degraded (retry/dense/pruned) path.
    /// Always `false` under [`FailurePolicy::Strict`], which errors instead.
    /// A cache hit replays the cold run's events, so a warm run is degraded
    /// exactly when the run that populated the cache was.
    pub degraded: bool,
    /// Fallback events and non-fatal warnings recorded during the run.
    pub diagnostics: RunDiagnostics,
}

impl StabilityReport {
    /// Node indices sorted most-unstable first.
    pub fn ranking(&self) -> Vec<usize> {
        crate::rank_descending(&self.node_scores)
    }
}

/// The CirSTAG analyzer.
///
/// Construct once with a [`CirStagConfig`] and call
/// [`CirStag::analyze`] per (graph, embedding) pair; the analyzer is
/// stateless across calls and fully deterministic in its seed.
#[derive(Debug, Clone, Default)]
pub struct CirStag {
    config: CirStagConfig,
}

impl CirStag {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: CirStagConfig) -> Self {
        CirStag { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &CirStagConfig {
        &self.config
    }

    /// Runs Algorithm 1.
    ///
    /// * `input_graph` — the circuit graph `G` (pins or gates as nodes).
    /// * `node_features` — optional per-node features (e.g. pin
    ///   capacitances); concatenated onto the input embedding with
    ///   [`CirStagConfig::feature_weight`].
    /// * `output_embedding` — the GNN's node embeddings `Y` (rows = nodes).
    ///
    /// # Errors
    ///
    /// - [`CirStagError::InvalidArgument`] on dimension mismatches or
    ///   degenerate sizes (fewer than 4 nodes).
    /// - Propagates failures from the embedding, PGM and eigensolver stages.
    pub fn analyze(
        &self,
        input_graph: &Graph,
        node_features: Option<&DenseMatrix>,
        output_embedding: &DenseMatrix,
    ) -> Result<StabilityReport, CirStagError> {
        engine::run_pipeline(
            &self.config,
            input_graph,
            node_features,
            output_embedding,
            engine::CacheRef::None,
            None,
        )
    }

    /// Runs Algorithm 1 against an [`ArtifactCache`]: stages whose
    /// fingerprints match a cached entry replay the stored artifact and
    /// diagnostics segment instead of recomputing, bit-identically to the
    /// cold run that populated the cache. The report's
    /// [`PhaseTimings::cache_hits`]/[`PhaseTimings::cache_misses`] and
    /// [`RunDiagnostics::cache`] record what was replayed.
    ///
    /// # Errors
    ///
    /// Same as [`CirStag::analyze`]. Cache I/O never fails an analysis.
    pub fn analyze_cached(
        &self,
        input_graph: &Graph,
        node_features: Option<&DenseMatrix>,
        output_embedding: &DenseMatrix,
        cache: &mut ArtifactCache,
    ) -> Result<StabilityReport, CirStagError> {
        engine::run_pipeline(
            &self.config,
            input_graph,
            node_features,
            output_embedding,
            engine::CacheRef::Exclusive(cache),
            None,
        )
    }

    /// Runs Algorithm 1 against a [`SharedArtifactCache`] — the multi-tenant
    /// variant of [`CirStag::analyze_cached`] used by `cirstag serve`, where
    /// many worker threads analyze concurrently against one cache. Stage
    /// lookups are single-flighted: when two tenants miss the same
    /// fingerprint at once, exactly one computes while the others block and
    /// then replay its stored segment, so warm results stay bit-identical to
    /// the cold run no matter how requests interleave.
    ///
    /// `cancel`, when given, is polled at every stage boundary: an explicit
    /// [`CancelToken::cancel`] or an expired deadline stops the run with
    /// [`CirStagError::Cancelled`]. See [`CancelToken`] for the latency
    /// bound.
    ///
    /// # Errors
    ///
    /// Same as [`CirStag::analyze`], plus [`CirStagError::Cancelled`] when
    /// the token fires. Cache I/O never fails an analysis.
    pub fn analyze_shared(
        &self,
        input_graph: &Graph,
        node_features: Option<&DenseMatrix>,
        output_embedding: &DenseMatrix,
        cache: &SharedArtifactCache,
        cancel: Option<&CancelToken>,
    ) -> Result<StabilityReport, CirStagError> {
        engine::run_pipeline(
            &self.config,
            input_graph,
            node_features,
            output_embedding,
            engine::CacheRef::Shared(cache),
            cancel,
        )
    }
}

/// Runs a batch of configurations over the same inputs, sharing one
/// [`ArtifactCache`] so that artifacts unaffected by the varying knobs
/// (typically the Phase-1 embedding and the Phase-2 manifolds in a
/// `num_eigenpairs` sweep) are computed once and replayed thereafter.
///
/// Reports come back in config order, each carrying its own per-stage
/// hit/miss counts in [`PhaseTimings`] and [`RunDiagnostics::cache`].
///
/// # Errors
///
/// Stops at — and returns — the first failing configuration's error.
pub fn analyze_sweep(
    input_graph: &Graph,
    node_features: Option<&DenseMatrix>,
    output_embedding: &DenseMatrix,
    configs: &[CirStagConfig],
    cache: &mut ArtifactCache,
) -> Result<Vec<StabilityReport>, CirStagError> {
    let mut reports = Vec::with_capacity(configs.len());
    for config in configs {
        reports.push(engine::run_pipeline(
            config,
            input_graph,
            node_features,
            output_embedding,
            engine::CacheRef::Exclusive(cache),
            None,
        )?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(
            n,
            &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    /// An embedding that maps the ring to a circle but violently stretches a
    /// contiguous block of nodes — those nodes should score unstable.
    fn distorted_embedding(n: usize, hot: std::ops::Range<usize>) -> DenseMatrix {
        DenseMatrix::from_rows(
            &(0..n)
                .map(|i| {
                    let t = i as f64 / n as f64 * std::f64::consts::TAU;
                    let stretch = if hot.contains(&i) { 12.0 } else { 1.0 };
                    vec![stretch * t.cos(), stretch * t.sin()]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn small_config() -> CirStagConfig {
        CirStagConfig {
            embedding_dim: 4,
            knn_k: 4,
            num_eigenpairs: 3,
            feature_weight: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn report_shapes_and_finiteness() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let report = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        assert_eq!(report.node_scores.len(), n);
        assert!(report
            .node_scores
            .iter()
            .all(|s| s.is_finite() && *s >= 0.0));
        assert!(!report.edge_scores.is_empty());
        assert_eq!(report.eigenvalues.len(), 3);
        // Eigenvalues sorted descending.
        for w in report.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Uncached runs carry no cache bookkeeping.
        assert_eq!(report.timings.cache_hits, 0);
        assert_eq!(report.timings.cache_misses, 0);
        assert!(report.diagnostics.cache.is_empty());
    }

    #[test]
    fn distorted_region_ranks_unstable() {
        let n = 40;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..6);
        let report = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        let ranking = report.ranking();
        // Count how many of the 8 most-unstable nodes fall in (or adjacent
        // to) the distorted block 0..6.
        let hot: Vec<usize> = ranking[..8].to_vec();
        let in_block = hot
            .iter()
            .filter(|&&i| i <= 7 || i >= n - 2) // block plus its boundary
            .count();
        assert!(
            in_block >= 5,
            "top unstable {hot:?} not concentrated in distorted region"
        );
    }

    #[test]
    fn identity_like_embedding_is_uniform() {
        // Output embedding = the ring's own geometry → no strong distortion;
        // score spread should be modest compared to the distorted case.
        let n = 36;
        let g = ring(n);
        let clean = distorted_embedding(n, 0..0);
        let dirty = distorted_embedding(n, 0..6);
        let cs = CirStag::new(small_config());
        let rc = cs.analyze(&g, None, &clean).unwrap();
        let rd = cs.analyze(&g, None, &dirty).unwrap();
        let spread = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            let max = v.iter().fold(0.0f64, |a, &b| a.max(b));
            max / m.max(1e-12)
        };
        assert!(
            spread(&rd.node_scores) > spread(&rc.node_scores),
            "distorted embedding should concentrate scores"
        );
    }

    #[test]
    fn ablation_skip_dimension_reduction_runs() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let cfg = CirStagConfig {
            skip_dimension_reduction: true,
            ..small_config()
        };
        let report = CirStag::new(cfg).analyze(&g, None, &emb).unwrap();
        // Input manifold is the raw graph itself.
        assert_eq!(report.input_manifold.num_edges(), g.num_edges());
    }

    #[test]
    fn ablation_skip_sparsification_keeps_dense_knn() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let sparse = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        let cfg = CirStagConfig {
            skip_manifold_sparsification: true,
            ..small_config()
        };
        let dense = CirStag::new(cfg).analyze(&g, None, &emb).unwrap();
        assert!(dense.output_manifold.num_edges() >= sparse.output_manifold.num_edges());
    }

    #[test]
    fn feature_augmentation_changes_scores() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        // A feature that singles out nodes 10..15.
        let feats = DenseMatrix::from_rows(
            &(0..n)
                .map(|i| vec![if (10..15).contains(&i) { 5.0 } else { 0.0 }])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let plain = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        let cfg = CirStagConfig {
            feature_weight: 1.0,
            ..small_config()
        };
        let with_features = CirStag::new(cfg).analyze(&g, Some(&feats), &emb).unwrap();
        let diff: f64 = plain
            .node_scores
            .iter()
            .zip(&with_features.node_scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "features had no effect");
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 24;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..4);
        let cs = CirStag::new(small_config());
        let a = cs.analyze(&g, None, &emb).unwrap();
        let b = cs.analyze(&g, None, &emb).unwrap();
        assert_eq!(a.node_scores, b.node_scores);
    }

    #[test]
    fn cached_rerun_is_bit_identical_and_hits_all_stages() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let cs = CirStag::new(small_config());
        let cold = cs.analyze(&g, None, &emb).unwrap();
        let mut cache = ArtifactCache::new();
        let first = cs.analyze_cached(&g, None, &emb, &mut cache).unwrap();
        assert_eq!(first.timings.cache_hits, 0);
        assert_eq!(first.timings.cache_misses, 5);
        let warm = cs.analyze_cached(&g, None, &emb, &mut cache).unwrap();
        assert_eq!(warm.timings.cache_hits, 5);
        assert_eq!(warm.timings.cache_misses, 0);
        for report in [&first, &warm] {
            assert_eq!(report.node_scores, cold.node_scores);
            assert_eq!(report.edge_scores, cold.edge_scores);
            assert_eq!(report.eigenvalues, cold.eigenvalues);
            assert_eq!(report.input_manifold, cold.input_manifold);
            assert_eq!(report.output_manifold, cold.output_manifold);
            assert_eq!(report.degraded, cold.degraded);
        }
        // The pencil stage is not cacheable and always recomputes.
        assert!(warm
            .diagnostics
            .cache
            .iter()
            .any(|r| r.stage == "phase3/pencil" && r.status == "uncached"));
        assert!(warm.timings.summary().contains("cache 5 hits / 0 misses"));
    }

    #[test]
    fn sweep_over_dmd_s_replays_phase1_and_phase2() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let configs: Vec<CirStagConfig> = [2usize, 3, 4, 5]
            .iter()
            .map(|&s| CirStagConfig {
                num_eigenpairs: s,
                ..small_config()
            })
            .collect();
        let mut cache = ArtifactCache::new();
        let reports = analyze_sweep(&g, None, &emb, &configs, &mut cache).unwrap();
        assert_eq!(reports.len(), configs.len());
        // First config computes everything cacheable.
        assert_eq!(reports[0].timings.cache_misses, 5);
        // Later configs replay phase1 + both phase2 manifolds (3 hits) and
        // recompute only the Phase-3 geig/dmd stages.
        for (report, cfg) in reports.iter().zip(&configs).skip(1) {
            assert_eq!(report.timings.cache_hits, 3);
            assert_eq!(report.timings.cache_misses, 2);
            assert_eq!(report.eigenvalues.len(), cfg.num_eigenpairs);
            // Manifolds are bit-identical to the first run's.
            assert_eq!(report.input_manifold, reports[0].input_manifold);
            assert_eq!(report.output_manifold, reports[0].output_manifold);
            // ... and each sweep entry matches its own cold run bit-for-bit.
            let cold = CirStag::new(*cfg).analyze(&g, None, &emb).unwrap();
            assert_eq!(report.node_scores, cold.node_scores);
            assert_eq!(report.edge_scores, cold.edge_scores);
            assert_eq!(report.eigenvalues, cold.eigenvalues);
        }
    }

    #[test]
    fn validation_errors() {
        let g = ring(3);
        let emb = DenseMatrix::zeros(3, 2);
        assert!(CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .is_err());
        let g = ring(10);
        let bad_emb = DenseMatrix::zeros(5, 2);
        assert!(CirStag::new(small_config())
            .analyze(&g, None, &bad_emb)
            .is_err());
        let emb = DenseMatrix::zeros(10, 2);
        let bad_feats = DenseMatrix::zeros(3, 1);
        assert!(CirStag::new(small_config())
            .analyze(&g, Some(&bad_feats), &emb)
            .is_err());
    }

    #[test]
    fn permutation_equivariance_of_scores() {
        // Reversing node labels of the ring + permuting embedding rows must
        // permute scores accordingly.
        let n = 20;
        let g1 = ring(n);
        // Reversed ring: node i maps to n-1-i.
        let g2 = Graph::from_edges(
            n,
            &(0..n)
                .map(|i| (n - 1 - i, n - 1 - (i + 1) % n, 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let e1 = distorted_embedding(n, 0..4);
        let e2 = DenseMatrix::from_rows(
            &(0..n)
                .map(|i| e1.row(n - 1 - i).to_vec())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let cs = CirStag::new(small_config());
        let r1 = cs.analyze(&g1, None, &e1).unwrap();
        let r2 = cs.analyze(&g2, None, &e2).unwrap();
        // The randomized stages (seeded Lanczos starts, resistance sketches,
        // tree perturbations) are not label-equivariant point-wise, but the
        // *ranking* must agree: the mapped top-quartile sets should overlap.
        let top1 = crate::top_fraction(&r1.node_scores, 0.25, None);
        let top2: Vec<usize> = crate::top_fraction(&r2.node_scores, 0.25, None)
            .into_iter()
            .map(|i| n - 1 - i)
            .collect();
        let overlap = top1.iter().filter(|i| top2.contains(i)).count();
        assert!(
            overlap * 2 >= top1.len(),
            "top sets diverge: {top1:?} vs {top2:?}"
        );
    }
}
