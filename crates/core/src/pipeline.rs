//! The three-phase CirSTAG pipeline (Algorithm 1 of the paper).

#[cfg(any(feature = "validate", debug_assertions))]
use crate::audit;
use crate::{CirStagError, FailurePolicy, FallbackEvent, RunDiagnostics, StageBudget};
use cirstag_embed::{
    augment_with_features, dense_spectral_embedding, knn_graph, spectral_embedding_ws, EmbedError,
    KnnConfig, SpectralConfig,
};
use cirstag_graph::Graph;
use cirstag_linalg::{fail, par, DenseMatrix};
use cirstag_pgm::{learn_manifold, random_prune, PgmConfig};
use cirstag_solver::{
    generalized_eigen_dense, generalized_lanczos_ws, CgOptions, GeneralizedEigen, LadderRung,
    LaplacianSolver, SolverError, SolverWorkspace,
};
use std::time::{Duration, Instant};

/// Seed perturbation applied to re-seeded eigensolver retries so the retry
/// explores a different Krylov subspace than the failed attempt.
const RETRY_RESEED: u64 = 0x5EED_F00D;

/// Saturating millisecond conversion for diagnostics timestamps: a `u128`
/// elapsed time beyond `u64::MAX` ms clamps instead of truncating.
fn millis_u64(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX)
}

/// Configuration for the [`CirStag`] analyzer.
#[derive(Debug, Clone, Copy)]
pub struct CirStagConfig {
    /// Input spectral-embedding dimension `M` (Eq. 4).
    pub embedding_dim: usize,
    /// `k` for the dense kNN graphs of Phase 2.
    pub knn_k: usize,
    /// kNN construction options (method, connectivity backbone, …).
    pub knn: KnnConfig,
    /// PGM sparsification options (Phase 2).
    pub pgm: PgmConfig,
    /// Number of generalized eigenpairs `s` for the DMD subspace (Phase 3).
    pub num_eigenpairs: usize,
    /// Weight for concatenating node features onto the input embedding.
    /// The default `0.0` is the paper's Eq. 4 — structure-only input
    /// manifold; feature perturbation sensitivity enters through the GNN's
    /// output embeddings. (Empirically, letting features dominate the input
    /// manifold *degrades* the instability ranking — see EXPERIMENTS.md.)
    pub feature_weight: f64,
    /// Ablation (paper Fig. 4): skip Phase-1 dimensionality reduction and
    /// use the raw circuit graph as the input manifold.
    pub skip_dimension_reduction: bool,
    /// Ablation: keep the dense kNN graphs as manifolds (skip the PGM
    /// sparsification of Phase 2).
    pub skip_manifold_sparsification: bool,
    /// Ablation (A1): prune the kNN graphs to the same budget but with
    /// uniformly random edge selection instead of the η criterion of Eq. 8.
    pub random_prune: bool,
    /// Eigensolver options for the spectral embedding.
    pub spectral: SpectralConfig,
    /// Lanczos budget for the Phase-3 generalized eigensolver.
    pub geig_max_iter: usize,
    /// Master seed, XOR-mixed into every stochastic stage (spectral start
    /// vectors, kNN projection trees, tree/sketch randomness, Phase-3
    /// Lanczos). The default `0` leaves each sub-config's own seed in
    /// effect; any nonzero value re-randomizes the whole pipeline at once.
    pub seed: u64,
    /// Worker-thread count for the parallel execution layer (kNN queries,
    /// resistance sketching, dense matmul, DMD edge scoring). `0` (the
    /// default) uses all available cores; `1` forces serial execution;
    /// larger values may oversubscribe the machine. Results are bit-identical
    /// for every setting — parallelism never changes reduction order.
    pub num_threads: usize,
    /// What to do when a stage fails: fail fast ([`FailurePolicy::Strict`],
    /// the default and historical behavior) or climb the fallback ladders and
    /// finish degraded ([`FailurePolicy::BestEffort`]).
    pub policy: FailurePolicy,
    /// Per-stage wall-clock and retry budgets.
    pub stage_budget: StageBudget,
}

impl Default for CirStagConfig {
    fn default() -> Self {
        CirStagConfig {
            embedding_dim: 10,
            knn_k: 10,
            knn: KnnConfig::default(),
            pgm: PgmConfig::default(),
            num_eigenpairs: 10,
            feature_weight: 0.0,
            skip_dimension_reduction: false,
            skip_manifold_sparsification: false,
            random_prune: false,
            spectral: SpectralConfig::default(),
            geig_max_iter: 80,
            seed: 0,
            num_threads: 0,
            policy: FailurePolicy::Strict,
            stage_budget: StageBudget::default(),
        }
    }
}

/// Wall-clock timings of the three phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase 1: embeddings.
    pub phase1: Duration,
    /// Phase 2: manifold (PGM) construction.
    pub phase2: Duration,
    /// Phase 3: generalized eigenproblem + scores.
    pub phase3: Duration,
    /// Worker-thread count the analysis ran with (`1` = serial build or
    /// serial configuration).
    pub threads: usize,
}

impl PhaseTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.phase1 + self.phase2 + self.phase3
    }

    /// Human-readable per-stage timing report, e.g.
    /// `phase1 12.3ms | phase2 45.6ms | phase3 7.8ms | total 65.7ms | 4 threads`.
    pub fn summary(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "phase1 {:.1}ms | phase2 {:.1}ms | phase3 {:.1}ms | total {:.1}ms | {} thread{}",
            ms(self.phase1),
            ms(self.phase2),
            ms(self.phase3),
            ms(self.total()),
            self.threads.max(1),
            if self.threads == 1 { "" } else { "s" },
        )
    }
}

/// Output of a CirSTAG analysis.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Per-node stability score (Eq. 9) — larger means more unstable.
    pub node_scores: Vec<f64>,
    /// Per-edge DMD scores `(p, q, ‖V_sᵀe_pq‖²)` over the input manifold.
    pub edge_scores: Vec<(usize, usize, f64)>,
    /// The `s` largest generalized eigenvalues `ζ₁ ≥ … ≥ ζ_s` of `L_Y⁺L_X`.
    pub eigenvalues: Vec<f64>,
    /// The learned input manifold `G_X`.
    pub input_manifold: Graph,
    /// The learned output manifold `G_Y`.
    pub output_manifold: Graph,
    /// Phase timings (Fig. 5 scalability data).
    pub timings: PhaseTimings,
    /// `true` when any fallback rung fired during the analysis — the scores
    /// are usable but were produced by a degraded (retry/dense/pruned) path.
    /// Always `false` under [`FailurePolicy::Strict`], which errors instead.
    pub degraded: bool,
    /// Fallback events and non-fatal warnings recorded during the run.
    pub diagnostics: RunDiagnostics,
}

impl StabilityReport {
    /// Node indices sorted most-unstable first.
    pub fn ranking(&self) -> Vec<usize> {
        crate::rank_descending(&self.node_scores)
    }
}

/// The CirSTAG analyzer.
///
/// Construct once with a [`CirStagConfig`] and call
/// [`CirStag::analyze`] per (graph, embedding) pair; the analyzer is
/// stateless across calls and fully deterministic in its seed.
#[derive(Debug, Clone, Default)]
pub struct CirStag {
    config: CirStagConfig,
}

impl CirStag {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: CirStagConfig) -> Self {
        CirStag { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &CirStagConfig {
        &self.config
    }

    /// Runs Algorithm 1.
    ///
    /// * `input_graph` — the circuit graph `G` (pins or gates as nodes).
    /// * `node_features` — optional per-node features (e.g. pin
    ///   capacitances); concatenated onto the input embedding with
    ///   [`CirStagConfig::feature_weight`].
    /// * `output_embedding` — the GNN's node embeddings `Y` (rows = nodes).
    ///
    /// # Errors
    ///
    /// - [`CirStagError::InvalidArgument`] on dimension mismatches or
    ///   degenerate sizes (fewer than 4 nodes).
    /// - Propagates failures from the embedding, PGM and eigensolver stages.
    pub fn analyze(
        &self,
        input_graph: &Graph,
        node_features: Option<&DenseMatrix>,
        output_embedding: &DenseMatrix,
    ) -> Result<StabilityReport, CirStagError> {
        let n = input_graph.num_nodes();
        if n < 4 {
            return Err(CirStagError::InvalidArgument {
                reason: format!("need at least 4 nodes, got {n}"),
            });
        }
        if output_embedding.nrows() != n {
            return Err(CirStagError::InvalidArgument {
                reason: format!(
                    "output embedding has {} rows but the graph has {n} nodes",
                    output_embedding.nrows()
                ),
            });
        }
        if let Some(f) = node_features {
            if f.nrows() != n {
                return Err(CirStagError::InvalidArgument {
                    reason: format!(
                        "node features have {} rows but the graph has {n} nodes",
                        f.nrows()
                    ),
                });
            }
        }
        // Mix the master seed into every stochastic sub-stage so that
        // varying `seed` alone re-randomizes the whole pipeline.
        let mut cfg = self.config;
        cfg.spectral.seed ^= cfg.seed;
        cfg.knn.seed ^= cfg.seed;
        cfg.pgm.seed ^= cfg.seed;
        let cfg = &cfg;

        // Single entry point for the parallel execution layer: every stage
        // below reads the pool size set here.
        par::set_num_threads(cfg.num_threads);
        let threads = par::current_num_threads();

        let mut diag = RunDiagnostics::default();
        let best_effort = cfg.policy == FailurePolicy::BestEffort;

        // One scratch-buffer arena for the whole run: the Phase-1 Lanczos and
        // Phase-3 generalized Lanczos share length-`n` vectors, so buffers
        // warmed in Phase 1 are reused in Phase 3 instead of reallocated.
        let mut ws = SolverWorkspace::new();

        // ---- Phase 1: input/output embedding matrices -------------------
        let t0 = Instant::now();
        fail::trigger("phase1/stall");
        let mut input_data: Option<DenseMatrix> = if cfg.skip_dimension_reduction {
            None // raw graph becomes the manifold directly
        } else {
            let m = cfg.embedding_dim.min(n - 1).max(1);
            match phase1_embedding(input_graph, m, cfg, &mut diag, &mut ws)? {
                None => None,
                Some(u) => {
                    let u = match node_features {
                        Some(f) if cfg.feature_weight > 0.0 => {
                            augment_with_features(&u, f, cfg.feature_weight)?
                        }
                        _ => u,
                    };
                    Some(u)
                }
            }
        };
        // Failpoint: corrupt the inter-phase hand-off to exercise the
        // finiteness guardrail below.
        if matches!(fail::check("phase1/nan"), Some(fail::FailAction::Nan)) {
            if let Some(u) = &mut input_data {
                u.set(0, 0, f64::NAN); // cirstag-lint: allow(float-discipline) -- deliberate failpoint corruption exercising the finiteness guardrail below
            }
        }
        // Guardrail: the embedding must be finite before it seeds Phase 2.
        if input_data.as_ref().is_some_and(|u| !u.all_finite()) {
            if best_effort {
                diag.events.push(FallbackEvent {
                    stage: "phase1/nan-guard".to_string(),
                    rung: "degraded".to_string(),
                    cause: "spectral embedding contains non-finite values".to_string(),
                    residual: None,
                    elapsed_ms: millis_u64(t0.elapsed()),
                });
                diag.warnings.push(
                    "phase1 embedding was non-finite; using the raw circuit graph as the input manifold"
                        .to_string(),
                );
                input_data = None;
            } else {
                return Err(CirStagError::NonFiniteStage { stage: "phase1" });
            }
        }
        // Invariant audit (validate feature / debug builds): the embedding
        // hand-off must be finite and row-matched to the circuit graph.
        #[cfg(any(feature = "validate", debug_assertions))]
        if let Some(u) = &input_data {
            audit::enforce(
                "phase1/audit",
                audit::embedding_violations(u, n, "input embedding"),
                cfg.policy,
                &mut diag,
                millis_u64(t0.elapsed()),
            )?;
        }
        let phase1 = t0.elapsed();
        enforce_budget("phase1", phase1, cfg, &mut diag)?;

        // ---- Phase 2: graph-based manifolds via PGMs ---------------------
        let t1 = Instant::now();
        fail::trigger("phase2/stall");
        let k = cfg.knn_k.min(n - 1).max(1);
        let input_manifold = match &input_data {
            None => input_graph.clone(),
            Some(u) => {
                let dense = knn_graph(u, k, &cfg.knn)?;
                sparsify_with_ladder(&dense, cfg, "phase2/pgm-input", &mut diag)?
            }
        };
        let dense_y = knn_graph(output_embedding, k, &cfg.knn)?;
        let output_manifold = sparsify_with_ladder(&dense_y, cfg, "phase2/pgm-output", &mut diag)?;
        // Invariant audit: both manifolds must carry finite positive weights
        // before their Laplacians seed the Phase-3 eigenproblem (Eq. 8 treats
        // the weights as conductances).
        #[cfg(any(feature = "validate", debug_assertions))]
        {
            let mut violations = audit::manifold_violations(&input_manifold, "input manifold");
            violations.extend(audit::manifold_violations(
                &output_manifold,
                "output manifold",
            ));
            audit::enforce(
                "phase2/audit",
                violations,
                cfg.policy,
                &mut diag,
                millis_u64(t1.elapsed()),
            )?;
        }
        let phase2 = t1.elapsed();
        enforce_budget("phase2", phase2, cfg, &mut diag)?;

        // ---- Phase 3: DMD stability scores -------------------------------
        let t2 = Instant::now();
        fail::trigger("phase3/stall");
        let lx = input_manifold.laplacian();
        // Invariant audit: Eq. 5 requires L = Σ w_pq e_pq e_pqᵀ — well-formed
        // CSR, symmetric, and PSD (spot-checked with deterministic probes).
        #[cfg(any(feature = "validate", debug_assertions))]
        {
            let mut violations = audit::laplacian_violations(&lx, "L_X");
            violations.extend(audit::laplacian_violations(
                &output_manifold.laplacian(),
                "L_Y",
            ));
            audit::enforce(
                "phase3/audit",
                violations,
                cfg.policy,
                &mut diag,
                millis_u64(t2.elapsed()),
            )?;
        }
        // Ranking-grade solver options: manifold Laplacians mix weights
        // spanning ~1/ε, so the default 1e-10 tolerance is unnecessarily
        // strict for eigen-subspace estimation and can fail to converge.
        let ly_options = CgOptions {
            tol: 1e-6,
            max_iter: 10_000,
        };
        // Strict keeps the historical fail-fast solver; BestEffort lets the
        // inner CG escalate tree → dense instead of surfacing NoConvergence.
        let ly_solver = if best_effort {
            LaplacianSolver::with_ladder(&output_manifold, ly_options, LadderRung::Tree)?
        } else {
            LaplacianSolver::with_tree_preconditioner(&output_manifold, ly_options)?
        };
        let s = cfg.num_eigenpairs.min(n.saturating_sub(2)).max(1);
        let mut geig = phase3_eigenpairs(&lx, &ly_solver, s, n, cfg, &mut diag, &mut ws)?;
        // Surface the inner CG ladder's escalations and warnings.
        for ev in ly_solver.take_events() {
            diag.events.push(FallbackEvent {
                stage: "phase3/cg".to_string(),
                rung: ev.to.name().to_string(),
                cause: ev.cause,
                residual: ev.residual.filter(|r| r.is_finite()),
                elapsed_ms: ev.elapsed_ms,
            });
        }
        diag.warnings.extend(ly_solver.take_warnings());

        // Failpoint: corrupt the spectrum to exercise the score guardrail.
        if matches!(fail::check("phase3/nan"), Some(fail::FailAction::Nan)) {
            if let Some(z) = geig.eigenvalues.first_mut() {
                *z = f64::NAN; // cirstag-lint: allow(float-discipline) -- deliberate failpoint corruption exercising the score guardrail
            }
        }

        // Edge scores ‖V_sᵀe_pq‖² = Σ_i ζ_i (v_i[p] − v_i[q])² over E_X.
        // Each edge's score depends only on that edge, so the map runs across
        // the pool; the node accumulation stays serial in edge order so the
        // floating-point reduction is identical for every thread count.
        let zetas: Vec<f64> = geig.eigenvalues.iter().map(|&z| z.max(0.0)).collect();
        let vs = &geig.eigenvectors;
        let edges = input_manifold.edges();
        let mut edge_scores: Vec<(usize, usize, f64)> = par::map_indexed(edges.len(), |eid| {
            let e = &edges[eid];
            // Row-major eigenvector storage makes both endpoint rows
            // contiguous, so the score is a fused sweep over two slices
            // instead of 2s bounds-checked `get` calls.
            let ru = vs.row(e.u);
            let rv = vs.row(e.v);
            let mut score = 0.0;
            for ((&z, &a), &b) in zetas.iter().zip(ru).zip(rv) {
                let d = a - b;
                score += z * d * d;
            }
            (e.u, e.v, score)
        });
        // Guardrail: scores must be finite before they reach the report.
        if edge_scores.iter().any(|&(_, _, s)| !s.is_finite())
            || geig.eigenvalues.iter().any(|z| !z.is_finite())
        {
            if best_effort {
                diag.events.push(FallbackEvent {
                    stage: "phase3/nan-guard".to_string(),
                    rung: "degraded".to_string(),
                    cause: "DMD spectrum or edge scores contain non-finite values".to_string(),
                    residual: None,
                    elapsed_ms: millis_u64(t2.elapsed()),
                });
                diag.warnings.push(
                    "phase3 produced non-finite values; they were zeroed in the report".to_string(),
                );
                for (_, _, s) in edge_scores.iter_mut() {
                    if !s.is_finite() {
                        *s = 0.0;
                    }
                }
                for z in geig.eigenvalues.iter_mut() {
                    if !z.is_finite() {
                        *z = 0.0;
                    }
                }
            } else {
                return Err(CirStagError::NonFiniteStage { stage: "phase3" });
            }
        }
        let mut node_acc = vec![0.0f64; n];
        let mut node_count = vec![0usize; n];
        for &(u, v, score) in &edge_scores {
            node_acc[u] += score;
            node_acc[v] += score;
            node_count[u] += 1;
            node_count[v] += 1;
        }
        let node_scores: Vec<f64> = node_acc
            .iter()
            .zip(&node_count)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        let phase3 = t2.elapsed();
        enforce_budget("phase3", phase3, cfg, &mut diag)?;

        let degraded = !diag.events.is_empty();
        Ok(StabilityReport {
            node_scores,
            edge_scores,
            eigenvalues: geig.eigenvalues,
            input_manifold,
            output_manifold,
            timings: PhaseTimings {
                phase1,
                phase2,
                phase3,
                threads,
            },
            degraded,
            diagnostics: diag,
        })
    }
}

/// Residual norm carried by an embedding-stage failure, when a finite one
/// exists (diagnostics are JSON-exported, which cannot represent infinity).
fn embed_residual(e: &EmbedError) -> Option<f64> {
    match e {
        EmbedError::Solver(SolverError::NoConvergence { residual, .. }) => {
            Some(*residual).filter(|r| r.is_finite())
        }
        _ => None,
    }
}

/// Residual norm carried by a solver-stage failure, when a finite one exists.
fn solver_residual(e: &SolverError) -> Option<f64> {
    match e {
        SolverError::NoConvergence { residual, .. } => Some(*residual).filter(|r| r.is_finite()),
        _ => None,
    }
}

/// Phase-1 fallback ladder: Lanczos → re-seeded retry with an enlarged
/// Krylov budget → dense eigendecomposition → (BestEffort only) raw circuit
/// graph as the input manifold (`Ok(None)`).
fn phase1_embedding(
    g: &Graph,
    m: usize,
    cfg: &CirStagConfig,
    diag: &mut RunDiagnostics,
    ws: &mut SolverWorkspace,
) -> Result<Option<DenseMatrix>, CirStagError> {
    let t = Instant::now();
    let first = spectral_embedding_ws(g, m, &cfg.spectral, ws);
    let err = match first {
        Ok(u) => return Ok(Some(u)),
        Err(err) if cfg.policy == FailurePolicy::Strict => return Err(err.into()),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase1/eigs".to_string(),
        rung: "retry".to_string(),
        cause: err.to_string(),
        residual: embed_residual(&err),
        elapsed_ms: millis_u64(t.elapsed()),
    });
    let retry_cfg = SpectralConfig {
        max_iter: cfg
            .spectral
            .max_iter
            .saturating_mul(cfg.stage_budget.retry_iter_factor.max(1)),
        seed: cfg.spectral.seed ^ RETRY_RESEED,
        ..cfg.spectral
    };
    let t_retry = Instant::now();
    let err = match spectral_embedding_ws(g, m, &retry_cfg, ws) {
        Ok(u) => return Ok(Some(u)),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase1/eigs".to_string(),
        rung: "dense".to_string(),
        cause: err.to_string(),
        residual: embed_residual(&err),
        elapsed_ms: millis_u64(t_retry.elapsed()),
    });
    let t_dense = Instant::now();
    let err = match dense_spectral_embedding(g, m) {
        Ok(u) => return Ok(Some(u)),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase1/eigs".to_string(),
        rung: "degraded".to_string(),
        cause: err.to_string(),
        residual: embed_residual(&err),
        elapsed_ms: millis_u64(t_dense.elapsed()),
    });
    diag.warnings.push(
        "phase1 spectral embedding failed on every rung; using the raw circuit graph as the input manifold"
            .to_string(),
    );
    Ok(None)
}

/// Phase-3 fallback ladder: generalized Lanczos → re-seeded retry with an
/// enlarged iteration budget → dense generalized eigensolver → (BestEffort
/// only) a zero spectrum, which yields all-zero stability scores.
#[allow(clippy::too_many_arguments)]
fn phase3_eigenpairs(
    lx: &cirstag_linalg::CsrMatrix,
    ly_solver: &LaplacianSolver,
    s: usize,
    n: usize,
    cfg: &CirStagConfig,
    diag: &mut RunDiagnostics,
    ws: &mut SolverWorkspace,
) -> Result<GeneralizedEigen, CirStagError> {
    let t = Instant::now();
    let first = generalized_lanczos_ws(lx, ly_solver, s, cfg.geig_max_iter, cfg.seed, ws);
    let err = match first {
        Ok(geig) => return Ok(geig),
        Err(err) if cfg.policy == FailurePolicy::Strict => return Err(err.into()),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase3/geig".to_string(),
        rung: "retry".to_string(),
        cause: err.to_string(),
        residual: solver_residual(&err),
        elapsed_ms: millis_u64(t.elapsed()),
    });
    let retry_iters = cfg
        .geig_max_iter
        .saturating_mul(cfg.stage_budget.retry_iter_factor.max(1));
    let t_retry = Instant::now();
    let err =
        match generalized_lanczos_ws(lx, ly_solver, s, retry_iters, cfg.seed ^ RETRY_RESEED, ws) {
            Ok(geig) => return Ok(geig),
            Err(err) => err,
        };
    diag.events.push(FallbackEvent {
        stage: "phase3/geig".to_string(),
        rung: "dense".to_string(),
        cause: err.to_string(),
        residual: solver_residual(&err),
        elapsed_ms: millis_u64(t_retry.elapsed()),
    });
    let t_dense = Instant::now();
    let err = match generalized_eigen_dense(lx, ly_solver.laplacian(), s) {
        Ok(geig) => return Ok(geig),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: "phase3/geig".to_string(),
        rung: "degraded".to_string(),
        cause: err.to_string(),
        residual: solver_residual(&err),
        elapsed_ms: millis_u64(t_dense.elapsed()),
    });
    diag.warnings.push(
        "phase3 generalized eigensolve failed on every rung; reporting a zero spectrum and zero scores"
            .to_string(),
    );
    Ok(GeneralizedEigen {
        eigenvalues: vec![0.0; s],
        eigenvectors: DenseMatrix::zeros(n, s),
        iterations: 0,
    })
}

/// Enforces the per-stage wall-clock budget: a typed error under
/// [`FailurePolicy::Strict`], a recorded degradation under
/// [`FailurePolicy::BestEffort`].
fn enforce_budget(
    stage: &'static str,
    elapsed: Duration,
    cfg: &CirStagConfig,
    diag: &mut RunDiagnostics,
) -> Result<(), CirStagError> {
    let Some(budget_ms) = cfg.stage_budget.wall_clock_ms else {
        return Ok(());
    };
    let elapsed_ms = millis_u64(elapsed);
    if elapsed_ms <= budget_ms {
        return Ok(());
    }
    if cfg.policy == FailurePolicy::BestEffort {
        diag.events.push(FallbackEvent {
            stage: stage.to_string(),
            rung: "budget".to_string(),
            cause: format!(
                "stage exceeded its wall-clock budget ({elapsed_ms}ms spent, {budget_ms}ms allowed)"
            ),
            residual: None,
            elapsed_ms,
        });
        Ok(())
    } else {
        Err(CirStagError::BudgetExhausted {
            stage,
            elapsed_ms,
            budget_ms,
        })
    }
}

/// Applies the configured Phase-2 sparsification variant, with a fallback
/// ladder under [`FailurePolicy::BestEffort`]: PGM learning → uniform random
/// pruning → the dense kNN graph unsparsified.
fn sparsify_with_ladder(
    dense: &Graph,
    cfg: &CirStagConfig,
    stage: &str,
    diag: &mut RunDiagnostics,
) -> Result<Graph, CirStagError> {
    if cfg.skip_manifold_sparsification {
        return Ok(dense.clone());
    }
    if cfg.random_prune {
        return Ok(random_prune(dense, &cfg.pgm)?.graph);
    }
    let t = Instant::now();
    let err = match learn_manifold(dense, &cfg.pgm) {
        Ok(r) => return Ok(r.graph),
        Err(err) if cfg.policy == FailurePolicy::Strict => return Err(err.into()),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: stage.to_string(),
        rung: "random-prune".to_string(),
        cause: err.to_string(),
        residual: None,
        elapsed_ms: millis_u64(t.elapsed()),
    });
    let t_prune = Instant::now();
    let err = match random_prune(dense, &cfg.pgm) {
        Ok(r) => return Ok(r.graph),
        Err(err) => err,
    };
    diag.events.push(FallbackEvent {
        stage: stage.to_string(),
        rung: "dense-knn".to_string(),
        cause: err.to_string(),
        residual: None,
        elapsed_ms: millis_u64(t_prune.elapsed()),
    });
    diag.warnings.push(format!(
        "{stage}: sparsification failed on every rung; keeping the dense kNN manifold"
    ));
    Ok(dense.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(
            n,
            &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    /// An embedding that maps the ring to a circle but violently stretches a
    /// contiguous block of nodes — those nodes should score unstable.
    fn distorted_embedding(n: usize, hot: std::ops::Range<usize>) -> DenseMatrix {
        DenseMatrix::from_rows(
            &(0..n)
                .map(|i| {
                    let t = i as f64 / n as f64 * std::f64::consts::TAU;
                    let stretch = if hot.contains(&i) { 12.0 } else { 1.0 };
                    vec![stretch * t.cos(), stretch * t.sin()]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn small_config() -> CirStagConfig {
        CirStagConfig {
            embedding_dim: 4,
            knn_k: 4,
            num_eigenpairs: 3,
            feature_weight: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn report_shapes_and_finiteness() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let report = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        assert_eq!(report.node_scores.len(), n);
        assert!(report
            .node_scores
            .iter()
            .all(|s| s.is_finite() && *s >= 0.0));
        assert!(!report.edge_scores.is_empty());
        assert_eq!(report.eigenvalues.len(), 3);
        // Eigenvalues sorted descending.
        for w in report.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn distorted_region_ranks_unstable() {
        let n = 40;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..6);
        let report = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        let ranking = report.ranking();
        // Count how many of the 8 most-unstable nodes fall in (or adjacent
        // to) the distorted block 0..6.
        let hot: Vec<usize> = ranking[..8].to_vec();
        let in_block = hot
            .iter()
            .filter(|&&i| i <= 7 || i >= n - 2) // block plus its boundary
            .count();
        assert!(
            in_block >= 5,
            "top unstable {hot:?} not concentrated in distorted region"
        );
    }

    #[test]
    fn identity_like_embedding_is_uniform() {
        // Output embedding = the ring's own geometry → no strong distortion;
        // score spread should be modest compared to the distorted case.
        let n = 36;
        let g = ring(n);
        let clean = distorted_embedding(n, 0..0);
        let dirty = distorted_embedding(n, 0..6);
        let cs = CirStag::new(small_config());
        let rc = cs.analyze(&g, None, &clean).unwrap();
        let rd = cs.analyze(&g, None, &dirty).unwrap();
        let spread = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            let max = v.iter().fold(0.0f64, |a, &b| a.max(b));
            max / m.max(1e-12)
        };
        assert!(
            spread(&rd.node_scores) > spread(&rc.node_scores),
            "distorted embedding should concentrate scores"
        );
    }

    #[test]
    fn ablation_skip_dimension_reduction_runs() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let cfg = CirStagConfig {
            skip_dimension_reduction: true,
            ..small_config()
        };
        let report = CirStag::new(cfg).analyze(&g, None, &emb).unwrap();
        // Input manifold is the raw graph itself.
        assert_eq!(report.input_manifold.num_edges(), g.num_edges());
    }

    #[test]
    fn ablation_skip_sparsification_keeps_dense_knn() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        let sparse = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        let cfg = CirStagConfig {
            skip_manifold_sparsification: true,
            ..small_config()
        };
        let dense = CirStag::new(cfg).analyze(&g, None, &emb).unwrap();
        assert!(dense.output_manifold.num_edges() >= sparse.output_manifold.num_edges());
    }

    #[test]
    fn feature_augmentation_changes_scores() {
        let n = 30;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..5);
        // A feature that singles out nodes 10..15.
        let feats = DenseMatrix::from_rows(
            &(0..n)
                .map(|i| vec![if (10..15).contains(&i) { 5.0 } else { 0.0 }])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let plain = CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .unwrap();
        let cfg = CirStagConfig {
            feature_weight: 1.0,
            ..small_config()
        };
        let with_features = CirStag::new(cfg).analyze(&g, Some(&feats), &emb).unwrap();
        let diff: f64 = plain
            .node_scores
            .iter()
            .zip(&with_features.node_scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "features had no effect");
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 24;
        let g = ring(n);
        let emb = distorted_embedding(n, 0..4);
        let cs = CirStag::new(small_config());
        let a = cs.analyze(&g, None, &emb).unwrap();
        let b = cs.analyze(&g, None, &emb).unwrap();
        assert_eq!(a.node_scores, b.node_scores);
    }

    #[test]
    fn validation_errors() {
        let g = ring(3);
        let emb = DenseMatrix::zeros(3, 2);
        assert!(CirStag::new(small_config())
            .analyze(&g, None, &emb)
            .is_err());
        let g = ring(10);
        let bad_emb = DenseMatrix::zeros(5, 2);
        assert!(CirStag::new(small_config())
            .analyze(&g, None, &bad_emb)
            .is_err());
        let emb = DenseMatrix::zeros(10, 2);
        let bad_feats = DenseMatrix::zeros(3, 1);
        assert!(CirStag::new(small_config())
            .analyze(&g, Some(&bad_feats), &emb)
            .is_err());
    }

    #[test]
    fn permutation_equivariance_of_scores() {
        // Reversing node labels of the ring + permuting embedding rows must
        // permute scores accordingly.
        let n = 20;
        let g1 = ring(n);
        // Reversed ring: node i maps to n-1-i.
        let g2 = Graph::from_edges(
            n,
            &(0..n)
                .map(|i| (n - 1 - i, n - 1 - (i + 1) % n, 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let e1 = distorted_embedding(n, 0..4);
        let e2 = DenseMatrix::from_rows(
            &(0..n)
                .map(|i| e1.row(n - 1 - i).to_vec())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let cs = CirStag::new(small_config());
        let r1 = cs.analyze(&g1, None, &e1).unwrap();
        let r2 = cs.analyze(&g2, None, &e2).unwrap();
        // The randomized stages (seeded Lanczos starts, resistance sketches,
        // tree perturbations) are not label-equivariant point-wise, but the
        // *ranking* must agree: the mapped top-quartile sets should overlap.
        let top1 = crate::top_fraction(&r1.node_scores, 0.25, None);
        let top2: Vec<usize> = crate::top_fraction(&r2.node_scores, 0.25, None)
            .into_iter()
            .map(|i| n - 1 - i)
            .collect();
        let overlap = top1.iter().filter(|i| top2.contains(i)).count();
        assert!(
            overlap * 2 >= top1.len(),
            "top sets diverge: {top1:?} vs {top2:?}"
        );
    }
}
