//! Failure policies, stage budgets, and run diagnostics for the pipeline.
//!
//! The pipeline wraps every phase in a *fallback ladder*: when a numerical
//! stage fails, progressively more robust (and more expensive) strategies are
//! tried before giving up. What happens when even the last rung fails is
//! governed by the [`FailurePolicy`]:
//!
//! - [`FailurePolicy::Strict`] — the historical behavior: no fallbacks, the
//!   first failure surfaces as a typed [`crate::CirStagError`].
//! - [`FailurePolicy::BestEffort`] — climb the ladders, record every rung in
//!   the report's [`RunDiagnostics`], and finish with
//!   `report.degraded == true` whenever any fallback fired.

use serde::{impl_serde_struct, DeError, Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the pipeline does when a stage fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Fail fast: the first stage failure is returned as a typed error and
    /// no fallback rungs run. This is the default and the pre-resilience
    /// behavior of the pipeline.
    #[default]
    Strict,
    /// Degrade gracefully: climb each stage's fallback ladder, record every
    /// escalation, and complete the analysis with `degraded = true` instead
    /// of erroring whenever a usable (if approximate) result exists.
    BestEffort,
}

/// Cooperative cancellation handle for an in-flight analysis.
///
/// The stage-graph engine polls the token between stages: a run whose token
/// is cancelled — explicitly via [`CancelToken::cancel`] or implicitly by an
/// expired deadline — stops at the next stage boundary with
/// [`crate::CirStagError::Cancelled`] instead of finishing. The token is
/// cheaply cloneable and thread-safe, so a server can hand one clone to the
/// worker running the pipeline and keep another to enforce per-request
/// deadlines or shutdown from outside.
///
/// Cancellation granularity is the stage: a stage that has already started
/// runs to completion (the numeric kernels are not interruptible), so the
/// latency of a cancel is bounded by the longest single stage, which is in
/// turn bounded by [`StageBudget::wall_clock_ms`] when set.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires until [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally fires once `deadline` (measured from now)
    /// has elapsed.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                // cirstag-lint: allow(nondeterminism) -- deadline bookkeeping for budgets/cancel; never flows into result data
                deadline: Instant::now().checked_add(deadline),
            }),
        }
    }

    /// Requests cancellation; every clone of the token observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called or the deadline
    /// has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire) || self.deadline_exceeded()
    }

    /// `true` when the token carries a deadline and it has elapsed —
    /// distinguishes a timeout from an explicit cancel.
    pub fn deadline_exceeded(&self) -> bool {
        // cirstag-lint: allow(nondeterminism) -- deadline bookkeeping for budgets/cancel; never flows into result data
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left until the deadline (`None` when the token has no deadline;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            // cirstag-lint: allow(nondeterminism) -- deadline bookkeeping for budgets/cancel; never flows into result data
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Per-stage resource budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBudget {
    /// Wall-clock budget per pipeline phase, in milliseconds. `None` (the
    /// default) disables the check. Exceeding the budget is a
    /// [`crate::CirStagError::BudgetExhausted`] under
    /// [`FailurePolicy::Strict`] and a recorded degradation under
    /// [`FailurePolicy::BestEffort`].
    pub wall_clock_ms: Option<u64>,
    /// Multiplier applied to the iteration budget on an eigensolver retry
    /// (the "enlarged Krylov budget" rung of the Phase-1/Phase-3 ladders).
    pub retry_iter_factor: usize,
}

impl Default for StageBudget {
    fn default() -> Self {
        StageBudget {
            wall_clock_ms: None,
            retry_iter_factor: 4,
        }
    }
}

/// One fallback-ladder escalation recorded during an analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackEvent {
    /// Pipeline stage the event belongs to (e.g. `"phase1/eigs"`,
    /// `"phase2/cg"`, `"phase3/geig"`).
    pub stage: String,
    /// The ladder rung that ran as a consequence (e.g. `"retry"`,
    /// `"dense"`, `"degraded"`).
    pub rung: String,
    /// Human-readable cause: the error message of the rung that failed.
    pub cause: String,
    /// Residual norm at the point of failure, when the failure reported one.
    pub residual: Option<f64>,
    /// Wall-clock milliseconds spent in the failing attempt.
    pub elapsed_ms: u64,
}

impl_serde_struct!(FallbackEvent {
    stage,
    rung,
    cause,
    residual,
    elapsed_ms,
});

/// One stage's interaction with the artifact cache during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCacheRecord {
    /// Engine stage name (e.g. `"phase1/embedding"`, `"phase3/geig"`).
    pub stage: String,
    /// What happened: `"replayed"` (cache hit — the stored artifact and
    /// diagnostics segment were reused), `"computed"` (cache miss — the
    /// stage ran and its result was stored), or `"uncached"` (the stage is
    /// not cacheable and always runs).
    pub status: String,
}

impl_serde_struct!(StageCacheRecord { stage, status });

/// One manifold stage's approximate-neighbor-search diagnostics: which
/// method built the kNN graph and how much candidate headroom each point
/// had. Recorded only for approximate methods ([`KnnMethod::RpForest`] /
/// [`KnnMethod::Hnsw`]), so a report that carries any of these is
/// distinguishable from an exact run. Like [`StageCacheRecord`] this is
/// bookkeeping, not a degradation: it never flips `report.degraded`.
///
/// [`KnnMethod::RpForest`]: cirstag_embed::KnnMethod::RpForest
/// [`KnnMethod::Hnsw`]: cirstag_embed::KnnMethod::Hnsw
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxKnnRecord {
    /// Engine stage that ran the search (`"phase2/manifold-input"` or
    /// `"phase2/manifold-output"`).
    pub stage: String,
    /// Method label: `"rp-forest"` or `"hnsw"`.
    pub method: String,
    /// Neighbors requested per point.
    pub requested_k: usize,
    /// Smallest candidate pool any point saw before truncation to `k` —
    /// the recall-critical worst case.
    pub min_candidates: usize,
    /// Mean candidate-pool size across points.
    pub mean_candidates: f64,
}

impl_serde_struct!(ApproxKnnRecord {
    stage,
    method,
    requested_k,
    min_candidates,
    mean_candidates,
});

/// Diagnostics accumulated over one analysis run: every fallback escalation
/// plus non-fatal warnings (e.g. clamped preconditioner diagonals).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunDiagnostics {
    /// Fallback-ladder escalations, in the order they fired.
    pub events: Vec<FallbackEvent>,
    /// Non-fatal warnings, in the order they were raised.
    pub warnings: Vec<String>,
    /// Per-stage artifact-cache status, in execution order. Empty for
    /// uncached runs ([`crate::CirStag::analyze`]); populated by
    /// [`crate::CirStag::analyze_cached`] and [`crate::analyze_sweep`].
    pub cache: Vec<StageCacheRecord>,
    /// Approximate-kNN diagnostics, one per manifold stage that used an
    /// approximate method; empty when Phase 2 searched exactly.
    pub approx_knn: Vec<ApproxKnnRecord>,
}

// Manual impls (rather than `impl_serde_struct!`) so diagnostics written
// before the `cache`/`approx_knn` fields existed keep parsing, with the
// fields defaulted.
impl Serialize for RunDiagnostics {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("events".to_string(), self.events.to_value()),
            ("warnings".to_string(), self.warnings.to_value()),
            ("cache".to_string(), self.cache.to_value()),
            ("approx_knn".to_string(), self.approx_knn.to_value()),
        ])
    }
}

impl Deserialize for RunDiagnostics {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::new("expected object for RunDiagnostics"));
        }
        Ok(RunDiagnostics {
            events: v.field("events")?,
            warnings: v.field("warnings")?,
            cache: v.field_or("cache", Vec::new())?,
            approx_knn: v.field_or("approx_knn", Vec::new())?,
        })
    }
}

impl RunDiagnostics {
    /// `true` when no fallback fired and no warning was recorded. Cache and
    /// approximate-kNN records are bookkeeping, not degradations, and do
    /// not count (an approximate method is a configuration choice, not a
    /// failure — flipping `degraded` for every HNSW run would turn the
    /// intended production configuration into a permanent exit code 2).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.warnings.is_empty()
    }

    /// One-line human-readable summary, e.g.
    /// `2 fallback events (phase1/eigs→retry, phase3/geig→dense), 1 warning`.
    pub fn summary(&self) -> String {
        let replayed = self.cache.iter().filter(|r| r.status == "replayed").count();
        if self.is_empty() && replayed == 0 && self.approx_knn.is_empty() {
            return "clean run".to_string();
        }
        let mut parts = Vec::new();
        if self.is_empty() && (replayed > 0 || !self.approx_knn.is_empty()) {
            parts.push("clean run".to_string());
        }
        if !self.events.is_empty() {
            let steps: Vec<String> = self
                .events
                .iter()
                .map(|e| format!("{}\u{2192}{}", e.stage, e.rung))
                .collect();
            parts.push(format!(
                "{} fallback event{} ({})",
                self.events.len(),
                if self.events.len() == 1 { "" } else { "s" },
                steps.join(", ")
            ));
        }
        if !self.warnings.is_empty() {
            parts.push(format!(
                "{} warning{}",
                self.warnings.len(),
                if self.warnings.len() == 1 { "" } else { "s" }
            ));
        }
        if replayed > 0 {
            parts.push(format!(
                "{replayed} stage{} replayed from cache",
                if replayed == 1 { "" } else { "s" }
            ));
        }
        if !self.approx_knn.is_empty() {
            let methods: Vec<&str> = self.approx_knn.iter().map(|r| r.method.as_str()).collect();
            parts.push(format!(
                "{} approximate-kNN stage{} ({})",
                self.approx_knn.len(),
                if self.approx_knn.len() == 1 { "" } else { "s" },
                methods.join(", ")
            ));
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_fires_on_cancel_and_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_none());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(
            !clone.deadline_exceeded(),
            "explicit cancel is not a timeout"
        );

        let d = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(d.is_cancelled());
        assert!(d.deadline_exceeded());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().is_some_and(|r| r > Duration::from_secs(1)));
    }

    #[test]
    fn policy_defaults_to_strict() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::Strict);
    }

    #[test]
    fn budget_defaults_are_open() {
        let b = StageBudget::default();
        assert_eq!(b.wall_clock_ms, None);
        assert_eq!(b.retry_iter_factor, 4);
    }

    #[test]
    fn diagnostics_summary_reads_well() {
        let mut d = RunDiagnostics::default();
        assert_eq!(d.summary(), "clean run");
        d.events.push(FallbackEvent {
            stage: "phase1/eigs".to_string(),
            rung: "retry".to_string(),
            cause: "no convergence".to_string(),
            residual: Some(0.5),
            elapsed_ms: 12,
        });
        d.warnings.push("clamped diagonal".to_string());
        let s = d.summary();
        assert!(s.contains("1 fallback event"), "{s}");
        assert!(s.contains("phase1/eigs"), "{s}");
        assert!(s.contains("1 warning"), "{s}");
    }

    #[test]
    fn fallback_event_serde_roundtrip() {
        let e = FallbackEvent {
            stage: "phase3/geig".to_string(),
            rung: "dense".to_string(),
            cause: "failpoint".to_string(),
            residual: None,
            elapsed_ms: 7,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: FallbackEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
