//! Case Study A: circuit-delay stability under pin-capacitance perturbations.
//!
//! Mirrors Section V-A of the paper: a GNN is trained to mimic pre-routing
//! STA arrival times on a synthetic benchmark, CirSTAG ranks pin stability,
//! and perturbing unstable-vs-stable pin capacitances quantifies the ranking
//! through the relative change of the GNN's primary-output predictions.

use cirstag::{CirStag, CirStagConfig, StabilityReport};
use cirstag_circuit::{
    extract_features, generate_circuit, CellLibrary, CircuitError, FeatureConfig, GeneratorConfig,
    Netlist, PinRole, StaEngine, TimingGraph,
};
use cirstag_gnn::{r2_score, Activation, GnnError, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;

/// Error type for the case-study harnesses.
#[derive(Debug)]
pub enum CaseError {
    /// Circuit substrate failure.
    Circuit(CircuitError),
    /// GNN failure.
    Gnn(GnnError),
    /// CirSTAG pipeline failure.
    CirStag(cirstag::CirStagError),
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseError::Circuit(e) => write!(f, "circuit error: {e}"),
            CaseError::Gnn(e) => write!(f, "gnn error: {e}"),
            CaseError::CirStag(e) => write!(f, "cirstag error: {e}"),
        }
    }
}

impl std::error::Error for CaseError {}

impl From<CircuitError> for CaseError {
    fn from(e: CircuitError) -> Self {
        CaseError::Circuit(e)
    }
}
impl From<GnnError> for CaseError {
    fn from(e: GnnError) -> Self {
        CaseError::Gnn(e)
    }
}
impl From<cirstag::CirStagError> for CaseError {
    fn from(e: cirstag::CirStagError) -> Self {
        CaseError::CirStag(e)
    }
}

/// A fully prepared timing case: benchmark + trained GNN + graph context.
pub struct TimingCase {
    /// Benchmark name.
    pub name: String,
    /// The netlist.
    pub netlist: Netlist,
    /// Pin-level timing graph.
    pub timing: TimingGraph,
    /// Undirected pin graph (CirSTAG input).
    pub graph: Graph,
    /// Cell library.
    pub library: CellLibrary,
    /// GNN message-passing context.
    pub ctx: GraphContext,
    /// Nominal feature matrix.
    pub features: DenseMatrix,
    /// Normalized arrival-time targets (arrival / critical).
    pub targets: DenseMatrix,
    /// The trained arrival-time regressor.
    pub model: GnnModel,
    /// Training-set R² of the regressor.
    pub r2: f64,
    feature_config: FeatureConfig,
}

/// Options for [`TimingCase::build`].
#[derive(Debug, Clone, Copy)]
pub struct TimingCaseConfig {
    /// Gate count of the synthetic benchmark.
    pub num_gates: usize,
    /// Generator seed.
    pub seed: u64,
    /// GNN training epochs.
    pub epochs: usize,
    /// GNN hidden width.
    pub hidden: usize,
}

impl Default for TimingCaseConfig {
    fn default() -> Self {
        TimingCaseConfig {
            num_gates: 600,
            seed: 42,
            epochs: 260,
            hidden: 32,
        }
    }
}

impl TimingCase {
    /// Generates the benchmark, runs STA, and trains the timing GNN.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures; training divergence surfaces as
    /// [`CaseError::Gnn`].
    pub fn build(name: &str, config: &TimingCaseConfig) -> Result<Self, CaseError> {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: config.num_gates,
                ..Default::default()
            },
            config.seed,
        )?;
        let timing = TimingGraph::new(&netlist, &library)?;
        let graph = timing.to_undirected_graph()?;
        // DAG context: the GNN propagates along the timing arcs exactly like
        // the pre-routing timing GNN of [17], so a single DagProp layer has a
        // full source-to-sink receptive field.
        let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
        let ctx = GraphContext::with_dag(&graph, &arcs)?;
        let feature_config = FeatureConfig::default();
        let features = extract_features(
            &timing,
            &netlist,
            &library,
            &timing.pin_caps(),
            &feature_config,
        )?;
        let sta = StaEngine::new(&timing);
        let critical = sta.critical_arrival().max(1e-12);
        let targets = DenseMatrix::from_rows(
            &sta.arrival_times()
                .iter()
                .map(|&a| vec![a / critical])
                .collect::<Vec<_>>(),
        )
        .expect("uniform rows");

        let mut model = GnnModel::new(
            features.ncols(),
            &[
                LayerSpec::Linear {
                    dim: config.hidden,
                    activation: Activation::Relu,
                },
                LayerSpec::DagProp {
                    dim: config.hidden,
                    activation: Activation::Relu,
                },
                LayerSpec::Linear {
                    dim: config.hidden / 2,
                    activation: Activation::Relu,
                },
                LayerSpec::Linear {
                    dim: 1,
                    activation: Activation::Identity,
                },
            ],
            config.seed ^ 0x6a11,
        )?;
        let train = TrainConfig {
            epochs: config.epochs,
            learning_rate: 8e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            ..TrainConfig::default()
        };
        model.fit_regression(&ctx, &features, &targets, None, &train)?;
        let pred = model.forward(&ctx, &features, false)?;
        let r2 = r2_score(&pred, &targets);

        Ok(TimingCase {
            name: name.to_string(),
            netlist,
            timing,
            graph,
            library,
            ctx,
            features,
            targets,
            model,
            r2,
            feature_config,
        })
    }

    /// Pins eligible for perturbation: positive capacitance, not a primary
    /// output (the paper excludes output pins).
    pub fn eligible(&self) -> Vec<bool> {
        (0..self.timing.num_pins())
            .map(|p| {
                self.timing.pin(p).capacitance > 0.0
                    && self.timing.pin(p).role != PinRole::PrimaryOutput
            })
            .collect()
    }

    /// Runs CirSTAG on the pin graph with the nominal features.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn stability(&mut self, config: CirStagConfig) -> Result<StabilityReport, CaseError> {
        let embedding = self.model.embeddings(&self.ctx, &self.features)?;
        Ok(CirStag::new(config).analyze(&self.graph, Some(&self.features), &embedding)?)
    }

    /// Perturbs the capacitance of `pins` by `scale`, re-runs the GNN, and
    /// returns the relative change of the arrival prediction at each primary
    /// output: `|pred' − pred| / |pred|`.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn perturb_outcome(
        &mut self,
        pins: &[usize],
        scale: f64,
    ) -> Result<PerturbOutcome, CaseError> {
        let base_pred = self.model.forward(&self.ctx, &self.features, false)?;
        let perturbation = cirstag_circuit::CapPerturbation::new(pins.to_vec(), scale)?;
        let caps = cirstag_circuit::perturb_pin_caps(&self.timing, &perturbation)?;
        let features = extract_features(
            &self.timing,
            &self.netlist,
            &self.library,
            &caps,
            &self.feature_config,
        )?;
        let pred = self.model.forward(&self.ctx, &features, false)?;
        // Denominator floor: a few POs sit right behind primary inputs and
        // have near-zero arrivals, which would make relative changes there
        // meaninglessly explode; clamp at 5% of the worst base arrival.
        let floor = self
            .timing
            .po_pins()
            .iter()
            .map(|&po| base_pred.get(po, 0).abs())
            .fold(0.0f64, f64::max)
            * 0.05;
        let mut rel = Vec::with_capacity(self.timing.po_pins().len());
        for &po in self.timing.po_pins() {
            let b = base_pred.get(po, 0);
            let p = pred.get(po, 0);
            let denom = b.abs().max(floor).max(1e-9);
            rel.push((p - b).abs() / denom);
        }
        // Ground truth for comparison: STA with perturbed caps.
        let base_sta = StaEngine::new(&self.timing);
        let pert_sta = StaEngine::with_caps(&self.timing, &caps);
        let mut sta_rel = Vec::with_capacity(rel.len());
        for &po in self.timing.po_pins() {
            let b = base_sta.arrival(po).max(1e-12);
            sta_rel.push((pert_sta.arrival(po) - base_sta.arrival(po)).abs() / b);
        }
        Ok(PerturbOutcome {
            per_output: rel,
            sta_per_output: sta_rel,
        })
    }
}

/// Result of a perturbation experiment.
#[derive(Debug, Clone)]
pub struct PerturbOutcome {
    /// Relative GNN prediction change per primary output.
    pub per_output: Vec<f64>,
    /// Relative ground-truth (STA) arrival change per primary output.
    pub sta_per_output: Vec<f64>,
}

impl PerturbOutcome {
    /// Mean relative prediction change.
    pub fn mean(&self) -> f64 {
        mean(&self.per_output)
    }

    /// Maximum relative prediction change.
    pub fn max(&self) -> f64 {
        self.per_output.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Mean relative STA (ground-truth) change.
    pub fn sta_mean(&self) -> f64 {
        mean(&self.sta_per_output)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// One Table-I cell: unstable-vs-stable outcome for a (scale, fraction)
/// setting.
#[derive(Debug, Clone)]
pub struct TableCell {
    /// Perturbed node fraction.
    pub fraction: f64,
    /// Capacitance scale factor.
    pub scale: f64,
    /// Outcome when perturbing the most-unstable nodes.
    pub unstable: PerturbOutcome,
    /// Outcome when perturbing the most-stable nodes.
    pub stable: PerturbOutcome,
}

/// Runs the full Table-I protocol for one benchmark: CirSTAG ranking once,
/// then unstable/stable perturbations over the fraction × scale grid.
///
/// # Errors
///
/// Propagates harness failures.
pub fn table1_row(
    case: &mut TimingCase,
    cirstag_config: CirStagConfig,
    fractions: &[f64],
    scales: &[f64],
) -> Result<Vec<TableCell>, CaseError> {
    let report = case.stability(cirstag_config)?;
    let eligible = case.eligible();
    let mut cells = Vec::new();
    for &scale in scales {
        for &fraction in fractions {
            let unstable_pins =
                cirstag::top_fraction(&report.node_scores, fraction, Some(&eligible));
            let stable_pins =
                cirstag::bottom_fraction(&report.node_scores, fraction, Some(&eligible));
            let unstable = case.perturb_outcome(&unstable_pins, scale)?;
            let stable = case.perturb_outcome(&stable_pins, scale)?;
            cells.push(TableCell {
                fraction,
                scale,
                unstable,
                stable,
            });
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> TimingCase {
        TimingCase::build(
            "unit",
            &TimingCaseConfig {
                num_gates: 120,
                seed: 5,
                epochs: 150,
                hidden: 16,
            },
        )
        .unwrap()
    }

    #[test]
    fn gnn_fits_arrival_times() {
        let case = small_case();
        assert!(case.r2 > 0.9, "r2 = {}", case.r2);
    }

    #[test]
    fn eligible_excludes_pos_and_zero_cap() {
        let case = small_case();
        let eligible = case.eligible();
        for &po in case.timing.po_pins() {
            assert!(!eligible[po]);
        }
        for &pi in case.timing.pi_pins() {
            assert!(!eligible[pi]); // PI pins have zero capacitance
        }
        assert!(eligible.iter().any(|&e| e));
    }

    #[test]
    fn perturbation_moves_predictions() {
        let mut case = small_case();
        let eligible = case.eligible();
        let pins: Vec<usize> = (0..case.timing.num_pins())
            .filter(|&p| eligible[p])
            .collect();
        let outcome = case.perturb_outcome(&pins, 10.0).unwrap();
        assert!(outcome.mean() > 0.0);
        assert!(outcome.max() >= outcome.mean());
        assert!(outcome.sta_mean() > 0.0);
    }

    #[test]
    fn empty_perturbation_is_identity() {
        let mut case = small_case();
        let outcome = case.perturb_outcome(&[], 10.0).unwrap();
        assert_eq!(outcome.mean(), 0.0);
        assert_eq!(outcome.max(), 0.0);
    }

    #[test]
    fn stability_report_covers_all_pins() {
        let mut case = small_case();
        let cfg = cirstag::CirStagConfig {
            embedding_dim: 6,
            knn_k: 6,
            num_eigenpairs: 5,
            ..Default::default()
        };
        let report = case.stability(cfg).unwrap();
        assert_eq!(report.node_scores.len(), case.timing.num_pins());
    }
}
