//! Case Study B: stability under circuit-topology perturbations.
//!
//! Mirrors Section V-B: a GAT classifies gates of an interconnected netlist
//! into sub-circuit classes; CirSTAG ranks gate stability from the gate
//! graph and the GAT's embeddings; rewiring the inputs of unstable-vs-stable
//! gates quantifies the ranking through embedding cosine similarity and
//! F1-macro degradation.

use crate::case_a::CaseError;
use cirstag::{CirStag, CirStagConfig, StabilityReport};
use cirstag_gnn::{
    accuracy, f1_macro, mean_row_cosine, Activation, GnnModel, GraphContext, LayerSpec, TrainConfig,
};
use cirstag_linalg::DenseMatrix;
use cirstag_reveng::{
    build_interconnected, functionality_features, gate_graph, rewire_gate_inputs,
    InterconnectedConfig, LabeledDataset, NeighborhoodConfig, NUM_CLASSES,
};

/// A fully prepared reverse-engineering case: dataset + trained GAT.
pub struct RevengCase {
    /// The labelled dataset (netlist, labels, gate graph).
    pub dataset: LabeledDataset,
    /// Message-passing context over the gate graph.
    pub ctx: GraphContext,
    /// Functionality features.
    pub features: DenseMatrix,
    /// The trained classifier.
    pub model: GnnModel,
    /// Accuracy on the full gate set.
    pub accuracy: f64,
    /// F1-macro on the full gate set.
    pub f1: f64,
    /// Accuracy on the held-out gates only (1.0 when `train_fraction = 1`).
    pub test_accuracy: f64,
    /// Training mask used (true = gate seen during training).
    pub train_mask: Vec<bool>,
    neighborhood: NeighborhoodConfig,
}

/// Options for [`RevengCase::build`].
#[derive(Debug, Clone, Copy)]
pub struct RevengCaseConfig {
    /// Number of stitched modules.
    pub num_modules: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Training epochs.
    pub epochs: usize,
    /// Attention heads.
    pub heads: usize,
    /// Per-head hidden width.
    pub head_dim: usize,
    /// Fraction of gates used for training (the rest are held out for the
    /// transductive test metric, as in the paper's evaluation protocol).
    pub train_fraction: f64,
}

impl Default for RevengCaseConfig {
    fn default() -> Self {
        RevengCaseConfig {
            num_modules: 42,
            seed: 17,
            epochs: 260,
            heads: 2,
            head_dim: 12,
            train_fraction: 0.8,
        }
    }
}

impl RevengCase {
    /// Builds the dataset and trains the GAT classifier.
    ///
    /// # Errors
    ///
    /// Propagates substrate/training failures.
    pub fn build(config: &RevengCaseConfig) -> Result<Self, CaseError> {
        let dataset = build_interconnected(
            &InterconnectedConfig {
                num_modules: config.num_modules,
                ..Default::default()
            },
            config.seed,
        )?;
        let ctx = GraphContext::new(&dataset.gate_graph);
        let neighborhood = NeighborhoodConfig::default();
        let features = functionality_features(
            &dataset.netlist,
            &dataset.library,
            &dataset.gate_graph,
            &neighborhood,
        )?;
        let mut model = GnnModel::new(
            features.ncols(),
            &[
                LayerSpec::Gat {
                    head_dim: config.head_dim,
                    num_heads: config.heads,
                    activation: Activation::Elu,
                },
                LayerSpec::Gat {
                    head_dim: config.head_dim,
                    num_heads: config.heads,
                    activation: Activation::Elu,
                },
                LayerSpec::Linear {
                    dim: NUM_CLASSES,
                    activation: Activation::Identity,
                },
            ],
            config.seed ^ 0xB417,
        )?;
        let train = TrainConfig {
            epochs: config.epochs,
            learning_rate: 8e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            ..TrainConfig::default()
        };
        // Deterministic transductive split: every k-th gate is held out,
        // with k = round(1 / (1 − train_fraction)).
        let n = dataset.netlist.num_cells();
        let frac = config.train_fraction.clamp(0.05, 1.0);
        let train_mask: Vec<bool> = if frac >= 1.0 {
            vec![true; n]
        } else {
            let k = ((1.0 / (1.0 - frac)).round() as usize).max(2);
            (0..n).map(|g| g % k != 0).collect()
        };
        let mask_opt = if frac >= 1.0 {
            None
        } else {
            Some(&train_mask[..])
        };
        model.fit_classification(&ctx, &features, &dataset.labels, mask_opt, &train)?;
        let logits = model.forward(&ctx, &features, false)?;
        let acc = accuracy(&logits, &dataset.labels);
        let f1 = f1_macro(&logits, &dataset.labels);
        // Held-out accuracy.
        let mut correct = 0usize;
        let mut total = 0usize;
        for g in 0..n {
            if !train_mask[g] {
                total += 1;
                let row = (0..logits.ncols())
                    .max_by(|&a, &b| {
                        logits
                            .get(g, a)
                            .partial_cmp(&logits.get(g, b))
                            .expect("finite logits")
                    })
                    .expect("nonempty row");
                if row == dataset.labels[g] {
                    correct += 1;
                }
            }
        }
        let test_accuracy = if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        };
        Ok(RevengCase {
            dataset,
            ctx,
            features,
            model,
            accuracy: acc,
            f1,
            test_accuracy,
            train_mask,
            neighborhood,
        })
    }

    /// Runs CirSTAG on the gate graph.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn stability(&mut self, config: CirStagConfig) -> Result<StabilityReport, CaseError> {
        let embedding = self.model.embeddings(&self.ctx, &self.features)?;
        Ok(CirStag::new(config).analyze(
            &self.dataset.gate_graph,
            Some(&self.features),
            &embedding,
        )?)
    }

    /// Rewires the inputs of `gates`, rebuilds the graph/features, and
    /// measures the impact: cosine similarity between old and new embeddings
    /// and the new F1-macro / accuracy.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn rewire_outcome(
        &mut self,
        gates: &[usize],
        seed: u64,
    ) -> Result<RewireOutcome, CaseError> {
        let base_embedding = self.model.embeddings(&self.ctx, &self.features)?;
        let rewired = rewire_gate_inputs(&self.dataset.netlist, gates, seed)?;
        let new_graph = gate_graph(&rewired)?;
        let new_ctx = GraphContext::new(&new_graph);
        let new_features = functionality_features(
            &rewired,
            &self.dataset.library,
            &new_graph,
            &self.neighborhood,
        )?;
        let new_embedding = self.model.embeddings(&new_ctx, &new_features)?;
        let logits = self.model.forward(&new_ctx, &new_features, false)?;
        // Metrics restricted to the rewired gates themselves: the natural
        // reading of the paper's protocol — the perturbed sub-circuits are
        // the ones whose classification is at stake.
        let mut sub_rows = Vec::with_capacity(gates.len());
        let mut sub_labels = Vec::with_capacity(gates.len());
        for &g in gates {
            sub_rows.push(logits.row(g).to_vec());
            sub_labels.push(self.dataset.labels[g]);
        }
        let (f1_perturbed, accuracy_perturbed) = if sub_rows.is_empty() {
            (1.0, 1.0)
        } else {
            let sub = DenseMatrix::from_rows(&sub_rows).expect("uniform rows");
            (f1_macro(&sub, &sub_labels), accuracy(&sub, &sub_labels))
        };
        Ok(RewireOutcome {
            cosine: mean_row_cosine(&base_embedding, &new_embedding),
            f1: f1_macro(&logits, &self.dataset.labels),
            accuracy: accuracy(&logits, &self.dataset.labels),
            f1_perturbed,
            accuracy_perturbed,
        })
    }
}

/// Impact of a topology perturbation.
#[derive(Debug, Clone, Copy)]
pub struct RewireOutcome {
    /// Mean per-gate cosine similarity between unperturbed and perturbed
    /// embeddings (1.0 = unchanged).
    pub cosine: f64,
    /// F1-macro of the classifier on the perturbed topology against the
    /// original labels (all gates).
    pub f1: f64,
    /// Accuracy on the perturbed topology (all gates).
    pub accuracy: f64,
    /// F1-macro restricted to the rewired gates themselves.
    pub f1_perturbed: f64,
    /// Accuracy restricted to the rewired gates themselves.
    pub accuracy_perturbed: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> RevengCase {
        RevengCase::build(&RevengCaseConfig {
            num_modules: 10,
            seed: 3,
            epochs: 120,
            heads: 2,
            head_dim: 8,
            train_fraction: 0.8,
        })
        .unwrap()
    }

    #[test]
    fn classifier_learns_subcircuits() {
        let case = small_case();
        assert!(case.accuracy > 0.8, "accuracy {}", case.accuracy);
        assert!(case.f1 > 0.7, "f1 {}", case.f1);
    }

    #[test]
    fn stability_scores_cover_gates() {
        let mut case = small_case();
        let cfg = CirStagConfig {
            embedding_dim: 6,
            knn_k: 6,
            num_eigenpairs: 5,
            ..Default::default()
        };
        let report = case.stability(cfg).unwrap();
        assert_eq!(report.node_scores.len(), case.dataset.netlist.num_cells());
    }

    #[test]
    fn rewiring_degrades_metrics() {
        let mut case = small_case();
        let all: Vec<usize> = (0..case.dataset.netlist.num_cells()).collect();
        let outcome = case.rewire_outcome(&all, 1).unwrap();
        assert!(outcome.cosine < 0.999);
        assert!(outcome.f1 <= case.f1 + 1e-9);
    }

    #[test]
    fn no_rewiring_is_identity() {
        let mut case = small_case();
        let outcome = case.rewire_outcome(&[], 1).unwrap();
        assert!((outcome.cosine - 1.0).abs() < 1e-9);
        assert!((outcome.f1 - case.f1).abs() < 1e-9);
    }
}
