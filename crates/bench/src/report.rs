//! Plain-text table and histogram rendering for the experiment binaries.

/// Renders a fixed-width table: `headers` then one row per entry.
///
/// # Panics
///
/// Panics if any row length differs from the header length.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "table row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:>w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    sep.push('\n');
    out.push_str(&sep);
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
    }
    out
}

/// Renders an ASCII histogram of `values` over `bins` equal-width buckets
/// between `lo` and `hi` (values outside are clamped into the end buckets).
pub fn render_histogram(title: &str, values: &[f64], lo: f64, hi: f64, bins: usize) -> String {
    let bins = bins.max(1);
    let mut counts = vec![0usize; bins];
    let span = (hi - lo).max(1e-300);
    for &v in values {
        let t = ((v - lo) / span).clamp(0.0, 1.0);
        let b = ((t * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = format!("{title} (n = {})\n", values.len());
    for (i, &c) in counts.iter().enumerate() {
        let b_lo = lo + span * i as f64 / bins as f64;
        let b_hi = lo + span * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat((c * 50).div_ceil(max_count).min(50));
        out.push_str(&format!("[{b_lo:8.4}, {b_hi:8.4}) {c:6} {bar}\n"));
    }
    out
}

/// Formats a pair as the paper's "unstable/stable" cell, e.g. `0.3125/0.0012`.
pub fn pair_cell(unstable: f64, stable: f64) -> String {
    format!("{unstable:.4}/{stable:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.0".to_string()],
                vec!["long_name".to_string(), "2.25".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[3].len());
        assert!(t.contains("long_name"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = render_histogram("test", &[0.1, 0.1, 0.9], 0.0, 1.0, 2);
        assert!(h.contains("n = 3"));
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("2"));
        assert!(lines[2].contains("1"));
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = render_histogram("clamp", &[-5.0, 10.0], 0.0, 1.0, 2);
        assert!(h.contains("n = 2"));
    }

    #[test]
    fn pair_cell_format() {
        assert_eq!(pair_cell(0.3125, 0.0012), "0.3125/0.0012");
    }
}
