//! Ablation A1: η-based spectral pruning (Eq. 8) vs uniformly random pruning
//! to the same edge budget in Phase 2.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin ablation_pgm`

use cirstag::CirStagConfig;
use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_bench::report::render_table;

fn main() {
    let mut case = TimingCase::build(
        "syn_ctl300",
        &TimingCaseConfig {
            num_gates: 300,
            seed: 101,
            epochs: 260,
            hidden: 32,
        },
    )
    .expect("benchmark construction");
    eprintln!("[ablation_pgm] GNN R² = {:.4}", case.r2);

    let mut rows = Vec::new();
    let mut seps = Vec::new();
    for (label, random) in [("eta pruning (Eq. 8)", false), ("random pruning", true)] {
        let cfg = CirStagConfig {
            embedding_dim: 16,
            num_eigenpairs: 25,
            knn_k: 10,
            feature_weight: 0.0,
            random_prune: random,
            ..Default::default()
        };
        let report = case.stability(cfg).expect("cirstag");
        let eligible = case.eligible();
        let unstable = cirstag::top_fraction(&report.node_scores, 0.10, Some(&eligible));
        let stable = cirstag::bottom_fraction(&report.node_scores, 0.10, Some(&eligible));
        let u = case.perturb_outcome(&unstable, 10.0).expect("perturb");
        let s = case.perturb_outcome(&stable, 10.0).expect("perturb");
        let sep = u.mean() / s.mean().max(1e-12);
        rows.push(vec![
            label.to_string(),
            format!("{}", report.input_manifold.num_edges()),
            format!("{:.4}", u.mean()),
            format!("{:.4}", s.mean()),
            format!("{sep:.2}x"),
        ]);
        seps.push(sep);
    }
    println!("\nAblation A1 — Phase-2 pruning criterion\n");
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "manifold edges",
                "unstable mean",
                "stable mean",
                "separation"
            ],
            &rows
        )
    );
    println!(
        "shape check: eta pruning separates at least as well as random: {}",
        if seps[0] >= seps[1] * 0.8 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
