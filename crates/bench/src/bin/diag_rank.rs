//! Diagnostic: how well do CirSTAG scores track true per-pin GNN sensitivity?
//! Not part of the paper reproduction; used to calibrate the Case-A protocol.

use cirstag::CirStagConfig;
use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].partial_cmp(&v[y]).unwrap());
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-30)
}

fn main() {
    let mut case = TimingCase::build(
        "diag",
        &TimingCaseConfig {
            num_gates: 300,
            seed: 101,
            epochs: 260,
            hidden: 32,
        },
    )
    .unwrap();
    eprintln!("R2 = {:.4}", case.r2);
    let eligible = case.eligible();
    let n = case.timing.num_pins();

    // Ground truth: per-pin sensitivity = mean |Δpred| over POs when that
    // pin's cap is scaled 10x.
    let mut truth = vec![0.0f64; n];
    for p in 0..n {
        if !eligible[p] {
            continue;
        }
        let o = case.perturb_outcome(&[p], 10.0).unwrap();
        truth[p] = o.mean();
    }

    for (label, m, s_pairs, k) in [
        ("m16 s12 k10", 16usize, 12usize, 10usize),
        ("m16 s25 k10", 16, 25, 10),
        ("m32 s25 k10", 32, 25, 10),
        ("m16 s50 k10", 16, 50, 10),
        ("m16 s25 k15", 16, 25, 15),
        ("m8  s12 k6 ", 8, 12, 6),
    ] {
        let cfg = CirStagConfig {
            feature_weight: 0.0,
            embedding_dim: m,
            num_eigenpairs: s_pairs,
            knn_k: k,
            ..Default::default()
        };
        let report = case.stability(cfg).unwrap();
        let el_scores: Vec<f64> = (0..n)
            .filter(|&p| eligible[p])
            .map(|p| report.node_scores[p])
            .collect();
        let el_truth: Vec<f64> = (0..n).filter(|&p| eligible[p]).map(|p| truth[p]).collect();
        let rho = spearman(&el_scores, &el_truth);
        // Top-decile overlap.
        let top_s = cirstag::top_fraction(&report.node_scores, 0.10, Some(&eligible));
        let top_t = cirstag::top_fraction(&truth, 0.10, Some(&eligible));
        let overlap =
            top_s.iter().filter(|i| top_t.contains(i)).count() as f64 / top_s.len().max(1) as f64;
        // Separation using truth values of chosen sets.
        let bot_s = cirstag::bottom_fraction(&report.node_scores, 0.10, Some(&eligible));
        let mean_t =
            |set: &[usize]| set.iter().map(|&i| truth[i]).sum::<f64>() / set.len().max(1) as f64;
        println!(
            "{label:>10}: spearman {rho:+.3} | top10% overlap {overlap:.2} | truth(top) {:.4} vs truth(bottom) {:.4}",
            mean_t(&top_s),
            mean_t(&bot_s)
        );
    }
}
