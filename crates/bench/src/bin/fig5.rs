//! Regenerates Fig. 5: CirSTAG runtime across the nine benchmarks.
//!
//! The GNN is used untrained here (runtime is independent of weight values),
//! so the numbers isolate the CirSTAG pipeline itself. A log–log regression
//! of total time against |V| + |E| checks the near-linear claim.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin fig5 [-- --quick]`

use cirstag::{CirStag, CirStagConfig};
use cirstag_circuit::{
    benchmark_suite, extract_features, generate_circuit, CellLibrary, FeatureConfig,
    GeneratorConfig, TimingGraph,
};
use cirstag_embed::KnnMethod;
use cirstag_gnn::{Activation, GnnModel, GraphContext, LayerSpec};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite = benchmark_suite();
    let specs: Vec<_> = if quick {
        suite.into_iter().take(5).collect()
    } else {
        suite
    };
    let library = CellLibrary::standard();

    println!("\nFig. 5 reproduction — CirSTAG runtime vs problem size\n");
    println!(
        "{:>12} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "|V|", "|E|", "phase1", "phase2", "phase3", "total"
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for spec in &specs {
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: spec.num_gates,
                ..Default::default()
            },
            spec.seed,
        )
        .expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing graph");
        let graph = timing.to_undirected_graph().expect("pin graph");
        let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
        let ctx = GraphContext::with_dag(&graph, &arcs).expect("context");
        let features = extract_features(
            &timing,
            &netlist,
            &library,
            &timing.pin_caps(),
            &FeatureConfig::default(),
        )
        .expect("features");
        // Untrained model — embeddings only need to exist for timing runs.
        let mut model = GnnModel::new(
            features.ncols(),
            &[
                LayerSpec::Linear {
                    dim: 32,
                    activation: Activation::Relu,
                },
                LayerSpec::DagProp {
                    dim: 32,
                    activation: Activation::Relu,
                },
                LayerSpec::Linear {
                    dim: 16,
                    activation: Activation::Relu,
                },
                LayerSpec::Linear {
                    dim: 1,
                    activation: Activation::Identity,
                },
            ],
            1,
        )
        .expect("model");
        let embedding = model.embeddings(&ctx, &features).expect("embedding");

        let n = graph.num_nodes();
        let mut cfg = CirStagConfig {
            embedding_dim: 16,
            num_eigenpairs: 25,
            knn_k: 10,
            feature_weight: 0.0,
            ..Default::default()
        };
        if n > 3000 {
            cfg.knn.method = KnnMethod::RpForest {
                num_trees: 6,
                leaf_size: 48,
            };
        }
        let report = CirStag::new(cfg)
            .analyze(&graph, Some(&features), &embedding)
            .expect("cirstag");
        let t = report.timings;
        println!(
            "{:>12} {:>9} {:>9} {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s",
            spec.name,
            n,
            graph.num_edges(),
            t.phase1.as_secs_f64(),
            t.phase2.as_secs_f64(),
            t.phase3.as_secs_f64(),
            t.total().as_secs_f64()
        );
        xs.push(((n + graph.num_edges()) as f64).ln());
        ys.push(t.total().as_secs_f64().max(1e-6).ln());
    }
    // Least-squares slope in log–log space.
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let slope: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>();
    println!("\nlog–log scaling exponent: {slope:.2} (near-linear claim: ≈ 1; paper Fig. 5)");
    println!(
        "shape check: exponent within [0.6, 1.6]: {}",
        if (0.6..=1.6).contains(&slope) {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
