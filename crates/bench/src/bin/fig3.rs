//! Regenerates Fig. 3: distribution of relative arrival-prediction changes
//! when perturbing the top 10% (unstable) vs bottom 10% (stable) pins at
//! 10× capacitance scale, *with* the Phase-1 dimensionality reduction.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin fig3`

use cirstag::CirStagConfig;
use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_bench::report::render_histogram;

fn main() {
    let mut case = TimingCase::build(
        "syn_ctl300",
        &TimingCaseConfig {
            num_gates: 300,
            seed: 101,
            epochs: 260,
            hidden: 32,
        },
    )
    .expect("benchmark construction");
    eprintln!("[fig3] GNN R² = {:.4}", case.r2);

    let cfg = CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        feature_weight: 0.0,
        ..Default::default()
    };
    let report = case.stability(cfg).expect("cirstag");
    let eligible = case.eligible();
    let unstable = cirstag::top_fraction(&report.node_scores, 0.10, Some(&eligible));
    let stable = cirstag::bottom_fraction(&report.node_scores, 0.10, Some(&eligible));
    let u = case
        .perturb_outcome(&unstable, 10.0)
        .expect("perturb unstable");
    let s = case.perturb_outcome(&stable, 10.0).expect("perturb stable");

    let hi = u
        .per_output
        .iter()
        .chain(&s.per_output)
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-6);
    println!("\nFig. 3 reproduction — per-output relative change distribution");
    println!("(top 10% of pins perturbed at 10x, WITH dimensionality reduction)\n");
    println!(
        "{}",
        render_histogram("unstable nodes perturbed", &u.per_output, 0.0, hi, 12)
    );
    println!(
        "{}",
        render_histogram("stable nodes perturbed", &s.per_output, 0.0, hi, 12)
    );
    println!(
        "summary: unstable mean {:.4} max {:.4} | stable mean {:.4} max {:.4}",
        u.mean(),
        u.max(),
        s.mean(),
        s.max()
    );
    println!(
        "shape check: unstable mass concentrates at higher relative change (paper Fig. 3): {}",
        if u.mean() > s.mean() { "PASS" } else { "FAIL" }
    );
}
