//! Regenerates the Case-Study-B table: embedding cosine similarity and
//! F1-macro under topology perturbations of unstable vs stable gates.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin table2`

use cirstag::CirStagConfig;
use cirstag_bench::case_b::{RevengCase, RevengCaseConfig};
use cirstag_bench::report::{pair_cell, render_table};

fn main() {
    let mut case = RevengCase::build(&RevengCaseConfig::default()).expect("case construction");
    eprintln!(
        "[table2] GAT accuracy = {:.4} (held-out {:.4}), F1-macro = {:.4} on {} gates",
        case.accuracy,
        case.test_accuracy,
        case.f1,
        case.dataset.netlist.num_cells()
    );

    let cfg = CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        feature_weight: 0.0,
        ..Default::default()
    };
    let report = case.stability(cfg).expect("cirstag");

    let fractions = [0.05, 0.10, 0.15];
    let mut rows = Vec::new();
    let mut cos_gaps = Vec::new();
    let mut f1_gaps = Vec::new();
    for &fraction in &fractions {
        let unstable = cirstag::top_fraction(&report.node_scores, fraction, None);
        let stable = cirstag::bottom_fraction(&report.node_scores, fraction, None);
        let u = case.rewire_outcome(&unstable, 77).expect("rewire unstable");
        let s = case.rewire_outcome(&stable, 77).expect("rewire stable");
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            pair_cell(u.cosine, s.cosine),
            pair_cell(u.f1, s.f1),
            pair_cell(u.f1_perturbed, s.f1_perturbed),
            pair_cell(u.accuracy_perturbed, s.accuracy_perturbed),
        ]);
        cos_gaps.push(s.cosine - u.cosine);
        f1_gaps.push(s.accuracy_perturbed - u.accuracy_perturbed);
    }

    println!("\nCase Study B reproduction — topology perturbation impact");
    println!(
        "(each cell: perturb-unstable/perturb-stable; baseline F1 = {:.4})\n",
        case.f1
    );
    println!(
        "{}",
        render_table(
            &[
                "perturbed",
                "cosine sim",
                "F1 (all gates)",
                "F1 (rewired gates)",
                "acc (rewired gates)",
            ],
            &rows
        )
    );
    let pass_cos = cos_gaps.iter().filter(|&&g| g > 0.0).count();
    let pass_f1 = f1_gaps.iter().filter(|&&g| g >= 0.0).count();
    println!("shape checks:");
    println!(
        "  rewiring unstable gates hurts embedding similarity more ({pass_cos}/{} settings): {}",
        fractions.len(),
        if pass_cos * 2 > fractions.len() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "  rewired-unstable gates misclassify at least as often ({pass_f1}/{} settings): {}",
        fractions.len(),
        if pass_f1 * 2 > fractions.len() {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
