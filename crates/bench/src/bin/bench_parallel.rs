//! Emits `BENCH_parallel.json`: wall time of the four parallelized kernels
//! at one thread versus all cores, as `{stage, n, threads, wall_ms}` records.
//!
//! The workload sizes are chosen so every kernel is comfortably above its
//! serial-fallback threshold; on a single-core host the two timings should
//! be close (the delta is pool fan-out overhead), while on an N-core host
//! the parallel rows should approach an N× improvement for the
//! embarrassingly parallel stages.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin bench_parallel [-- out.json]`

use std::time::Instant;

use cirstag_embed::{knn_graph, KnnConfig};
use cirstag_graph::Graph;
use cirstag_linalg::{par, DenseMatrix};
use cirstag_solver::ResistanceEstimator;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct BenchRecord {
    stage: String,
    n: usize,
    threads: usize,
    wall_ms: f64,
}

serde::impl_serde_struct!(BenchRecord {
    stage,
    n,
    threads,
    wall_ms
});

fn grid(side: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 0..side {
        for j in 0..side {
            let id = i * side + j;
            if j + 1 < side {
                edges.push((id, id + 1, 1.0 + ((id * 7) % 5) as f64));
            }
            if i + 1 < side {
                edges.push((id, id + side, 1.0));
            }
        }
    }
    Graph::from_edges(side * side, &edges).expect("grid")
}

fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-1.0f64..1.0))
        .collect();
    DenseMatrix::from_vec(rows, cols, data).expect("sized")
}

/// Best-of-`reps` wall time in milliseconds (minimum filters scheduler
/// noise better than the mean for short single-shot kernels).
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    par::set_num_threads(0);
    let all_cores = par::current_num_threads();
    let reps = 3;
    let mut records: Vec<BenchRecord> = Vec::new();

    println!("kernel timings, 1 thread vs {all_cores} (best of {reps})\n");
    println!(
        "{:>28} {:>8} {:>12} {:>12} {:>9}",
        "stage", "n", "1-thread", "all-cores", "speedup"
    );

    let mut run = |stage: &str, n: usize, f: &mut dyn FnMut()| {
        par::set_num_threads(1);
        let serial_ms = time_ms(reps, &mut *f);
        par::set_num_threads(0);
        let parallel_ms = time_ms(reps, &mut *f);
        println!(
            "{:>28} {:>8} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            stage,
            n,
            serial_ms,
            parallel_ms,
            serial_ms / parallel_ms
        );
        for (threads, wall_ms) in [(1usize, serial_ms), (all_cores, parallel_ms)] {
            records.push(BenchRecord {
                stage: stage.to_string(),
                n,
                threads,
                wall_ms,
            });
        }
    };

    let a = random_dense(512, 512, 11);
    let m = random_dense(512, 512, 12);
    run("matmul_512", 512, &mut || {
        std::hint::black_box(a.matmul(&m).expect("matmul"));
    });

    let u = random_dense(1600, 8, 13);
    run("knn_exact", 1600, &mut || {
        std::hint::black_box(knn_graph(&u, 8, &KnnConfig::default()).expect("knn"));
    });

    let g32 = grid(32);
    run("resistance_sketch_64probes", g32.num_nodes(), &mut || {
        std::hint::black_box(ResistanceEstimator::sketched(&g32, 64, 3).expect("sketch"));
    });

    let g64 = grid(64);
    let edges = g64.edges();
    let s = 16;
    let vs = random_dense(g64.num_nodes(), s, 14);
    let zetas: Vec<f64> = (0..s).map(|i| 1.0 / (1.0 + i as f64)).collect();
    run("dmd_edge_scores", edges.len(), &mut || {
        std::hint::black_box(par::map_indexed(edges.len(), |eid| {
            let e = &edges[eid];
            let mut score = 0.0;
            for (i, &z) in zetas.iter().enumerate() {
                let d = vs.get(e.u, i) - vs.get(e.v, i);
                score += z * d * d;
            }
            (e.u, e.v, score)
        }));
    });

    let json = serde_json::to_string_pretty(&records).expect("serialize");
    std::fs::write(&out_path, json).expect("write BENCH_parallel.json");
    println!("\nwrote {out_path} ({} records)", records.len());
}
