//! Emits `BENCH_parallel.json`: wall time of the parallelized kernels at one
//! thread versus all cores, as `{stage, n, threads, wall_ms}` records.
//!
//! The workload sizes are chosen so every kernel is comfortably above its
//! serial-fallback threshold; on a single-core host the two timings should
//! be close (the delta is pool fan-out overhead), while on an N-core host
//! the parallel rows should approach an N× improvement for the
//! embarrassingly parallel stages.
//!
//! Usage:
//!
//! - `cargo run -p cirstag-bench --release --bin bench_parallel [-- out.json]`
//!   runs the suite and (over)writes the JSON snapshot.
//! - `cargo run -p cirstag-bench --release --bin bench_parallel -- --gate
//!   [baseline.json]` runs the suite fresh and compares it against the
//!   committed snapshot instead of writing: any stage slower than
//!   `1.25 × baseline + 0.5 ms` is a regression and the process exits
//!   nonzero. Stages missing from the baseline (newly added benchmarks) are
//!   reported and skipped.

use std::time::Instant;

use cirstag::{analyze_sweep, ArtifactCache, CirStag, CirStagConfig};
use cirstag_embed::{knn_graph, HnswIndex, HnswParams, KnnConfig};
use cirstag_graph::Graph;
use cirstag_linalg::{par, vecops, DenseMatrix};
use cirstag_solver::{LaplacianSolver, ResistanceEstimator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct BenchRecord {
    stage: String,
    n: usize,
    threads: usize,
    wall_ms: f64,
}

serde::impl_serde_struct!(BenchRecord {
    stage,
    n,
    threads,
    wall_ms
});

/// Regression gate: fail when `fresh > RATIO × base + SLACK_MS`. The
/// multiplicative term absorbs proportional noise, the additive term keeps
/// sub-millisecond stages from tripping on scheduler jitter.
const GATE_RATIO: f64 = 1.25;
const GATE_SLACK_MS: f64 = 0.5;

fn grid(side: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 0..side {
        for j in 0..side {
            let id = i * side + j;
            if j + 1 < side {
                edges.push((id, id + 1, 1.0 + ((id * 7) % 5) as f64));
            }
            if i + 1 < side {
                edges.push((id, id + side, 1.0));
            }
        }
    }
    Graph::from_edges(side * side, &edges).expect("grid")
}

fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-1.0f64..1.0))
        .collect();
    DenseMatrix::from_vec(rows, cols, data).expect("sized")
}

/// Sketch-style probe panel: each column is a Rademacher combination of
/// edge-incidence vectors, the exact RHS shape the resistance estimator
/// streams through the block solver.
fn rademacher_probe_panel(g: &Graph, width: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes();
    let mut panel = DenseMatrix::zeros(n, width);
    let data = panel.as_mut_slice();
    for j in 0..width {
        for e in g.edges() {
            let sign = if rng.random_range(0.0f64..1.0) < 0.5 {
                1.0
            } else {
                -1.0
            };
            let s = sign * e.weight.sqrt();
            data[e.u * width + j] += s;
            data[e.v * width + j] -= s;
        }
    }
    panel
}

/// Builds an HNSW index over `points` and answers every point's
/// k-nearest-neighbor query through it, returning the combined wall time in
/// milliseconds. Mirrors the Phase-2 `KnnMethod::Hnsw` code path: serial
/// deterministic construction, then chunk-parallel search with one scratch
/// arena per chunk.
fn hnsw_build_search_ms(points: &DenseMatrix, params: &HnswParams, k: usize) -> f64 {
    let n = points.nrows();
    let chunk_len = (n / 64).clamp(16, 4096);
    let t = Instant::now();
    let index = HnswIndex::build(points, params, 0xC1A5).expect("hnsw build");
    let mut slots: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    par::chunks_mut(&mut slots, chunk_len, |chunk_idx, chunk| {
        let base = chunk_idx * chunk_len;
        let mut scratch = index.scratch();
        for (offset, slot) in chunk.iter_mut().enumerate() {
            index.knn_into(
                points,
                base + offset,
                k,
                params.ef_search,
                &mut scratch,
                slot,
            );
        }
    });
    std::hint::black_box(&slots);
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`reps` wall time in milliseconds (minimum filters scheduler
/// noise better than the mean for short single-shot kernels).
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Compares fresh records against the committed baseline. Records are
/// matched by stage name *positionally* (the snapshot holds one serial and
/// one all-cores row per stage, which coincide on a single-core host), so
/// the i-th fresh row of a stage gates against the i-th baseline row.
/// Returns `true` when no stage regressed.
fn gate_against(baseline_path: &str, fresh: &[BenchRecord]) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench gate: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let base: Vec<BenchRecord> = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench gate: cannot parse baseline {baseline_path}: {e}");
            return false;
        }
    };
    println!(
        "\nbench gate vs {baseline_path} (regression = fresh > {GATE_RATIO}x base + {GATE_SLACK_MS}ms)"
    );
    println!(
        "{:>28} {:>12} {:>12} {:>12}  verdict",
        "stage", "base", "fresh", "limit"
    );
    let mut ok = true;
    for (idx, rec) in fresh.iter().enumerate() {
        // Position of this record among fresh rows sharing its stage name.
        let position = fresh[..idx].iter().filter(|r| r.stage == rec.stage).count();
        let Some(base_rec) = base.iter().filter(|r| r.stage == rec.stage).nth(position) else {
            println!(
                "{:>28} {:>12} {:>10.2}ms {:>12}  skipped (not in baseline)",
                rec.stage, "-", rec.wall_ms, "-"
            );
            continue;
        };
        let limit = base_rec.wall_ms * GATE_RATIO + GATE_SLACK_MS;
        let regressed = rec.wall_ms > limit;
        if regressed {
            ok = false;
        }
        println!(
            "{:>28} {:>10.2}ms {:>10.2}ms {:>10.2}ms  {}",
            rec.stage,
            base_rec.wall_ms,
            rec.wall_ms,
            limit,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    ok
}

fn main() {
    let mut gate = false;
    let mut path_arg: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--gate" {
            gate = true;
        } else {
            path_arg = Some(arg);
        }
    }
    let snapshot_path = path_arg.unwrap_or_else(|| "BENCH_parallel.json".to_string());
    par::set_num_threads(0);
    let all_cores = par::current_num_threads();
    let reps = 3;
    let mut records: Vec<BenchRecord> = Vec::new();

    println!("kernel timings, 1 thread vs {all_cores} (best of {reps})\n");
    println!(
        "{:>28} {:>8} {:>12} {:>12} {:>9}",
        "stage", "n", "1-thread", "all-cores", "speedup"
    );

    let mut run = |stage: &str, n: usize, f: &mut dyn FnMut()| {
        par::set_num_threads(1);
        let serial_ms = time_ms(reps, &mut *f);
        par::set_num_threads(0);
        let parallel_ms = time_ms(reps, &mut *f);
        println!(
            "{:>28} {:>8} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            stage,
            n,
            serial_ms,
            parallel_ms,
            serial_ms / parallel_ms
        );
        for (threads, wall_ms) in [(1usize, serial_ms), (all_cores, parallel_ms)] {
            records.push(BenchRecord {
                stage: stage.to_string(),
                n,
                threads,
                wall_ms,
            });
        }
    };

    let a = random_dense(512, 512, 11);
    let m = random_dense(512, 512, 12);
    run("matmul_512", 512, &mut || {
        std::hint::black_box(a.matmul(&m).expect("matmul"));
    });

    let u = random_dense(1600, 8, 13);
    run("knn_exact", 1600, &mut || {
        std::hint::black_box(knn_graph(&u, 8, &KnnConfig::default()).expect("knn"));
    });

    // kNN distance inner loop: the batched four-candidate squared-distance
    // kernel (AVX2 under `--features simd`, bit-identical scalar otherwise),
    // driven the way the candidate-ranking path drives it — parallel over
    // queries, four distances per call.
    let qpts = random_dense(20_000, 16, 19);
    let dist_cand = [qpts.row(0), qpts.row(1), qpts.row(2), qpts.row(3)];
    run("knn_dist", 20_000, &mut || {
        std::hint::black_box(par::map_indexed(20_000, |i| {
            let d = vecops::dist2_sq4(qpts.row(i), dist_cand);
            d[0] + d[1] + d[2] + d[3]
        }));
    });

    let g32 = grid(32);
    run("resistance_sketch_64probes", g32.num_nodes(), &mut || {
        std::hint::black_box(ResistanceEstimator::sketched(&g32, 64, 3).expect("sketch"));
    });

    // Isolates the blocked multi-RHS solver from the sketch bookkeeping:
    // a prebuilt Laplacian solver advancing 64 probe columns in lockstep.
    let block_solver = LaplacianSolver::new(&g32).expect("laplacian solver");
    let probe_panel = rademacher_probe_panel(&g32, 64, 15);
    run("resistance_block_64probes", g32.num_nodes(), &mut || {
        std::hint::black_box(block_solver.solve_block(&probe_panel).expect("block solve"));
    });

    let g64 = grid(64);

    // CSR × dense-panel kernel on its own: the traversal-amortized SpMM the
    // block solver and the sketch both sit on.
    let lap64 = g64.laplacian();

    // CSR × vector kernel on its own: the spmv under the Lanczos iteration.
    // The workload sits above the spmv parallel threshold so the chunked
    // path runs; built with `--features simd` this row also exercises the
    // AVX2 4-row fast path, which is bit-identical to the scalar kernel, so
    // gating against a scalar baseline stays apples-to-apples.
    let spmv_x: Vec<f64> = random_dense(g64.num_nodes(), 1, 18).as_slice().to_vec();
    let mut spmv_y = vec![0.0; g64.num_nodes()];
    run("spmv_grid64", g64.num_nodes(), &mut || {
        lap64.mul_vec_into(&spmv_x, &mut spmv_y);
        std::hint::black_box(&spmv_y);
    });
    let spmm_x = random_dense(g64.num_nodes(), 64, 16);
    let mut spmm_out = DenseMatrix::zeros(g64.num_nodes(), 64);
    run("spmm_panel", g64.num_nodes(), &mut || {
        lap64.mul_dense_into(&spmm_x, &mut spmm_out).expect("spmm");
        std::hint::black_box(&spmm_out);
    });

    let edges = g64.edges();
    let s = 16;
    let vs = random_dense(g64.num_nodes(), s, 14);
    let zetas: Vec<f64> = (0..s).map(|i| 1.0 / (1.0 + i as f64)).collect();
    run("dmd_edge_scores", edges.len(), &mut || {
        std::hint::black_box(par::map_indexed(edges.len(), |eid| {
            let e = &edges[eid];
            let ru = vs.row(e.u);
            let rv = vs.row(e.v);
            let mut score = 0.0;
            for ((&z, &x), &y) in zetas.iter().zip(ru).zip(rv) {
                let d = x - y;
                score += z * d * d;
            }
            (e.u, e.v, score)
        }));
    });

    // Approximate-neighbor scaling ladder: HNSW build plus a full
    // self-query pass at 10k and 100k points (serial vs all-cores, one shot
    // each — construction dominates and best-of-reps would triple the
    // runtime), then a single all-cores shot at one million points, the
    // stress-suite pin count. Sub-quadratic scaling shows up as the
    // 10k→100k total staying well under the ~100× a quadratic backend pays
    // for 10× the points.
    let hnsw_params = HnswParams {
        m: 8,
        ef_construction: 48,
        ef_search: 32,
    };
    let p10k = random_dense(10_000, 8, 23);
    let p100k = random_dense(100_000, 8, 24);
    let mut hnsw_totals = Vec::new();
    for (stage, points) in [("knn_hnsw_10k", &p10k), ("knn_hnsw_100k", &p100k)] {
        par::set_num_threads(1);
        let serial_ms = hnsw_build_search_ms(points, &hnsw_params, 8);
        par::set_num_threads(0);
        let parallel_ms = hnsw_build_search_ms(points, &hnsw_params, 8);
        println!(
            "{:>28} {:>8} {:>10.2}ms {:>10.2}ms {:>8.2}x  (build + search)",
            stage,
            points.nrows(),
            serial_ms,
            parallel_ms,
            serial_ms / parallel_ms
        );
        for (threads, wall_ms) in [(1usize, serial_ms), (all_cores, parallel_ms)] {
            records.push(BenchRecord {
                stage: stage.to_string(),
                n: points.nrows(),
                threads,
                wall_ms,
            });
        }
        hnsw_totals.push(parallel_ms);
    }
    let hnsw_ratio = hnsw_totals[1] / hnsw_totals[0];
    println!(
        "{:>28} 10k → 100k all-cores scaling {hnsw_ratio:.1}x (quadratic would pay ~100x)",
        "knn_hnsw_scaling"
    );
    assert!(
        hnsw_ratio < 40.0,
        "HNSW 10k→100k scaled {hnsw_ratio:.1}x — the index is no longer sub-quadratic"
    );
    if !gate {
        // The million-point row documents that Phase-2 neighbor search now
        // completes at stress-suite scale; it is skipped under `--gate` to
        // keep the opt-in regression check fast (missing fresh rows are
        // simply not compared).
        let p1m = random_dense(1 << 20, 8, 25);
        let wall_ms = hnsw_build_search_ms(&p1m, &hnsw_params, 8);
        println!(
            "{:>28} {:>8} {:>21} {:>10.2}ms  (build + search, all cores)",
            "knn_hnsw_1m",
            p1m.nrows(),
            "",
            wall_ms
        );
        records.push(BenchRecord {
            stage: "knn_hnsw_1m".to_string(),
            n: p1m.nrows(),
            threads: all_cores,
            wall_ms,
        });
    }

    // End-to-end incremental re-run: a `num_eigenpairs` sweep where the
    // cold row runs every config through the full pipeline and the warm row
    // shares one artifact cache, replaying the Phase-1/2 stages. Both rows
    // use all cores; the comparison is cached-vs-uncached, not thread count,
    // so the two records carry the same `threads` value.
    let gsweep = grid(30);
    let sweep_emb = random_dense(gsweep.num_nodes(), 8, 17);
    let sweep_cfgs: Vec<CirStagConfig> = (0..8)
        .map(|i| CirStagConfig {
            embedding_dim: 12,
            knn_k: 8,
            num_eigenpairs: 3 + 2 * i,
            num_threads: 0,
            ..CirStagConfig::default()
        })
        .collect();
    let cold_ms = time_ms(1, || {
        for cfg in &sweep_cfgs {
            std::hint::black_box(
                CirStag::new(*cfg)
                    .analyze(&gsweep, None, &sweep_emb)
                    .expect("cold sweep"),
            );
        }
    });
    let warm_ms = time_ms(1, || {
        let mut cache = ArtifactCache::new();
        std::hint::black_box(
            analyze_sweep(&gsweep, None, &sweep_emb, &sweep_cfgs, &mut cache).expect("warm sweep"),
        );
    });
    println!(
        "{:>28} {:>8} {:>10.2}ms {:>10.2}ms {:>8.2}x  (cold vs cached sweep, {} configs)",
        "sweep_warm_vs_cold",
        gsweep.num_nodes(),
        cold_ms,
        warm_ms,
        cold_ms / warm_ms,
        sweep_cfgs.len()
    );
    for wall_ms in [cold_ms, warm_ms] {
        records.push(BenchRecord {
            stage: "sweep_warm_vs_cold".to_string(),
            n: gsweep.num_nodes(),
            threads: all_cores,
            wall_ms,
        });
    }

    // ECO incremental re-analysis: a 10k-node design partitioned into 8
    // regions, one edge rescaled deep inside one partition. The cold row
    // re-runs every partition of the edited design from scratch; the warm
    // row replays the untouched partitions from a cache primed on the base
    // design and recomputes only the dirty region (plus halo viewers). Both
    // rows run on one core — the speedup is cache locality, not threads.
    {
        use cirstag::{analyze_partitioned_cached, analyze_partitioned_cold};
        use cirstag_circuit::{apply_delta, partition_graph, DeltaOp, NetlistDelta};

        let geco = grid(100);
        let eco_n = geco.num_nodes();
        let eco_emb = random_dense(eco_n, 6, 31);
        let eco_cfg = CirStagConfig {
            embedding_dim: 6,
            knn_k: 8,
            num_eigenpairs: 4,
            num_threads: 1,
            ..CirStagConfig::default()
        };
        let partitioning = partition_graph(&geco, &cirstag_circuit::PartitionConfig::default())
            .expect("partition bench grid");
        let num_partitions = partitioning.num_partitions;
        let halo_depth = partitioning.halo_depth;
        let delta = NetlistDelta {
            ops: vec![DeltaOp::RescaleEdge {
                u: 0,
                v: 1,
                factor: 1.3,
            }],
        };
        let outcome = apply_delta(&geco, None, &delta, &partitioning).expect("apply bench delta");
        let mut eco_cache = ArtifactCache::new();
        std::hint::black_box(
            analyze_partitioned_cached(
                &eco_cfg,
                &geco,
                None,
                &eco_emb,
                &partitioning.assignment,
                num_partitions,
                halo_depth,
                &mut eco_cache,
            )
            .expect("prime eco cache"),
        );
        let eco_cold_ms = time_ms(1, || {
            std::hint::black_box(
                analyze_partitioned_cold(
                    &eco_cfg,
                    &outcome.graph,
                    None,
                    &eco_emb,
                    &partitioning.assignment,
                    num_partitions,
                    halo_depth,
                )
                .expect("cold eco run"),
            );
        });
        let mut eco_recomputed = 0;
        let eco_warm_ms = time_ms(1, || {
            let report = analyze_partitioned_cached(
                &eco_cfg,
                &outcome.graph,
                None,
                &eco_emb,
                &partitioning.assignment,
                num_partitions,
                halo_depth,
                &mut eco_cache,
            )
            .expect("warm eco delta run");
            eco_recomputed = report.recomputed().len();
            std::hint::black_box(report);
        });
        println!(
            "{:>28} {:>8} {:>10.2}ms {:>10.2}ms {:>8.2}x  (cold vs delta, {eco_recomputed}/{num_partitions} partitions recomputed)",
            "eco_delta", eco_n, eco_cold_ms, eco_warm_ms, eco_cold_ms / eco_warm_ms
        );
        assert!(
            eco_recomputed < num_partitions,
            "a one-edge delta recomputed every partition"
        );
        for wall_ms in [eco_cold_ms, eco_warm_ms] {
            records.push(BenchRecord {
                stage: "eco_delta".to_string(),
                n: eco_n,
                threads: 1,
                wall_ms,
            });
        }
    }

    // Resident-daemon answer latency: an in-process `cirstag serve` driven
    // by the load generator at full client concurrency, all tenants sharing
    // one artifact cache and one prepared design. The records capture the
    // p50/p99 of per-request answer latency (not a kernel wall time), and
    // the run doubles as a robustness check: every request must come back
    // with a typed response and the daemon must drain cleanly.
    let serve_requests = 1000;
    let serve_clients = 32;
    let serve_workers = all_cores.clamp(2, 8);
    let netlist_text = {
        use cirstag_circuit::{generate_circuit, write_netlist, CellLibrary, GeneratorConfig};
        let library = CellLibrary::standard();
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: 40,
                ..Default::default()
            },
            21,
        )
        .expect("generate bench netlist");
        write_netlist(&netlist, &library)
    };
    let server = cirstag_serve::Server::bind(&cirstag_serve::ServeConfig {
        workers: serve_workers,
        queue_capacity: 256,
        downgrade_high: 192,
        downgrade_low: 64,
        ..Default::default()
    })
    .expect("bind serve");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || {
        server.run(&mut std::io::sink()).expect("serve run");
    });
    let load = cirstag_serve::run_load(&cirstag_serve::LoadConfig {
        addr,
        requests: serve_requests,
        clients: serve_clients,
        netlist: netlist_text,
        epochs: 12,
        shutdown: true,
        ..Default::default()
    })
    .expect("load run");
    daemon.join().expect("serve thread");
    assert!(
        load.fully_answered(),
        "daemon dropped requests: {}",
        load.summary()
    );
    println!(
        "{:>28} {:>8} p50 {:>8.2}ms p99 {:>8.2}ms  ({} ok, {} shed, {} timeout; {} clients)",
        "serve_analyze",
        serve_requests,
        load.p50_ms,
        load.p99_ms,
        load.ok,
        load.shed,
        load.timeouts,
        serve_clients
    );
    for (stage, wall_ms) in [
        ("serve_analyze_p50", load.p50_ms),
        ("serve_analyze_p99", load.p99_ms),
    ] {
        records.push(BenchRecord {
            stage: stage.to_string(),
            n: serve_requests,
            threads: serve_workers,
            wall_ms,
        });
    }

    if gate {
        if !gate_against(&snapshot_path, &records) {
            eprintln!("\nbench gate: performance regression detected");
            std::process::exit(1);
        }
        println!("\nbench gate: all stages within budget");
    } else {
        let json = serde_json::to_string_pretty(&records).expect("serialize");
        std::fs::write(&snapshot_path, json).expect("write BENCH_parallel.json");
        println!("\nwrote {snapshot_path} ({} records)", records.len());
    }
}
