//! Regenerates Fig. 4 (ablation): the same distribution as Fig. 3 but with
//! the Phase-1 dimensionality reduction *skipped* — the raw circuit graph is
//! used as the input manifold. The paper finds the unstable/stable contrast
//! collapses; this binary quantifies the collapse as the ratio of unstable
//! to stable mean changes for both variants.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin fig4`

use cirstag::CirStagConfig;
use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_bench::report::render_histogram;

fn main() {
    let mut case = TimingCase::build(
        "syn_ctl300",
        &TimingCaseConfig {
            num_gates: 300,
            seed: 101,
            epochs: 260,
            hidden: 32,
        },
    )
    .expect("benchmark construction");
    eprintln!("[fig4] GNN R² = {:.4}", case.r2);

    let mut ratios = Vec::new();
    for (label, skip) in [
        ("with dim. reduction", false),
        ("WITHOUT dim. reduction", true),
    ] {
        let cfg = CirStagConfig {
            embedding_dim: 16,
            num_eigenpairs: 25,
            knn_k: 10,
            feature_weight: 0.0,
            skip_dimension_reduction: skip,
            ..Default::default()
        };
        let report = case.stability(cfg).expect("cirstag");
        let eligible = case.eligible();
        let unstable = cirstag::top_fraction(&report.node_scores, 0.10, Some(&eligible));
        let stable = cirstag::bottom_fraction(&report.node_scores, 0.10, Some(&eligible));
        let u = case
            .perturb_outcome(&unstable, 10.0)
            .expect("perturb unstable");
        let s = case.perturb_outcome(&stable, 10.0).expect("perturb stable");
        let hi = u
            .per_output
            .iter()
            .chain(&s.per_output)
            .fold(0.0f64, |a, &b| a.max(b))
            .max(1e-6);
        println!("\n=== {label} ===");
        println!(
            "{}",
            render_histogram("unstable nodes perturbed", &u.per_output, 0.0, hi, 12)
        );
        println!(
            "{}",
            render_histogram("stable nodes perturbed", &s.per_output, 0.0, hi, 12)
        );
        let ratio = u.mean() / s.mean().max(1e-12);
        println!(
            "summary: unstable mean {:.4} vs stable mean {:.4} → separation {:.2}x",
            u.mean(),
            s.mean(),
            ratio
        );
        ratios.push(ratio);
    }
    println!(
        "\nshape check: separation collapses without dimensionality reduction \
         ({:.2}x → {:.2}x): {}",
        ratios[0],
        ratios[1],
        if ratios[1] < ratios[0] {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
