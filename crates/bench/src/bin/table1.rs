//! Regenerates Table I: relative arrival-time prediction changes when
//! perturbing CirSTAG-ranked unstable vs stable pins.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin table1 [-- --quick]`
//! `--quick` runs the three smallest benchmarks only.

use cirstag::CirStagConfig;
use cirstag_bench::case_a::{table1_row, TimingCase, TimingCaseConfig};
use cirstag_bench::report::{pair_cell, render_table};
use cirstag_circuit::benchmark_suite;
use cirstag_embed::KnnMethod;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite = benchmark_suite();
    let specs: Vec<_> = if quick {
        suite.into_iter().take(3).collect()
    } else {
        suite
    };
    let fractions = [0.05, 0.10, 0.15];
    let scales = [5.0, 10.0];

    let mut headers: Vec<String> = vec!["benchmark".into(), "pins".into(), "R2".into()];
    for &s in &scales {
        for &f in &fractions {
            headers.push(format!("s{s:.0} p{:.0}% mean", f * 100.0));
            headers.push(format!("s{s:.0} p{:.0}% max", f * 100.0));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut scale_gains = Vec::new();
    for spec in &specs {
        eprintln!(
            "[table1] building {} ({} gates)…",
            spec.name, spec.num_gates
        );
        let mut case = TimingCase::build(
            spec.name,
            &TimingCaseConfig {
                num_gates: spec.num_gates,
                seed: spec.seed,
                epochs: 260,
                hidden: 32,
            },
        )
        .expect("benchmark construction");
        eprintln!("[table1]   GNN R² = {:.4}", case.r2);
        let n = case.timing.num_pins();
        let mut cirstag_cfg = CirStagConfig {
            embedding_dim: 16,
            num_eigenpairs: 25,
            knn_k: 10,
            feature_weight: 0.0,
            ..Default::default()
        };
        if n > 3000 {
            cirstag_cfg.knn.method = KnnMethod::RpForest {
                num_trees: 6,
                leaf_size: 48,
            };
        }
        let cells = table1_row(&mut case, cirstag_cfg, &fractions, &scales).expect("table row");
        let mut row = vec![
            spec.name.to_string(),
            n.to_string(),
            format!("{:.4}", case.r2),
        ];
        for cell in &cells {
            row.push(pair_cell(cell.unstable.mean(), cell.stable.mean()));
            row.push(pair_cell(cell.unstable.max(), cell.stable.max()));
            if cell.stable.mean() > 0.0 {
                ratios.push(cell.unstable.mean() / cell.stable.mean());
            }
        }
        // Scale-doubling factor at 10% perturbation: mean(10x) / mean(5x).
        let m5 = cells
            .iter()
            .find(|c| c.scale == 5.0 && (c.fraction - 0.10).abs() < 1e-9)
            .map(|c| c.unstable.mean());
        let m10 = cells
            .iter()
            .find(|c| c.scale == 10.0 && (c.fraction - 0.10).abs() < 1e-9)
            .map(|c| c.unstable.mean());
        if let (Some(a), Some(b)) = (m5, m10) {
            if a > 0.0 {
                scale_gains.push(b / a);
            }
        }
        rows.push(row);
    }

    println!("\nTable I reproduction — relative change of GNN arrival predictions");
    println!("(each cell: unstable/stable, perturbing that fraction of pins at that cap scale)\n");
    println!("{}", render_table(&header_refs, &rows));

    let gmean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
        }
    };
    println!("shape checks:");
    println!(
        "  geometric-mean unstable/stable separation: {:.1}x (paper: 2-3 orders of magnitude)",
        gmean(&ratios)
    );
    println!(
        "  mean 10x-vs-5x gain at 10% perturbation:   {:.2}x (paper: ~2x)",
        gmean(&scale_gains)
    );
}
