//! Ablation A2: sparsified PGM manifolds vs raw dense kNN manifolds in
//! Phase 2 — measures both ranking quality and Phase-2/3 runtime.
//!
//! Usage: `cargo run -p cirstag-bench --release --bin ablation_manifold`

use cirstag::CirStagConfig;
use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_bench::report::render_table;

fn main() {
    let mut case = TimingCase::build(
        "syn_dsp1k",
        &TimingCaseConfig {
            num_gates: 1200,
            seed: 103,
            epochs: 260,
            hidden: 32,
        },
    )
    .expect("benchmark construction");
    eprintln!("[ablation_manifold] GNN R² = {:.4}", case.r2);

    let mut rows = Vec::new();
    for (label, skip) in [("sparsified PGM", false), ("dense kNN", true)] {
        let cfg = CirStagConfig {
            embedding_dim: 16,
            num_eigenpairs: 25,
            knn_k: 10,
            feature_weight: 0.0,
            skip_manifold_sparsification: skip,
            ..Default::default()
        };
        let report = case.stability(cfg).expect("cirstag");
        let eligible = case.eligible();
        let unstable = cirstag::top_fraction(&report.node_scores, 0.10, Some(&eligible));
        let stable = cirstag::bottom_fraction(&report.node_scores, 0.10, Some(&eligible));
        let u = case.perturb_outcome(&unstable, 10.0).expect("perturb");
        let s = case.perturb_outcome(&stable, 10.0).expect("perturb");
        rows.push(vec![
            label.to_string(),
            format!("{}", report.input_manifold.num_edges()),
            format!("{}", report.output_manifold.num_edges()),
            format!("{:.2}s", report.timings.phase2.as_secs_f64()),
            format!("{:.2}s", report.timings.phase3.as_secs_f64()),
            format!("{:.2}x", u.mean() / s.mean().max(1e-12)),
        ]);
    }
    println!("\nAblation A2 — manifold sparsification\n");
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "G_X edges",
                "G_Y edges",
                "phase2",
                "phase3",
                "separation"
            ],
            &rows
        )
    );
    println!(
        "note: the PGM variant should preserve the unstable/stable separation with\n\
         fewer manifold edges (and correspondingly cheaper Phase-3 solves)."
    );
}
