//! Experiment harnesses reproducing the CirSTAG evaluation (Table I,
//! Table II, Figs. 3–5) plus ablations.
//!
//! The binaries under `src/bin/` drive these harnesses and print the same
//! rows/series the paper reports; `benches/` holds criterion micro- and
//! end-to-end benchmarks. See `DESIGN.md` (experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured) at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_a;
pub mod case_b;
pub mod report;
