//! Allocation discipline: once their workspaces are warm, the steady-state
//! solver iterations must perform zero heap allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator; each probe
//! warms a solver's scratch pool, snapshots the allocation counter, re-runs
//! the same solve into preallocated outputs, and asserts the counter did not
//! move. The whole check lives in one `#[test]` because the counter and the
//! worker-thread setting are process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use cirstag::{PartitionPlan, SpliceBuffers};
use cirstag_embed::{HnswIndex, HnswParams};
use cirstag_graph::Graph;
use cirstag_linalg::{par, DenseMatrix};
use cirstag_solver::{
    conjugate_gradient_block_into, conjugate_gradient_into, CgOptions, CgStats, CsrOperator,
    IdentityPreconditioner, SolverWorkspace,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn grid(side: usize) -> Graph {
    let n = side * side;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                edges.push((i, i + 1, 1.0));
            }
            if r + 1 < side {
                edges.push((i, i + side, 1.0 + (r % 2) as f64));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("grid builds")
}

#[test]
fn warm_solver_iterations_are_allocation_free() {
    // Serial execution: thread-pool dispatch owns its own queue allocations,
    // which are pool plumbing rather than kernel work.
    par::set_num_threads(1);

    let g = grid(12);
    let n = g.num_nodes();
    let lap = g.laplacian();
    let op = CsrOperator::new(&lap);
    let pre = IdentityPreconditioner;
    let options = CgOptions {
        tol: 1e-8,
        max_iter: 400,
    };
    let mut ws = SolverWorkspace::new();

    // ---- scalar CG: conjugate_gradient_into -------------------------------
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    let mut x = vec![0.0; n];
    // Warm the pool, then assert the steady-state resolve allocates nothing.
    let warm = conjugate_gradient_into(&op, &b, &pre, options, &mut x, &mut ws).expect("warm cg");
    assert!(warm.converged, "warm-up solve must converge");
    let misses = ws.misses();
    let before = allocations();
    let stats = conjugate_gradient_into(&op, &b, &pre, options, &mut x, &mut ws).expect("hot cg");
    let after = allocations();
    assert!(stats.converged);
    assert_eq!(ws.misses(), misses, "warm workspace must not miss");
    assert_eq!(
        after - before,
        0,
        "warm conjugate_gradient_into allocated {} times",
        after - before
    );

    // ---- block CG: conjugate_gradient_block_into --------------------------
    let k = 8;
    let mut panel_b = DenseMatrix::zeros(n, k);
    for j in 0..k {
        panel_b.set(j, j, 1.0);
        panel_b.set(n - 1 - j, j, -1.0);
    }
    let mut panel_x = DenseMatrix::zeros(n, k);
    let mut stats: Vec<CgStats> = Vec::with_capacity(k);
    conjugate_gradient_block_into(
        &op,
        &panel_b,
        &pre,
        options,
        &mut panel_x,
        &mut stats,
        &mut ws,
    )
    .expect("warm block cg");
    assert!(stats.iter().all(|s| s.converged));
    let misses = ws.misses();
    stats.clear();
    let before = allocations();
    conjugate_gradient_block_into(
        &op,
        &panel_b,
        &pre,
        options,
        &mut panel_x,
        &mut stats,
        &mut ws,
    )
    .expect("hot block cg");
    let after = allocations();
    assert!(stats.iter().all(|s| s.converged));
    assert_eq!(ws.misses(), misses, "warm workspace must not miss");
    assert_eq!(
        after - before,
        0,
        "warm conjugate_gradient_block_into allocated {} times",
        after - before
    );

    // ---- HNSW search: HnswIndex::knn_into ---------------------------------
    // One warm pass over every query grows the scratch arena (visited marks,
    // both heaps) and the output vectors to their high-water marks; replaying
    // the same queries must then be allocation-free.
    let points = {
        let mut data = Vec::with_capacity(400 * 4);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..400 * 4 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.push((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
        }
        DenseMatrix::from_vec(400, 4, data).expect("points")
    };
    let params = HnswParams {
        m: 8,
        ef_construction: 48,
        ef_search: 32,
    };
    let index = HnswIndex::build(&points, &params, 7).expect("hnsw build");
    let mut scratch = index.scratch();
    let mut outs: Vec<Vec<(usize, f64)>> = (0..400).map(|_| Vec::with_capacity(16)).collect();
    for (q, out) in outs.iter_mut().enumerate() {
        index.knn_into(&points, q, 8, params.ef_search, &mut scratch, out);
    }
    let before = allocations();
    for (q, out) in outs.iter_mut().enumerate() {
        index.knn_into(&points, q, 8, params.ef_search, &mut scratch, out);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm HnswIndex::knn_into allocated {} times",
        after - before
    );

    // ---- ECO splice: SpliceBuffers::reset/splice/finish -------------------
    // The delta path reuses one splice arena across edits; after the first
    // (warming) cycle grows the score and edge vectors to their high-water
    // marks, a full reset → splice-every-partition → finish cycle of the
    // same design must not touch the heap.
    let eco = grid(16);
    let eco_n = eco.num_nodes();
    let assignment: Vec<u32> = (0..eco_n)
        .map(|i| {
            let (r, c) = (i / 16, i % 16);
            (u32::from(r >= 8) << 1) | u32::from(c >= 8)
        })
        .collect();
    let emb = {
        let mut data = Vec::with_capacity(eco_n * 4);
        for i in 0..eco_n * 4 {
            data.push((i as f64 * 0.37).sin());
        }
        DenseMatrix::from_vec(eco_n, 4, data).expect("embedding")
    };
    let plan = PartitionPlan::build(&eco, None, &emb, &assignment, 4, 1).expect("partition plan");
    // Synthetic per-partition sub-results, built outside the probe window.
    type SubResult = (Vec<f64>, Vec<(usize, usize, f64)>);
    let subresults: Vec<SubResult> = plan
        .views
        .iter()
        .map(|v| {
            let scores: Vec<f64> = (0..v.nodes.len()).map(|i| i as f64 * 0.5).collect();
            let edges: Vec<(usize, usize, f64)> = v
                .subgraph
                .edges()
                .iter()
                .map(|e| (e.u, e.v, e.weight * 0.25))
                .collect();
            (scores, edges)
        })
        .collect();
    let mut buffers = SpliceBuffers::new();
    buffers.reset(eco_n);
    for (v, (s, e)) in plan.views.iter().zip(&subresults) {
        buffers.splice(v, s, e);
    }
    buffers.finish();
    let before = allocations();
    buffers.reset(eco_n);
    for (v, (s, e)) in plan.views.iter().zip(&subresults) {
        buffers.splice(v, s, e);
    }
    buffers.finish();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm SpliceBuffers delta cycle allocated {} times",
        after - before
    );
}
