//! End-to-end criterion benchmark of the CirSTAG pipeline (Algorithm 1) on
//! synthetic circuit graphs of increasing size — the criterion companion to
//! the Fig. 5 runtime study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cirstag::{CirStag, CirStagConfig};
use cirstag_circuit::{
    extract_features, generate_circuit, CellLibrary, FeatureConfig, GeneratorConfig, TimingGraph,
};
use cirstag_gnn::{Activation, GnnModel, GraphContext, LayerSpec};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;

struct Prepared {
    graph: Graph,
    features: DenseMatrix,
    embedding: DenseMatrix,
}

fn prepare(num_gates: usize, seed: u64) -> Prepared {
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates,
            ..Default::default()
        },
        seed,
    )
    .expect("generate");
    let timing = TimingGraph::new(&netlist, &library).expect("timing");
    let graph = timing.to_undirected_graph().expect("graph");
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(&graph, &arcs).expect("ctx");
    let features = extract_features(
        &timing,
        &netlist,
        &library,
        &timing.pin_caps(),
        &FeatureConfig::default(),
    )
    .expect("features");
    let mut model = GnnModel::new(
        features.ncols(),
        &[
            LayerSpec::Linear {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::DagProp {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 16,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        seed,
    )
    .expect("model");
    let embedding = model.embeddings(&ctx, &features).expect("embedding");
    Prepared {
        graph,
        features,
        embedding,
    }
}

fn bench_cirstag_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("cirstag_pipeline");
    group.sample_size(10);
    for gates in [150usize, 400] {
        let prepared = prepare(gates, 11);
        let config = CirStagConfig {
            embedding_dim: 12,
            knn_k: 8,
            num_eigenpairs: 10,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(prepared.graph.num_nodes()),
            &gates,
            |b, _| {
                b.iter(|| {
                    CirStag::new(config)
                        .analyze(
                            black_box(&prepared.graph),
                            Some(&prepared.features),
                            &prepared.embedding,
                        )
                        .expect("analyze")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cirstag_end_to_end);
criterion_main!(benches);
