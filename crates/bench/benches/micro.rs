//! Criterion micro-benchmarks for the numerical substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cirstag_circuit::{generate_circuit, CellLibrary, GeneratorConfig, StaEngine, TimingGraph};
use cirstag_embed::{knn_graph, spectral_embedding, KnnConfig, KnnMethod, SpectralConfig};
use cirstag_gnn::{Activation, GnnModel, GraphContext, LayerSpec};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use cirstag_pgm::{learn_manifold, PgmConfig};
use cirstag_solver::{
    lanczos_largest, CgOptions, CsrOperator, LaplacianSolver, ResistanceEstimator,
};

fn grid(side: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 0..side {
        for j in 0..side {
            let id = i * side + j;
            if j + 1 < side {
                edges.push((id, id + 1, 1.0 + ((id * 7) % 5) as f64));
            }
            if i + 1 < side {
                edges.push((id, id + side, 1.0));
            }
        }
    }
    Graph::from_edges(side * side, &edges).expect("grid")
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(30);
    for side in [32usize, 64] {
        let g = grid(side);
        let lap = g.laplacian();
        let x: Vec<f64> = (0..lap.nrows()).map(|i| (i % 13) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, _| {
            let mut y = vec![0.0; lap.nrows()];
            b.iter(|| lap.mul_vec_into(black_box(&x), &mut y));
        });
    }
    group.finish();
}

fn bench_laplacian_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplacian_solve");
    group.sample_size(10);
    let g = grid(48);
    let n = g.num_nodes();
    let mut b_vec: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
    cirstag_linalg::vecops::center(&mut b_vec);
    let opts = CgOptions {
        tol: 1e-8,
        max_iter: 5000,
    };
    let jacobi = LaplacianSolver::with_options(&g, opts).expect("jacobi solver");
    group.bench_function("jacobi_pcg", |b| {
        b.iter(|| jacobi.solve(black_box(&b_vec)).expect("solve"))
    });
    let tree = LaplacianSolver::with_tree_preconditioner(&g, opts).expect("tree solver");
    group.bench_function("tree_pcg", |b| {
        b.iter(|| tree.solve(black_box(&b_vec)).expect("solve"))
    });
    group.finish();
}

fn bench_eigensolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos");
    group.sample_size(10);
    let g = grid(40);
    let lap = g.laplacian();
    group.bench_function("largest8_grid1600", |b| {
        b.iter(|| {
            let op = CsrOperator::new(&lap);
            lanczos_largest(&op, 8, 120, 1e-8, 1).expect("lanczos")
        })
    });
    group.bench_function("spectral_embedding_m8", |b| {
        b.iter(|| spectral_embedding(&g, 8, &SpectralConfig::default()).expect("embedding"))
    });
    group.finish();
}

fn bench_resistance(c: &mut Criterion) {
    let mut group = c.benchmark_group("effective_resistance");
    group.sample_size(10);
    let g = grid(32);
    group.bench_function("sketch_build_48probes", |b| {
        b.iter(|| ResistanceEstimator::sketched(black_box(&g), 48, 3).expect("sketch"))
    });
    let est = ResistanceEstimator::sketched(&g, 48, 3).expect("sketch");
    group.bench_function("sketch_query", |b| {
        b.iter(|| est.query(black_box(10), black_box(900)).expect("query"))
    });
    group.finish();
}

fn bench_knn_and_pgm(c: &mut Criterion) {
    let mut group = c.benchmark_group("manifold");
    group.sample_size(10);
    let g = grid(40);
    let u = spectral_embedding(&g, 8, &SpectralConfig::default()).expect("embedding");
    group.bench_function("knn_exact_1600", |b| {
        b.iter(|| knn_graph(black_box(&u), 8, &KnnConfig::default()).expect("knn"))
    });
    let approx = KnnConfig {
        method: KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        },
        ..KnnConfig::default()
    };
    group.bench_function("knn_rpforest_1600", |b| {
        b.iter(|| knn_graph(black_box(&u), 8, &approx).expect("knn"))
    });
    let dense = knn_graph(&u, 8, &KnnConfig::default()).expect("knn");
    group.bench_function("pgm_sparsify_1600", |b| {
        b.iter(|| learn_manifold(black_box(&dense), &PgmConfig::default()).expect("pgm"))
    });
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    let library = CellLibrary::standard();
    for gates in [500usize, 2000] {
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: gates,
                ..Default::default()
            },
            1,
        )
        .expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing");
        group.bench_with_input(BenchmarkId::from_parameter(gates), &gates, |b, _| {
            b.iter(|| StaEngine::new(black_box(&timing)))
        });
        // Incremental retime after a single-pin change.
        let base = StaEngine::new(&timing);
        let mut caps = timing.pin_caps();
        let victim = timing.num_pins() / 2;
        caps[victim] *= 5.0;
        group.bench_with_input(BenchmarkId::new("retime_1pin", gates), &gates, |b, _| {
            b.iter(|| base.retime_with_caps(black_box(&timing), &caps))
        });
    }
    group.finish();
}

fn bench_gnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn");
    group.sample_size(10);
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates: 500,
            ..Default::default()
        },
        2,
    )
    .expect("generate");
    let timing = TimingGraph::new(&netlist, &library).expect("timing");
    let graph = timing.to_undirected_graph().expect("graph");
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(&graph, &arcs).expect("ctx");
    let n = graph.num_nodes();
    let x = DenseMatrix::from_rows(
        &(0..n)
            .map(|i| vec![(i % 7) as f64 * 0.1, (i % 3) as f64])
            .collect::<Vec<_>>(),
    )
    .expect("features");
    let mut gcn = GnnModel::new(
        2,
        &[
            LayerSpec::Gcn {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        1,
    )
    .expect("model");
    group.bench_function("gcn32_forward", |b| {
        b.iter(|| gcn.forward(&ctx, black_box(&x), false).expect("forward"))
    });
    let mut dag = GnnModel::new(
        2,
        &[
            LayerSpec::DagProp {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        1,
    )
    .expect("model");
    group.bench_function("dagprop32_forward", |b| {
        b.iter(|| dag.forward(&ctx, black_box(&x), false).expect("forward"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_laplacian_solve,
    bench_eigensolver,
    bench_resistance,
    bench_knn_and_pgm,
    bench_sta,
    bench_gnn
);
criterion_main!(benches);
