//! Criterion micro-benchmarks for the numerical substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cirstag_circuit::{generate_circuit, CellLibrary, GeneratorConfig, StaEngine, TimingGraph};
use cirstag_embed::{knn_graph, spectral_embedding, KnnConfig, KnnMethod, SpectralConfig};
use cirstag_gnn::{Activation, GnnModel, GraphContext, LayerSpec};
use cirstag_graph::Graph;
use cirstag_linalg::{par, DenseMatrix};
use cirstag_pgm::{learn_manifold, PgmConfig};
use cirstag_solver::{
    lanczos_largest, CgOptions, CsrOperator, LaplacianSolver, ResistanceEstimator,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn grid(side: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 0..side {
        for j in 0..side {
            let id = i * side + j;
            if j + 1 < side {
                edges.push((id, id + 1, 1.0 + ((id * 7) % 5) as f64));
            }
            if i + 1 < side {
                edges.push((id, id + side, 1.0));
            }
        }
    }
    Graph::from_edges(side * side, &edges).expect("grid")
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(30);
    for side in [32usize, 64] {
        let g = grid(side);
        let lap = g.laplacian();
        let x: Vec<f64> = (0..lap.nrows()).map(|i| (i % 13) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, _| {
            let mut y = vec![0.0; lap.nrows()];
            b.iter(|| lap.mul_vec_into(black_box(&x), &mut y));
        });
    }
    group.finish();
}

fn bench_laplacian_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplacian_solve");
    group.sample_size(10);
    let g = grid(48);
    let n = g.num_nodes();
    let mut b_vec: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
    cirstag_linalg::vecops::center(&mut b_vec);
    let opts = CgOptions {
        tol: 1e-8,
        max_iter: 5000,
    };
    let jacobi = LaplacianSolver::with_options(&g, opts).expect("jacobi solver");
    group.bench_function("jacobi_pcg", |b| {
        b.iter(|| jacobi.solve(black_box(&b_vec)).expect("solve"))
    });
    let tree = LaplacianSolver::with_tree_preconditioner(&g, opts).expect("tree solver");
    group.bench_function("tree_pcg", |b| {
        b.iter(|| tree.solve(black_box(&b_vec)).expect("solve"))
    });
    group.finish();
}

fn bench_eigensolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos");
    group.sample_size(10);
    let g = grid(40);
    let lap = g.laplacian();
    group.bench_function("largest8_grid1600", |b| {
        b.iter(|| {
            let op = CsrOperator::new(&lap);
            lanczos_largest(&op, 8, 120, 1e-8, 1).expect("lanczos")
        })
    });
    group.bench_function("spectral_embedding_m8", |b| {
        b.iter(|| spectral_embedding(&g, 8, &SpectralConfig::default()).expect("embedding"))
    });
    group.finish();
}

fn bench_resistance(c: &mut Criterion) {
    let mut group = c.benchmark_group("effective_resistance");
    group.sample_size(10);
    let g = grid(32);
    group.bench_function("sketch_build_48probes", |b| {
        b.iter(|| ResistanceEstimator::sketched(black_box(&g), 48, 3).expect("sketch"))
    });
    let est = ResistanceEstimator::sketched(&g, 48, 3).expect("sketch");
    group.bench_function("sketch_query", |b| {
        b.iter(|| est.query(black_box(10), black_box(900)).expect("query"))
    });
    group.finish();
}

fn bench_knn_and_pgm(c: &mut Criterion) {
    let mut group = c.benchmark_group("manifold");
    group.sample_size(10);
    let g = grid(40);
    let u = spectral_embedding(&g, 8, &SpectralConfig::default()).expect("embedding");
    group.bench_function("knn_exact_1600", |b| {
        b.iter(|| knn_graph(black_box(&u), 8, &KnnConfig::default()).expect("knn"))
    });
    let approx = KnnConfig {
        method: KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        },
        ..KnnConfig::default()
    };
    group.bench_function("knn_rpforest_1600", |b| {
        b.iter(|| knn_graph(black_box(&u), 8, &approx).expect("knn"))
    });
    let dense = knn_graph(&u, 8, &KnnConfig::default()).expect("knn");
    group.bench_function("pgm_sparsify_1600", |b| {
        b.iter(|| learn_manifold(black_box(&dense), &PgmConfig::default()).expect("pgm"))
    });
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    let library = CellLibrary::standard();
    for gates in [500usize, 2000] {
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: gates,
                ..Default::default()
            },
            1,
        )
        .expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing");
        group.bench_with_input(BenchmarkId::from_parameter(gates), &gates, |b, _| {
            b.iter(|| StaEngine::new(black_box(&timing)))
        });
        // Incremental retime after a single-pin change.
        let base = StaEngine::new(&timing);
        let mut caps = timing.pin_caps();
        let victim = timing.num_pins() / 2;
        caps[victim] *= 5.0;
        group.bench_with_input(BenchmarkId::new("retime_1pin", gates), &gates, |b, _| {
            b.iter(|| base.retime_with_caps(black_box(&timing), &caps))
        });
    }
    group.finish();
}

fn bench_gnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn");
    group.sample_size(10);
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates: 500,
            ..Default::default()
        },
        2,
    )
    .expect("generate");
    let timing = TimingGraph::new(&netlist, &library).expect("timing");
    let graph = timing.to_undirected_graph().expect("graph");
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(&graph, &arcs).expect("ctx");
    let n = graph.num_nodes();
    let x = DenseMatrix::from_rows(
        &(0..n)
            .map(|i| vec![(i % 7) as f64 * 0.1, (i % 3) as f64])
            .collect::<Vec<_>>(),
    )
    .expect("features");
    let mut gcn = GnnModel::new(
        2,
        &[
            LayerSpec::Gcn {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        1,
    )
    .expect("model");
    group.bench_function("gcn32_forward", |b| {
        b.iter(|| gcn.forward(&ctx, black_box(&x), false).expect("forward"))
    });
    let mut dag = GnnModel::new(
        2,
        &[
            LayerSpec::DagProp {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        1,
    )
    .expect("model");
    group.bench_function("dagprop32_forward", |b| {
        b.iter(|| dag.forward(&ctx, black_box(&x), false).expect("forward"))
    });
    group.finish();
}

fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-1.0f64..1.0))
        .collect();
    DenseMatrix::from_vec(rows, cols, data).expect("sized")
}

/// Serial-vs-parallel pairs for the four kernels the parallel layer covers:
/// dense matmul, exact kNN construction, sketched-resistance builds and DMD
/// edge scoring. Each pair pins the pool to one thread, then releases it to
/// all cores; on multi-core hosts the gap is the speedup, on one core the
/// gap is the (small) fan-out overhead.
fn bench_parallel_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let pairs: [(&str, usize); 2] = [("serial", 1), ("parallel", 0)];

    for size in [256usize, 512, 1024] {
        let a = random_dense(size, size, 11);
        let m = random_dense(size, size, 12);
        for (label, threads) in pairs {
            par::set_num_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("matmul_{label}"), size),
                &size,
                |b, _| b.iter(|| a.matmul(black_box(&m)).expect("matmul")),
            );
        }
    }

    let u = random_dense(1600, 8, 13);
    for (label, threads) in pairs {
        par::set_num_threads(threads);
        group.bench_function(BenchmarkId::new("knn_exact_1600", label), |b| {
            b.iter(|| knn_graph(black_box(&u), 8, &KnnConfig::default()).expect("knn"))
        });
    }

    let g32 = grid(32);
    for (label, threads) in pairs {
        par::set_num_threads(threads);
        group.bench_function(BenchmarkId::new("resistance_sketch_64probes", label), |b| {
            b.iter(|| ResistanceEstimator::sketched(black_box(&g32), 64, 3).expect("sketch"))
        });
    }

    // Standalone replica of the Phase-3 DMD edge-scoring kernel (Eq. 9
    // numerator terms over the input-manifold edges).
    let g64 = grid(64);
    let dmd_edges = g64.edges();
    let s = 16;
    let vs = random_dense(g64.num_nodes(), s, 14);
    let zetas: Vec<f64> = (0..s).map(|i| 1.0 / (1.0 + i as f64)).collect();
    for (label, threads) in pairs {
        par::set_num_threads(threads);
        group.bench_function(BenchmarkId::new("dmd_edge_scores_8k", label), |b| {
            b.iter(|| {
                par::map_indexed(dmd_edges.len(), |eid| {
                    let e = &dmd_edges[eid];
                    let mut score = 0.0;
                    for (i, &z) in zetas.iter().enumerate() {
                        let d = vs.get(e.u, i) - vs.get(e.v, i);
                        score += z * d * d;
                    }
                    (e.u, e.v, score)
                })
            })
        });
    }

    par::set_num_threads(0);
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_laplacian_solve,
    bench_eigensolver,
    bench_resistance,
    bench_knn_and_pgm,
    bench_sta,
    bench_gnn,
    bench_parallel_kernels
);
criterion_main!(benches);
