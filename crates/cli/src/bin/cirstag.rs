//! The `cirstag` command-line tool (thin shim over `cirstag_cli`).
//!
//! Exit codes: `0` — completed cleanly; `2` — analysis completed but was
//! degraded by fallback ladders (`--best-effort`); `1` — hard error
//! (bad arguments, I/O failure, or a stage failure under `--strict`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cirstag_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match cirstag_cli::run(&command, &mut stdout) {
        Ok(status) => ExitCode::from(cirstag_cli::exit_code(status)),
        // A closed stdout (`cirstag sta … | head`) is normal Unix pipeline
        // behavior, not an error.
        Err(e) if e.message.contains("Broken pipe") => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
