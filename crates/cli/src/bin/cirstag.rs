//! The `cirstag` command-line tool (thin shim over `cirstag_cli`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cirstag_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match cirstag_cli::run(&command, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        // A closed stdout (`cirstag sta … | head`) is normal Unix pipeline
        // behavior, not an error.
        Err(e) if e.message.contains("Broken pipe") => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
