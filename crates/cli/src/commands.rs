//! Subcommand implementations.

use crate::args::{KnnChoice, USAGE};
use crate::{CliError, Command};
use cirstag::{
    analyze_partitioned_cached, analyze_partitioned_cold, analyze_sweep, ArtifactCache, CirStag,
    CirStagConfig, EcoReportExport, FailurePolicy, PartitionedReport, ReportExport,
};
use cirstag_circuit::{
    apply_delta, extract_features, generate_circuit, parse_netlist, partition_graph, write_netlist,
    CellLibrary, FeatureConfig, GeneratorConfig, Netlist, NetlistDelta, PartitionConfig, PinRole,
    StaEngine, TimingGraph,
};
use cirstag_embed::KnnMethod;
use cirstag_gnn::{r2_score, Activation, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_graph::{heat_colors, to_dot, DotOptions, Graph};
use cirstag_linalg::DenseMatrix;

/// Outcome of a successfully completed command, used to pick the process
/// exit code: `0` for [`RunStatus::Clean`], `2` for [`RunStatus::Degraded`]
/// (errors exit `1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The command completed with no fallback degradation.
    Clean,
    /// An analysis completed under the best-effort policy, but one or more
    /// fallback rungs fired; the scores are usable but approximate.
    Degraded,
}

/// Runs a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on I/O, parse or analysis failures; the message is
/// meant for direct display.
pub fn run(command: &Command, out: &mut dyn std::io::Write) -> Result<RunStatus, CliError> {
    match command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(RunStatus::Clean)
        }
        Command::Generate {
            gates,
            seed,
            out: path,
        } => generate(*gates, *seed, path, out).map(|()| RunStatus::Clean),
        Command::Sta { netlist } => sta(netlist, out).map(|()| RunStatus::Clean),
        Command::Analyze {
            netlist,
            out: report_path,
            epochs,
            top,
            threads,
            best_effort,
            cache_dir,
            knn,
            partitions,
        } => analyze(
            netlist,
            report_path.as_deref(),
            *epochs,
            *top,
            *threads,
            *best_effort,
            cache_dir.as_deref(),
            *knn,
            *partitions,
            out,
        ),
        Command::Diff {
            workspace,
            edited,
            delta,
            out: report_path,
            threads,
            best_effort,
            cold,
        } => diff(
            workspace,
            edited.as_deref(),
            delta.as_deref(),
            report_path.as_deref(),
            *threads,
            *best_effort,
            *cold,
            out,
        ),
        Command::Sweep {
            netlist,
            dmd_s,
            out: report_path,
            epochs,
            threads,
            best_effort,
            cache_dir,
            knn,
        } => sweep(
            netlist,
            dmd_s,
            report_path.as_deref(),
            *epochs,
            *threads,
            *best_effort,
            cache_dir.as_deref(),
            *knn,
            out,
        ),
        Command::Dot { netlist, scores } => {
            dot(netlist, scores.as_deref(), out).map(|()| RunStatus::Clean)
        }
        Command::Serve {
            addr,
            workers,
            queue,
            deadline_ms,
            best_effort,
            cache_dir,
            port_file,
        } => serve(
            addr,
            *workers,
            *queue,
            *deadline_ms,
            *best_effort,
            cache_dir.as_deref(),
            port_file.as_deref(),
            out,
        ),
        Command::Load {
            netlist,
            addr,
            requests,
            clients,
            epochs,
            deadline_ms,
            best_effort,
            shutdown,
        } => drive_load(
            netlist,
            addr,
            *requests,
            *clients,
            *epochs,
            *deadline_ms,
            *best_effort,
            *shutdown,
            out,
        ),
    }
}

fn load(path: &str) -> Result<(CellLibrary, Netlist), CliError> {
    let library = CellLibrary::standard();
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    let netlist = parse_netlist(&text, &library)?;
    Ok((library, netlist))
}

fn generate(
    gates: usize,
    seed: u64,
    path: &str,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates: gates,
            ..Default::default()
        },
        seed,
    )?;
    std::fs::write(path, write_netlist(&netlist, &library))
        .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
    writeln!(
        out,
        "wrote {path}: {} gates, {} nets, {} primary inputs, {} primary outputs",
        netlist.num_cells(),
        netlist.num_nets(),
        netlist.primary_inputs.len(),
        netlist.primary_outputs.len()
    )?;
    Ok(())
}

fn sta(path: &str, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let engine = StaEngine::new(&timing);
    writeln!(
        out,
        "design {}: {} pins, {} arcs",
        netlist.name,
        timing.num_pins(),
        timing.num_arcs()
    )?;
    writeln!(out, "critical arrival: {:.4} ns", engine.critical_arrival())?;
    // Worst five endpoints.
    let mut pos: Vec<usize> = timing.po_pins().to_vec();
    pos.sort_by(|&a, &b| {
        engine
            .arrival(b)
            .partial_cmp(&engine.arrival(a))
            .expect("finite arrivals")
    });
    writeln!(out, "worst endpoints:")?;
    for &po in pos.iter().take(5) {
        let net = timing.pin(po).net;
        writeln!(
            out,
            "  {:<16} arrival {:.4} ns",
            netlist.nets[net].name,
            engine.arrival(po)
        )?;
    }
    Ok(())
}

/// Trains the timing GNN on the pin graph and returns the node features and
/// the model's node embeddings (the pipeline's output-side data).
fn train_gnn(
    timing: &TimingGraph,
    netlist: &Netlist,
    library: &CellLibrary,
    graph: &Graph,
    epochs: usize,
    out: &mut dyn std::io::Write,
) -> Result<(DenseMatrix, DenseMatrix), CliError> {
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(graph, &arcs)?;
    let features = extract_features(
        timing,
        netlist,
        library,
        &timing.pin_caps(),
        &FeatureConfig::default(),
    )?;
    let engine = StaEngine::new(timing);
    let critical = engine.critical_arrival().max(1e-12);
    let targets = DenseMatrix::from_rows(
        &engine
            .arrival_times()
            .iter()
            .map(|&a| vec![a / critical])
            .collect::<Vec<_>>(),
    )?;
    writeln!(
        out,
        "training timing GNN ({epochs} epochs) on {} pins…",
        timing.num_pins()
    )?;
    let mut model = GnnModel::new(
        features.ncols(),
        &[
            LayerSpec::Linear {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::DagProp {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 16,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        0xC11,
    )?;
    model.fit_regression(
        &ctx,
        &features,
        &targets,
        None,
        &TrainConfig {
            epochs,
            learning_rate: 8e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            ..TrainConfig::default()
        },
    )?;
    let pred = model.forward(&ctx, &features, false)?;
    writeln!(out, "GNN R² = {:.4}", r2_score(&pred, &targets))?;
    let embedding = model.embeddings(&ctx, &features)?;
    Ok((features, embedding))
}

/// The CLI's pipeline configuration for a given design size and policy.
fn base_config(graph: &Graph, threads: usize, best_effort: bool, knn: KnnChoice) -> CirStagConfig {
    let mut config = CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        num_threads: threads,
        policy: if best_effort {
            FailurePolicy::BestEffort
        } else {
            FailurePolicy::Strict
        },
        ..Default::default()
    };
    config.knn.method = match knn {
        KnnChoice::Exact => KnnMethod::Exact,
        KnnChoice::RpForest => KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        },
        KnnChoice::Hnsw => KnnMethod::hnsw_default(),
        // Size heuristic: exhaustive search is cheap below a few thousand
        // pins; larger designs default to the rp-forest backend.
        KnnChoice::Auto if graph.num_nodes() > 3000 => KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        },
        KnnChoice::Auto => KnnMethod::Exact,
    };
    config
}

#[allow(clippy::too_many_arguments)]
fn analyze(
    path: &str,
    report_path: Option<&str>,
    epochs: usize,
    top: f64,
    threads: usize,
    best_effort: bool,
    cache_dir: Option<&str>,
    knn: KnnChoice,
    partitions: Option<usize>,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    if let Some(num_partitions) = partitions {
        let workspace = cache_dir.ok_or_else(|| {
            CliError::new(
                "--partitions needs --cache-dir DIR: the directory becomes the \
                 ECO workspace that `cirstag diff` replays",
            )
        })?;
        let pconfig = PartitionConfig {
            num_partitions,
            ..PartitionConfig::default()
        };
        pconfig.validate(graph.num_nodes())?;
        let (features, embedding) = train_gnn(&timing, &netlist, &library, &graph, epochs, out)?;
        let config = base_config(&graph, threads, best_effort, knn);
        let partitioning = partition_graph(&graph, &pconfig)?;
        let mut cache = ArtifactCache::new().with_disk_dir(workspace);
        let report = analyze_partitioned_cached(
            &config,
            &graph,
            Some(&features),
            &embedding,
            &partitioning.assignment,
            partitioning.num_partitions,
            partitioning.halo_depth,
            &mut cache,
        )?;
        writeln!(
            out,
            "partitioned into {} regions (halo depth {}), root {}",
            report.num_partitions,
            report.halo_depth,
            report.root.hex()
        )?;
        write_partition_table(&report, out)?;
        let manifest = EcoManifest {
            schema: ECO_MANIFEST_SCHEMA.to_string(),
            num_partitions: partitioning.num_partitions,
            halo_depth: partitioning.halo_depth,
            seed: partitioning.seed,
            epochs,
            knn: knn.token().to_string(),
            best_effort,
            assignment: partitioning
                .assignment
                .iter()
                .map(|&p| p as usize)
                .collect(),
            netlist: write_netlist(&netlist, &library),
            feature_cols: features.ncols(),
            features: features.as_slice().to_vec(),
            embedding_cols: embedding.ncols(),
            embedding: embedding.as_slice().to_vec(),
        };
        let manifest_path = std::path::Path::new(workspace).join(ECO_MANIFEST_FILE);
        std::fs::write(&manifest_path, manifest.to_json()?)
            .map_err(|e| CliError::new(format!("cannot write {}: {e}", manifest_path.display())))?;
        writeln!(out, "eco workspace written to {workspace}")?;
        write_unstable_pins(&timing, &netlist, &report.node_scores, top, out)?;
        if let Some(rp) = report_path {
            std::fs::write(rp, EcoReportExport::from_report(&report).to_json()?)
                .map_err(|e| CliError::new(format!("cannot write {rp}: {e}")))?;
            writeln!(out, "\neco report written to {rp}")?;
        }
        return if report.degraded {
            writeln!(out, "\nanalysis completed DEGRADED (see partition table)")?;
            Ok(RunStatus::Degraded)
        } else {
            Ok(RunStatus::Clean)
        };
    }
    let (features, embedding) = train_gnn(&timing, &netlist, &library, &graph, epochs, out)?;
    let config = base_config(&graph, threads, best_effort, knn);
    let report = match cache_dir {
        None => CirStag::new(config).analyze(&graph, Some(&features), &embedding)?,
        Some(dir) => {
            let mut cache = ArtifactCache::new().with_disk_dir(dir);
            CirStag::new(config).analyze_cached(&graph, Some(&features), &embedding, &mut cache)?
        }
    };
    writeln!(out, "stage timings: {}", report.timings.summary())?;
    if report.degraded || !report.diagnostics.is_empty() {
        writeln!(out, "run diagnostics: {}", report.diagnostics.summary())?;
        for w in &report.diagnostics.warnings {
            writeln!(out, "  warning: {w}")?;
        }
    }
    write_unstable_pins(&timing, &netlist, &report.node_scores, top, out)?;
    if let Some(rp) = report_path {
        std::fs::write(rp, report.to_json()?)
            .map_err(|e| CliError::new(format!("cannot write {rp}: {e}")))?;
        writeln!(out, "\nfull report written to {rp}")?;
    }
    if report.degraded {
        writeln!(out, "\nanalysis completed DEGRADED (see diagnostics above)")?;
        Ok(RunStatus::Degraded)
    } else {
        Ok(RunStatus::Clean)
    }
}

/// Lists the `top` fraction of unstable pins (capacitive, non-output) with
/// their driving nets.
fn write_unstable_pins(
    timing: &TimingGraph,
    netlist: &Netlist,
    node_scores: &[f64],
    top: f64,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let eligible: Vec<bool> = (0..timing.num_pins())
        .map(|p| timing.pin(p).capacitance > 0.0 && timing.pin(p).role != PinRole::PrimaryOutput)
        .collect();
    let unstable = cirstag::top_fraction(node_scores, top, Some(&eligible));
    writeln!(
        out,
        "\nmost unstable {:.0}% of pins ({} pins):",
        top * 100.0,
        unstable.len()
    )?;
    for &p in unstable.iter().take(15) {
        let info = timing.pin(p);
        writeln!(
            out,
            "  pin {:<7} net {:<16} score {:.4e}",
            p, netlist.nets[info.net].name, node_scores[p]
        )?;
    }
    if unstable.len() > 15 {
        writeln!(out, "  … ({} more)", unstable.len() - 15)?;
    }
    Ok(())
}

/// Per-partition recompute table for partitioned runs: which regions
/// replayed from the segmented cache and which were recomputed.
fn write_partition_table(
    report: &PartitionedReport,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    writeln!(out, "  part  owned   halo   hits  miss  wall")?;
    for r in &report.partitions {
        writeln!(
            out,
            "  {:<5} {:<7} {:<6} {:<5} {:<5} {:.1} ms{}",
            r.id,
            r.owned,
            r.halo,
            r.cache_hits,
            r.cache_misses,
            r.wall.as_secs_f64() * 1e3,
            if r.degraded { "  [degraded]" } else { "" }
        )?;
    }
    writeln!(
        out,
        "  total: {} stage hits, {} recomputed, wall {:.1} ms",
        report.cache_hits(),
        report.cache_misses(),
        report.wall.as_secs_f64() * 1e3
    )?;
    Ok(())
}

/// File name of the ECO workspace manifest inside the cache directory.
const ECO_MANIFEST_FILE: &str = "eco_manifest.json";
/// Schema tag of the ECO workspace manifest.
const ECO_MANIFEST_SCHEMA: &str = "cirstag-eco/v1";

/// Everything `cirstag diff` needs to re-score an edited design against an
/// ECO workspace: the partitioning inputs, the analyze-time configuration
/// knobs that feed stage fingerprints, and the bit-exact base feature and
/// embedding matrices. The GNN is trained once, when the workspace is
/// created; delta runs reuse its stored output so untouched partitions
/// replay from the segmented cache.
struct EcoManifest {
    schema: String,
    num_partitions: usize,
    halo_depth: usize,
    seed: u64,
    epochs: usize,
    knn: String,
    best_effort: bool,
    assignment: Vec<usize>,
    netlist: String,
    feature_cols: usize,
    features: Vec<f64>,
    embedding_cols: usize,
    embedding: Vec<f64>,
}

serde::impl_serde_struct!(EcoManifest {
    schema,
    num_partitions,
    halo_depth,
    seed,
    epochs,
    knn,
    best_effort,
    assignment,
    netlist,
    feature_cols,
    features,
    embedding_cols,
    embedding,
});

impl EcoManifest {
    fn to_json(&self) -> Result<String, CliError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| CliError::new(format!("manifest serialization failed: {e}")))
    }

    fn from_json(text: &str) -> Result<Self, CliError> {
        let manifest: EcoManifest = serde_json::from_str(text)
            .map_err(|e| CliError::new(format!("malformed eco manifest: {e}")))?;
        if manifest.schema != ECO_MANIFEST_SCHEMA {
            return Err(CliError::new(format!(
                "unsupported eco manifest schema {:?} (expected {ECO_MANIFEST_SCHEMA:?})",
                manifest.schema
            )));
        }
        Ok(manifest)
    }
}

/// Rebuilds a row-major matrix persisted in the manifest.
fn matrix_from_flat(cols: usize, data: &[f64], what: &str) -> Result<DenseMatrix, CliError> {
    if cols == 0 || !data.len().is_multiple_of(cols) {
        return Err(CliError::new(format!(
            "eco manifest {what} matrix is malformed ({} values over {cols} columns)",
            data.len()
        )));
    }
    Ok(DenseMatrix::from_vec(
        data.len() / cols,
        cols,
        data.to_vec(),
    )?)
}

/// Incremental ECO re-analysis: re-scores an edited design against the
/// workspace written by `analyze --partitions`, recomputing only partitions
/// whose Merkle leaves changed (plus halo invalidation) and replaying the
/// rest from the segmented artifact cache. `--cold` recomputes everything
/// instead and must produce a byte-identical report file.
#[allow(clippy::too_many_arguments)]
fn diff(
    workspace: &str,
    edited: Option<&str>,
    delta: Option<&str>,
    report_path: Option<&str>,
    threads: usize,
    best_effort: Option<bool>,
    cold: bool,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let manifest_path = std::path::Path::new(workspace).join(ECO_MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest_path).map_err(|e| {
        CliError::new(format!(
            "{workspace} is not an ECO workspace ({}: {e}); run \
             `cirstag analyze <netlist> --partitions N --cache-dir {workspace}` first",
            manifest_path.display()
        ))
    })?;
    let manifest = EcoManifest::from_json(&text)?;
    let library = CellLibrary::standard();
    let base_netlist = parse_netlist(&manifest.netlist, &library)?;
    let base_timing = TimingGraph::new(&base_netlist, &library)?;
    let base_graph = base_timing.to_undirected_graph()?;
    let n = base_graph.num_nodes();
    let base_features = matrix_from_flat(manifest.feature_cols, &manifest.features, "feature")?;
    let embedding = matrix_from_flat(manifest.embedding_cols, &manifest.embedding, "embedding")?;
    if base_features.nrows() != n || embedding.nrows() != n || manifest.assignment.len() != n {
        return Err(CliError::new(format!(
            "eco manifest is inconsistent: {n} pins vs {} feature rows, {} embedding rows, \
             {} assignments",
            base_features.nrows(),
            embedding.nrows(),
            manifest.assignment.len()
        )));
    }
    // Re-derive the partitioning from the recorded config; a mismatch with
    // the stored assignment means the workspace was built from a different
    // base design than the manifest claims.
    let pconfig = PartitionConfig {
        num_partitions: manifest.num_partitions,
        seed: manifest.seed,
        halo_depth: manifest.halo_depth,
    };
    pconfig.validate(n)?;
    let partitioning = partition_graph(&base_graph, &pconfig)?;
    let stored: Vec<u32> = manifest.assignment.iter().map(|&p| p as u32).collect();
    if partitioning.assignment != stored {
        return Err(CliError::new(
            "eco manifest is inconsistent: the stored partition assignment does not match \
             the recorded base design",
        ));
    }
    let (graph, features) = match (edited, delta) {
        (Some(path), None) => {
            let (_, netlist) = load(path)?;
            let timing = TimingGraph::new(&netlist, &library)?;
            let graph = timing.to_undirected_graph()?;
            if graph.num_nodes() != n {
                return Err(CliError::new(format!(
                    "edited design has {} pins but the workspace base has {n}; incremental \
                     re-analysis needs node-count-preserving edits (re-run analyze --partitions \
                     for structural changes)",
                    graph.num_nodes()
                )));
            }
            let features = extract_features(
                &timing,
                &netlist,
                &library,
                &timing.pin_caps(),
                &FeatureConfig::default(),
            )?;
            writeln!(out, "edited netlist {path}: fingerprints decide dirtiness")?;
            (graph, features)
        }
        (None, Some(path)) => {
            let ops_text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
            let netlist_delta = NetlistDelta::from_json(&ops_text)?;
            let outcome = apply_delta(
                &base_graph,
                Some(&base_features),
                &netlist_delta,
                &partitioning,
            )?;
            writeln!(
                out,
                "delta {path}: {} ops touch {} pins in partitions {:?}",
                netlist_delta.ops.len(),
                outcome.touched_nodes.len(),
                outcome.touched_partitions
            )?;
            let features = outcome
                .features
                .ok_or_else(|| CliError::new("delta application dropped the feature matrix"))?;
            (outcome.graph, features)
        }
        // The parser enforces exactly one edit source.
        _ => unreachable!("diff needs exactly one of --edited/--delta"),
    };
    let knn = KnnChoice::parse(&manifest.knn)?;
    let config = base_config(
        &graph,
        threads,
        best_effort.unwrap_or(manifest.best_effort),
        knn,
    );
    let report = if cold {
        analyze_partitioned_cold(
            &config,
            &graph,
            Some(&features),
            &embedding,
            &partitioning.assignment,
            partitioning.num_partitions,
            partitioning.halo_depth,
        )?
    } else {
        let mut cache = ArtifactCache::new().with_disk_dir(workspace);
        analyze_partitioned_cached(
            &config,
            &graph,
            Some(&features),
            &embedding,
            &partitioning.assignment,
            partitioning.num_partitions,
            partitioning.halo_depth,
            &mut cache,
        )?
    };
    writeln!(out, "root {}", report.root.hex())?;
    write_partition_table(&report, out)?;
    let recomputed = report.recomputed();
    writeln!(
        out,
        "recomputed {} of {} partitions: {recomputed:?}",
        recomputed.len(),
        report.num_partitions
    )?;
    // Parseable by scripts (ci.sh computes the warm/cold speedup from it).
    writeln!(out, "diff wall: {} ms", report.wall.as_millis())?;
    if let Some(rp) = report_path {
        std::fs::write(rp, EcoReportExport::from_report(&report).to_json()?)
            .map_err(|e| CliError::new(format!("cannot write {rp}: {e}")))?;
        writeln!(out, "eco report written to {rp}")?;
    }
    if report.degraded {
        writeln!(out, "re-analysis completed DEGRADED (see partition table)")?;
        Ok(RunStatus::Degraded)
    } else {
        Ok(RunStatus::Clean)
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    path: &str,
    dmd_s: &[usize],
    report_path: Option<&str>,
    epochs: usize,
    threads: usize,
    best_effort: bool,
    cache_dir: Option<&str>,
    knn: KnnChoice,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    let (features, embedding) = train_gnn(&timing, &netlist, &library, &graph, epochs, out)?;
    let configs: Vec<CirStagConfig> = dmd_s
        .iter()
        .map(|&s| CirStagConfig {
            num_eigenpairs: s,
            ..base_config(&graph, threads, best_effort, knn)
        })
        .collect();
    let mut cache = ArtifactCache::new();
    if let Some(dir) = cache_dir {
        cache = cache.with_disk_dir(dir);
    }
    let reports = analyze_sweep(&graph, Some(&features), &embedding, &configs, &mut cache)?;
    writeln!(
        out,
        "\nsweep over DMD subspace size s ({} configs):",
        configs.len()
    )?;
    let mut degraded_any = false;
    for (cfg, report) in configs.iter().zip(&reports) {
        degraded_any |= report.degraded;
        writeln!(
            out,
            "  s={:<4} ζ₁ {:.4e}  {}{}",
            cfg.num_eigenpairs,
            report.eigenvalues.first().copied().unwrap_or(0.0),
            report.timings.summary(),
            if report.degraded { "  [degraded]" } else { "" }
        )?;
    }
    if let Some(rp) = report_path {
        let mut parts = Vec::with_capacity(reports.len());
        for report in &reports {
            parts.push(report.to_json()?);
        }
        let json = format!("[\n{}\n]", parts.join(",\n"));
        std::fs::write(rp, json).map_err(|e| CliError::new(format!("cannot write {rp}: {e}")))?;
        writeln!(out, "\n{} reports written to {rp}", reports.len())?;
    }
    if degraded_any {
        writeln!(out, "\nsweep completed DEGRADED (see diagnostics above)")?;
        Ok(RunStatus::Degraded)
    } else {
        Ok(RunStatus::Clean)
    }
}

/// Runs the resident daemon until a `shutdown` request arrives. The overload
/// gate's hysteresis band is derived from the queue bound: engage at 3/4,
/// release at 1/4.
#[allow(clippy::too_many_arguments)]
fn serve(
    addr: &str,
    workers: usize,
    queue: usize,
    deadline_ms: Option<u64>,
    best_effort: bool,
    cache_dir: Option<&str>,
    port_file: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let config = cirstag_serve::ServeConfig {
        addr: addr.to_string(),
        workers,
        queue_capacity: queue,
        downgrade_high: (queue * 3 / 4).max(1),
        downgrade_low: queue / 4,
        default_deadline_ms: deadline_ms,
        best_effort,
        cache_dir: cache_dir.map(str::to_string),
        port_file: port_file.map(str::to_string),
        ..Default::default()
    };
    let server = cirstag_serve::Server::bind(&config).map_err(|e| CliError::new(e.to_string()))?;
    server.run(out).map_err(|e| CliError::new(e.to_string()))?;
    Ok(RunStatus::Clean)
}

/// Drives a daemon with the load generator and prints the outcome. Exits
/// clean only when every request got a typed answer and none failed with a
/// server-side error; shed and timed-out requests are expected under
/// pressure and exit [`RunStatus::Degraded`] instead.
#[allow(clippy::too_many_arguments)]
fn drive_load(
    netlist_path: &str,
    addr: &str,
    requests: usize,
    clients: usize,
    epochs: usize,
    deadline_ms: Option<u64>,
    best_effort: bool,
    shutdown: bool,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let netlist = std::fs::read_to_string(netlist_path)
        .map_err(|e| CliError::new(format!("cannot read {netlist_path}: {e}")))?;
    let report = cirstag_serve::run_load(&cirstag_serve::LoadConfig {
        addr: addr.to_string(),
        requests,
        clients,
        netlist,
        epochs,
        deadline_ms,
        best_effort: if best_effort { Some(true) } else { None },
        shutdown,
    })
    .map_err(|e| CliError::new(e.to_string()))?;
    writeln!(out, "load against {addr} with {clients} clients:")?;
    writeln!(out, "  {}", report.summary())?;
    if report.transport_errors > 0 {
        return Err(CliError::new(format!(
            "{} requests got no response (dropped connections)",
            report.transport_errors
        )));
    }
    if report.failed > 0 {
        writeln!(out, "load completed with {} failed requests", report.failed)?;
        return Ok(RunStatus::Degraded);
    }
    if report.shed + report.timeouts > 0 {
        writeln!(
            out,
            "load completed under pressure: {} shed, {} timed out (all answered)",
            report.shed, report.timeouts
        )?;
        return Ok(RunStatus::Degraded);
    }
    writeln!(out, "all {} requests served", report.ok)?;
    Ok(RunStatus::Clean)
}

fn dot(
    path: &str,
    scores_path: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    let node_colors = match scores_path {
        None => None,
        Some(sp) => {
            let text = std::fs::read_to_string(sp)
                .map_err(|e| CliError::new(format!("cannot read {sp}: {e}")))?;
            let report = ReportExport::from_json(&text)?;
            if report.node_scores.len() != graph.num_nodes() {
                return Err(CliError::new(format!(
                    "report covers {} nodes but the design has {}",
                    report.node_scores.len(),
                    graph.num_nodes()
                )));
            }
            Some(heat_colors(&report.node_scores))
        }
    };
    let text = to_dot(
        &graph,
        &DotOptions {
            name: netlist.name.clone(),
            node_colors,
            ..Default::default()
        },
    );
    out.write_all(text.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(cmd: &Command) -> Result<String, CliError> {
        let mut buf = Vec::new();
        run(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_to_string(&Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn generate_sta_dot_roundtrip() {
        let dir = std::env::temp_dir().join("cirstag_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cir");
        let path_str = path.to_str().unwrap().to_string();
        let gen_out = run_to_string(&Command::Generate {
            gates: 40,
            seed: 3,
            out: path_str.clone(),
        })
        .unwrap();
        assert!(gen_out.contains("40 gates"));

        let sta_out = run_to_string(&Command::Sta {
            netlist: path_str.clone(),
        })
        .unwrap();
        assert!(sta_out.contains("critical arrival"));

        let dot_out = run_to_string(&Command::Dot {
            netlist: path_str,
            scores: None,
        })
        .unwrap();
        assert!(dot_out.contains("graph"));
        assert!(dot_out.contains("--"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let err = run_to_string(&Command::Sta {
            netlist: "/nonexistent/x.cir".to_string(),
        })
        .unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn analyze_small_design_end_to_end() {
        let dir = std::env::temp_dir().join("cirstag_cli_analyze");
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("a.cir");
        let json = dir.join("a.json");
        run_to_string(&Command::Generate {
            gates: 60,
            seed: 5,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let text = run_to_string(&Command::Analyze {
            netlist: cir.to_str().unwrap().to_string(),
            out: Some(json.to_str().unwrap().to_string()),
            epochs: 60,
            top: 0.10,
            threads: 2,
            best_effort: false,
            cache_dir: None,
            knn: KnnChoice::Auto,
            partitions: None,
        })
        .unwrap();
        assert!(text.contains("most unstable"));
        assert!(text.contains("stage timings"));
        let report = ReportExport::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(!report.node_scores.is_empty());
        // Heat-mapped DOT from the saved report.
        let dot_text = run_to_string(&Command::Dot {
            netlist: cir.to_str().unwrap().to_string(),
            scores: Some(json.to_str().unwrap().to_string()),
        })
        .unwrap();
        assert!(dot_text.contains("fillcolor"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("cirstag_cli_serve");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("d.cir");
        let pf = dir.join("port");
        run_to_string(&Command::Generate {
            gates: 30,
            seed: 9,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let serve_cmd = Command::Serve {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue: 16,
            deadline_ms: None,
            best_effort: false,
            cache_dir: None,
            port_file: Some(pf.to_str().unwrap().to_string()),
        };
        let daemon = std::thread::spawn(move || run_to_string(&serve_cmd));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&pf) {
                if !text.trim().is_empty() {
                    break text.trim().to_string();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let text = run_to_string(&Command::Load {
            netlist: cir.to_str().unwrap().to_string(),
            addr,
            requests: 8,
            clients: 2,
            epochs: 6,
            deadline_ms: None,
            best_effort: false,
            shutdown: true,
        })
        .unwrap();
        assert!(text.contains("all 8 requests served"), "{text}");
        let serve_out = daemon.join().unwrap().unwrap();
        assert!(serve_out.contains("listening on"), "{serve_out}");
        assert!(serve_out.contains("drained"), "{serve_out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partitioned_analyze_and_diff_roundtrip() {
        use cirstag_circuit::DeltaOp;
        let dir = std::env::temp_dir().join("cirstag_cli_eco");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("e.cir");
        let ws = dir.join("ws");
        run_to_string(&Command::Generate {
            gates: 60,
            seed: 5,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let text = run_to_string(&Command::Analyze {
            netlist: cir.to_str().unwrap().to_string(),
            out: None,
            epochs: 40,
            top: 0.10,
            threads: 1,
            best_effort: false,
            cache_dir: Some(ws.to_str().unwrap().to_string()),
            knn: KnnChoice::Auto,
            partitions: Some(4),
        })
        .unwrap();
        assert!(text.contains("partitioned into 4 regions"), "{text}");
        assert!(text.contains("eco workspace written"), "{text}");
        assert!(ws.join(ECO_MANIFEST_FILE).is_file());

        // A capacitance drift on one pin: a one-partition edit (plus halo).
        let delta = NetlistDelta {
            ops: vec![DeltaOp::FeatureDrift {
                node: 0,
                scale: 1.02,
            }],
        };
        let delta_path = dir.join("drift.json");
        std::fs::write(&delta_path, delta.to_json().unwrap()).unwrap();

        let warm_json = dir.join("warm.json");
        let warm = run_to_string(&Command::Diff {
            workspace: ws.to_str().unwrap().to_string(),
            edited: None,
            delta: Some(delta_path.to_str().unwrap().to_string()),
            out: Some(warm_json.to_str().unwrap().to_string()),
            threads: 1,
            best_effort: None,
            cold: false,
        })
        .unwrap();
        assert!(warm.contains("diff wall:"), "{warm}");
        assert!(warm.contains(" of 4 partitions"), "{warm}");
        assert!(
            !warm.contains("recomputed 4 of 4"),
            "a one-pin drift must replay at least one partition from cache:\n{warm}"
        );

        // The cold reference recomputes everything yet must serialize the
        // exact same deterministic payload.
        let cold_json = dir.join("cold.json");
        let cold = run_to_string(&Command::Diff {
            workspace: ws.to_str().unwrap().to_string(),
            edited: None,
            delta: Some(delta_path.to_str().unwrap().to_string()),
            out: Some(cold_json.to_str().unwrap().to_string()),
            threads: 1,
            best_effort: None,
            cold: true,
        })
        .unwrap();
        assert!(cold.contains("recomputed 4 of 4"), "{cold}");
        assert_eq!(
            std::fs::read(&warm_json).unwrap(),
            std::fs::read(&cold_json).unwrap(),
            "warm delta payload must be byte-identical to the cold reference"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partitioned_analyze_validates_inputs() {
        let dir = std::env::temp_dir().join("cirstag_cli_eco_validate");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("v.cir");
        run_to_string(&Command::Generate {
            gates: 40,
            seed: 11,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let base = Command::Analyze {
            netlist: cir.to_str().unwrap().to_string(),
            out: None,
            epochs: 10,
            top: 0.10,
            threads: 1,
            best_effort: false,
            cache_dir: Some(dir.join("ws").to_str().unwrap().to_string()),
            knn: KnnChoice::Auto,
            partitions: Some(0),
        };
        let err = run_to_string(&base).unwrap_err();
        assert!(err.message.contains("at least 1"), "{}", err.message);
        let absurd = match &base {
            Command::Analyze { .. } => {
                let mut cmd = base.clone();
                if let Command::Analyze { partitions, .. } = &mut cmd {
                    *partitions = Some(1_000_000);
                }
                cmd
            }
            other => panic!("unexpected {other:?}"),
        };
        let err = run_to_string(&absurd).unwrap_err();
        assert!(err.message.contains("absurd"), "{}", err.message);
        // The workspace is where diff replays from, so it is mandatory.
        let mut no_ws = base.clone();
        if let Command::Analyze {
            cache_dir,
            partitions,
            ..
        } = &mut no_ws
        {
            *cache_dir = None;
            *partitions = Some(2);
        }
        let err = run_to_string(&no_ws).unwrap_err();
        assert!(err.message.contains("--cache-dir"), "{}", err.message);
        // And a directory without a manifest is not a workspace.
        let err = run_to_string(&Command::Diff {
            workspace: dir.join("nowhere").to_str().unwrap().to_string(),
            edited: None,
            delta: Some("unused.json".to_string()),
            out: None,
            threads: 1,
            best_effort: None,
            cold: false,
        })
        .unwrap_err();
        assert!(
            err.message.contains("not an ECO workspace"),
            "{}",
            err.message
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_replays_cached_phases_and_persists_reports() {
        let dir = std::env::temp_dir().join("cirstag_cli_sweep");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("s.cir");
        let json = dir.join("sweep.json");
        let cache = dir.join("cache");
        run_to_string(&Command::Generate {
            gates: 60,
            seed: 5,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let text = run_to_string(&Command::Sweep {
            netlist: cir.to_str().unwrap().to_string(),
            dmd_s: vec![3, 5, 8],
            out: Some(json.to_str().unwrap().to_string()),
            epochs: 40,
            threads: 1,
            best_effort: false,
            cache_dir: Some(cache.to_str().unwrap().to_string()),
            knn: KnnChoice::Auto,
        })
        .unwrap();
        assert!(text.contains("sweep over DMD subspace size"));
        // The second and third configs differ only in Phase 3, so their
        // summaries must report cache hits from the replayed Phase-1/2.
        assert!(text.contains("cache"), "{text}");
        assert!(text.contains("3 reports written"), "{text}");
        // The on-disk layer must hold at least the cacheable stages.
        assert!(std::fs::read_dir(&cache).unwrap().count() >= 3);
        // The report file is a JSON array of per-config exports.
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.trim_start().starts_with('['));
        assert!(body.contains("cache_hits"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
