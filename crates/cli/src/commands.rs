//! Subcommand implementations.

use crate::args::{KnnChoice, USAGE};
use crate::{CliError, Command};
use cirstag::{analyze_sweep, ArtifactCache, CirStag, CirStagConfig, FailurePolicy, ReportExport};
use cirstag_circuit::{
    extract_features, generate_circuit, parse_netlist, write_netlist, CellLibrary, FeatureConfig,
    GeneratorConfig, Netlist, PinRole, StaEngine, TimingGraph,
};
use cirstag_embed::KnnMethod;
use cirstag_gnn::{r2_score, Activation, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_graph::{heat_colors, to_dot, DotOptions, Graph};
use cirstag_linalg::DenseMatrix;

/// Outcome of a successfully completed command, used to pick the process
/// exit code: `0` for [`RunStatus::Clean`], `2` for [`RunStatus::Degraded`]
/// (errors exit `1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The command completed with no fallback degradation.
    Clean,
    /// An analysis completed under the best-effort policy, but one or more
    /// fallback rungs fired; the scores are usable but approximate.
    Degraded,
}

/// Runs a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on I/O, parse or analysis failures; the message is
/// meant for direct display.
pub fn run(command: &Command, out: &mut dyn std::io::Write) -> Result<RunStatus, CliError> {
    match command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(RunStatus::Clean)
        }
        Command::Generate {
            gates,
            seed,
            out: path,
        } => generate(*gates, *seed, path, out).map(|()| RunStatus::Clean),
        Command::Sta { netlist } => sta(netlist, out).map(|()| RunStatus::Clean),
        Command::Analyze {
            netlist,
            out: report_path,
            epochs,
            top,
            threads,
            best_effort,
            cache_dir,
            knn,
        } => analyze(
            netlist,
            report_path.as_deref(),
            *epochs,
            *top,
            *threads,
            *best_effort,
            cache_dir.as_deref(),
            *knn,
            out,
        ),
        Command::Sweep {
            netlist,
            dmd_s,
            out: report_path,
            epochs,
            threads,
            best_effort,
            cache_dir,
            knn,
        } => sweep(
            netlist,
            dmd_s,
            report_path.as_deref(),
            *epochs,
            *threads,
            *best_effort,
            cache_dir.as_deref(),
            *knn,
            out,
        ),
        Command::Dot { netlist, scores } => {
            dot(netlist, scores.as_deref(), out).map(|()| RunStatus::Clean)
        }
        Command::Serve {
            addr,
            workers,
            queue,
            deadline_ms,
            best_effort,
            cache_dir,
            port_file,
        } => serve(
            addr,
            *workers,
            *queue,
            *deadline_ms,
            *best_effort,
            cache_dir.as_deref(),
            port_file.as_deref(),
            out,
        ),
        Command::Load {
            netlist,
            addr,
            requests,
            clients,
            epochs,
            deadline_ms,
            best_effort,
            shutdown,
        } => drive_load(
            netlist,
            addr,
            *requests,
            *clients,
            *epochs,
            *deadline_ms,
            *best_effort,
            *shutdown,
            out,
        ),
    }
}

fn load(path: &str) -> Result<(CellLibrary, Netlist), CliError> {
    let library = CellLibrary::standard();
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    let netlist = parse_netlist(&text, &library)?;
    Ok((library, netlist))
}

fn generate(
    gates: usize,
    seed: u64,
    path: &str,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates: gates,
            ..Default::default()
        },
        seed,
    )?;
    std::fs::write(path, write_netlist(&netlist, &library))
        .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
    writeln!(
        out,
        "wrote {path}: {} gates, {} nets, {} primary inputs, {} primary outputs",
        netlist.num_cells(),
        netlist.num_nets(),
        netlist.primary_inputs.len(),
        netlist.primary_outputs.len()
    )?;
    Ok(())
}

fn sta(path: &str, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let engine = StaEngine::new(&timing);
    writeln!(
        out,
        "design {}: {} pins, {} arcs",
        netlist.name,
        timing.num_pins(),
        timing.num_arcs()
    )?;
    writeln!(out, "critical arrival: {:.4} ns", engine.critical_arrival())?;
    // Worst five endpoints.
    let mut pos: Vec<usize> = timing.po_pins().to_vec();
    pos.sort_by(|&a, &b| {
        engine
            .arrival(b)
            .partial_cmp(&engine.arrival(a))
            .expect("finite arrivals")
    });
    writeln!(out, "worst endpoints:")?;
    for &po in pos.iter().take(5) {
        let net = timing.pin(po).net;
        writeln!(
            out,
            "  {:<16} arrival {:.4} ns",
            netlist.nets[net].name,
            engine.arrival(po)
        )?;
    }
    Ok(())
}

/// Trains the timing GNN on the pin graph and returns the node features and
/// the model's node embeddings (the pipeline's output-side data).
fn train_gnn(
    timing: &TimingGraph,
    netlist: &Netlist,
    library: &CellLibrary,
    graph: &Graph,
    epochs: usize,
    out: &mut dyn std::io::Write,
) -> Result<(DenseMatrix, DenseMatrix), CliError> {
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(graph, &arcs)?;
    let features = extract_features(
        timing,
        netlist,
        library,
        &timing.pin_caps(),
        &FeatureConfig::default(),
    )?;
    let engine = StaEngine::new(timing);
    let critical = engine.critical_arrival().max(1e-12);
    let targets = DenseMatrix::from_rows(
        &engine
            .arrival_times()
            .iter()
            .map(|&a| vec![a / critical])
            .collect::<Vec<_>>(),
    )?;
    writeln!(
        out,
        "training timing GNN ({epochs} epochs) on {} pins…",
        timing.num_pins()
    )?;
    let mut model = GnnModel::new(
        features.ncols(),
        &[
            LayerSpec::Linear {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::DagProp {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 16,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        0xC11,
    )?;
    model.fit_regression(
        &ctx,
        &features,
        &targets,
        None,
        &TrainConfig {
            epochs,
            learning_rate: 8e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            ..TrainConfig::default()
        },
    )?;
    let pred = model.forward(&ctx, &features, false)?;
    writeln!(out, "GNN R² = {:.4}", r2_score(&pred, &targets))?;
    let embedding = model.embeddings(&ctx, &features)?;
    Ok((features, embedding))
}

/// The CLI's pipeline configuration for a given design size and policy.
fn base_config(graph: &Graph, threads: usize, best_effort: bool, knn: KnnChoice) -> CirStagConfig {
    let mut config = CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        num_threads: threads,
        policy: if best_effort {
            FailurePolicy::BestEffort
        } else {
            FailurePolicy::Strict
        },
        ..Default::default()
    };
    config.knn.method = match knn {
        KnnChoice::Exact => KnnMethod::Exact,
        KnnChoice::RpForest => KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        },
        KnnChoice::Hnsw => KnnMethod::hnsw_default(),
        // Size heuristic: exhaustive search is cheap below a few thousand
        // pins; larger designs default to the rp-forest backend.
        KnnChoice::Auto if graph.num_nodes() > 3000 => KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        },
        KnnChoice::Auto => KnnMethod::Exact,
    };
    config
}

#[allow(clippy::too_many_arguments)]
fn analyze(
    path: &str,
    report_path: Option<&str>,
    epochs: usize,
    top: f64,
    threads: usize,
    best_effort: bool,
    cache_dir: Option<&str>,
    knn: KnnChoice,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    let (features, embedding) = train_gnn(&timing, &netlist, &library, &graph, epochs, out)?;
    let config = base_config(&graph, threads, best_effort, knn);
    let report = match cache_dir {
        None => CirStag::new(config).analyze(&graph, Some(&features), &embedding)?,
        Some(dir) => {
            let mut cache = ArtifactCache::new().with_disk_dir(dir);
            CirStag::new(config).analyze_cached(&graph, Some(&features), &embedding, &mut cache)?
        }
    };
    writeln!(out, "stage timings: {}", report.timings.summary())?;
    if report.degraded || !report.diagnostics.is_empty() {
        writeln!(out, "run diagnostics: {}", report.diagnostics.summary())?;
        for w in &report.diagnostics.warnings {
            writeln!(out, "  warning: {w}")?;
        }
    }
    let eligible: Vec<bool> = (0..timing.num_pins())
        .map(|p| timing.pin(p).capacitance > 0.0 && timing.pin(p).role != PinRole::PrimaryOutput)
        .collect();
    let unstable = cirstag::top_fraction(&report.node_scores, top, Some(&eligible));
    writeln!(
        out,
        "\nmost unstable {:.0}% of pins ({} pins):",
        top * 100.0,
        unstable.len()
    )?;
    for &p in unstable.iter().take(15) {
        let info = timing.pin(p);
        writeln!(
            out,
            "  pin {:<7} net {:<16} score {:.4e}",
            p, netlist.nets[info.net].name, report.node_scores[p]
        )?;
    }
    if unstable.len() > 15 {
        writeln!(out, "  … ({} more)", unstable.len() - 15)?;
    }
    if let Some(rp) = report_path {
        std::fs::write(rp, report.to_json()?)
            .map_err(|e| CliError::new(format!("cannot write {rp}: {e}")))?;
        writeln!(out, "\nfull report written to {rp}")?;
    }
    if report.degraded {
        writeln!(out, "\nanalysis completed DEGRADED (see diagnostics above)")?;
        Ok(RunStatus::Degraded)
    } else {
        Ok(RunStatus::Clean)
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    path: &str,
    dmd_s: &[usize],
    report_path: Option<&str>,
    epochs: usize,
    threads: usize,
    best_effort: bool,
    cache_dir: Option<&str>,
    knn: KnnChoice,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    let (features, embedding) = train_gnn(&timing, &netlist, &library, &graph, epochs, out)?;
    let configs: Vec<CirStagConfig> = dmd_s
        .iter()
        .map(|&s| CirStagConfig {
            num_eigenpairs: s,
            ..base_config(&graph, threads, best_effort, knn)
        })
        .collect();
    let mut cache = ArtifactCache::new();
    if let Some(dir) = cache_dir {
        cache = cache.with_disk_dir(dir);
    }
    let reports = analyze_sweep(&graph, Some(&features), &embedding, &configs, &mut cache)?;
    writeln!(
        out,
        "\nsweep over DMD subspace size s ({} configs):",
        configs.len()
    )?;
    let mut degraded_any = false;
    for (cfg, report) in configs.iter().zip(&reports) {
        degraded_any |= report.degraded;
        writeln!(
            out,
            "  s={:<4} ζ₁ {:.4e}  {}{}",
            cfg.num_eigenpairs,
            report.eigenvalues.first().copied().unwrap_or(0.0),
            report.timings.summary(),
            if report.degraded { "  [degraded]" } else { "" }
        )?;
    }
    if let Some(rp) = report_path {
        let mut parts = Vec::with_capacity(reports.len());
        for report in &reports {
            parts.push(report.to_json()?);
        }
        let json = format!("[\n{}\n]", parts.join(",\n"));
        std::fs::write(rp, json).map_err(|e| CliError::new(format!("cannot write {rp}: {e}")))?;
        writeln!(out, "\n{} reports written to {rp}", reports.len())?;
    }
    if degraded_any {
        writeln!(out, "\nsweep completed DEGRADED (see diagnostics above)")?;
        Ok(RunStatus::Degraded)
    } else {
        Ok(RunStatus::Clean)
    }
}

/// Runs the resident daemon until a `shutdown` request arrives. The overload
/// gate's hysteresis band is derived from the queue bound: engage at 3/4,
/// release at 1/4.
#[allow(clippy::too_many_arguments)]
fn serve(
    addr: &str,
    workers: usize,
    queue: usize,
    deadline_ms: Option<u64>,
    best_effort: bool,
    cache_dir: Option<&str>,
    port_file: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let config = cirstag_serve::ServeConfig {
        addr: addr.to_string(),
        workers,
        queue_capacity: queue,
        downgrade_high: (queue * 3 / 4).max(1),
        downgrade_low: queue / 4,
        default_deadline_ms: deadline_ms,
        best_effort,
        cache_dir: cache_dir.map(str::to_string),
        port_file: port_file.map(str::to_string),
        ..Default::default()
    };
    let server = cirstag_serve::Server::bind(&config).map_err(|e| CliError::new(e.to_string()))?;
    server.run(out).map_err(|e| CliError::new(e.to_string()))?;
    Ok(RunStatus::Clean)
}

/// Drives a daemon with the load generator and prints the outcome. Exits
/// clean only when every request got a typed answer and none failed with a
/// server-side error; shed and timed-out requests are expected under
/// pressure and exit [`RunStatus::Degraded`] instead.
#[allow(clippy::too_many_arguments)]
fn drive_load(
    netlist_path: &str,
    addr: &str,
    requests: usize,
    clients: usize,
    epochs: usize,
    deadline_ms: Option<u64>,
    best_effort: bool,
    shutdown: bool,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, CliError> {
    let netlist = std::fs::read_to_string(netlist_path)
        .map_err(|e| CliError::new(format!("cannot read {netlist_path}: {e}")))?;
    let report = cirstag_serve::run_load(&cirstag_serve::LoadConfig {
        addr: addr.to_string(),
        requests,
        clients,
        netlist,
        epochs,
        deadline_ms,
        best_effort: if best_effort { Some(true) } else { None },
        shutdown,
    })
    .map_err(|e| CliError::new(e.to_string()))?;
    writeln!(out, "load against {addr} with {clients} clients:")?;
    writeln!(out, "  {}", report.summary())?;
    if report.transport_errors > 0 {
        return Err(CliError::new(format!(
            "{} requests got no response (dropped connections)",
            report.transport_errors
        )));
    }
    if report.failed > 0 {
        writeln!(out, "load completed with {} failed requests", report.failed)?;
        return Ok(RunStatus::Degraded);
    }
    if report.shed + report.timeouts > 0 {
        writeln!(
            out,
            "load completed under pressure: {} shed, {} timed out (all answered)",
            report.shed, report.timeouts
        )?;
        return Ok(RunStatus::Degraded);
    }
    writeln!(out, "all {} requests served", report.ok)?;
    Ok(RunStatus::Clean)
}

fn dot(
    path: &str,
    scores_path: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let (library, netlist) = load(path)?;
    let timing = TimingGraph::new(&netlist, &library)?;
    let graph = timing.to_undirected_graph()?;
    let node_colors = match scores_path {
        None => None,
        Some(sp) => {
            let text = std::fs::read_to_string(sp)
                .map_err(|e| CliError::new(format!("cannot read {sp}: {e}")))?;
            let report = ReportExport::from_json(&text)?;
            if report.node_scores.len() != graph.num_nodes() {
                return Err(CliError::new(format!(
                    "report covers {} nodes but the design has {}",
                    report.node_scores.len(),
                    graph.num_nodes()
                )));
            }
            Some(heat_colors(&report.node_scores))
        }
    };
    let text = to_dot(
        &graph,
        &DotOptions {
            name: netlist.name.clone(),
            node_colors,
            ..Default::default()
        },
    );
    out.write_all(text.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(cmd: &Command) -> Result<String, CliError> {
        let mut buf = Vec::new();
        run(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_to_string(&Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn generate_sta_dot_roundtrip() {
        let dir = std::env::temp_dir().join("cirstag_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cir");
        let path_str = path.to_str().unwrap().to_string();
        let gen_out = run_to_string(&Command::Generate {
            gates: 40,
            seed: 3,
            out: path_str.clone(),
        })
        .unwrap();
        assert!(gen_out.contains("40 gates"));

        let sta_out = run_to_string(&Command::Sta {
            netlist: path_str.clone(),
        })
        .unwrap();
        assert!(sta_out.contains("critical arrival"));

        let dot_out = run_to_string(&Command::Dot {
            netlist: path_str,
            scores: None,
        })
        .unwrap();
        assert!(dot_out.contains("graph"));
        assert!(dot_out.contains("--"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let err = run_to_string(&Command::Sta {
            netlist: "/nonexistent/x.cir".to_string(),
        })
        .unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn analyze_small_design_end_to_end() {
        let dir = std::env::temp_dir().join("cirstag_cli_analyze");
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("a.cir");
        let json = dir.join("a.json");
        run_to_string(&Command::Generate {
            gates: 60,
            seed: 5,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let text = run_to_string(&Command::Analyze {
            netlist: cir.to_str().unwrap().to_string(),
            out: Some(json.to_str().unwrap().to_string()),
            epochs: 60,
            top: 0.10,
            threads: 2,
            best_effort: false,
            cache_dir: None,
            knn: KnnChoice::Auto,
        })
        .unwrap();
        assert!(text.contains("most unstable"));
        assert!(text.contains("stage timings"));
        let report = ReportExport::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(!report.node_scores.is_empty());
        // Heat-mapped DOT from the saved report.
        let dot_text = run_to_string(&Command::Dot {
            netlist: cir.to_str().unwrap().to_string(),
            scores: Some(json.to_str().unwrap().to_string()),
        })
        .unwrap();
        assert!(dot_text.contains("fillcolor"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("cirstag_cli_serve");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("d.cir");
        let pf = dir.join("port");
        run_to_string(&Command::Generate {
            gates: 30,
            seed: 9,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let serve_cmd = Command::Serve {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue: 16,
            deadline_ms: None,
            best_effort: false,
            cache_dir: None,
            port_file: Some(pf.to_str().unwrap().to_string()),
        };
        let daemon = std::thread::spawn(move || run_to_string(&serve_cmd));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&pf) {
                if !text.trim().is_empty() {
                    break text.trim().to_string();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let text = run_to_string(&Command::Load {
            netlist: cir.to_str().unwrap().to_string(),
            addr,
            requests: 8,
            clients: 2,
            epochs: 6,
            deadline_ms: None,
            best_effort: false,
            shutdown: true,
        })
        .unwrap();
        assert!(text.contains("all 8 requests served"), "{text}");
        let serve_out = daemon.join().unwrap().unwrap();
        assert!(serve_out.contains("listening on"), "{serve_out}");
        assert!(serve_out.contains("drained"), "{serve_out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_replays_cached_phases_and_persists_reports() {
        let dir = std::env::temp_dir().join("cirstag_cli_sweep");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cir = dir.join("s.cir");
        let json = dir.join("sweep.json");
        let cache = dir.join("cache");
        run_to_string(&Command::Generate {
            gates: 60,
            seed: 5,
            out: cir.to_str().unwrap().to_string(),
        })
        .unwrap();
        let text = run_to_string(&Command::Sweep {
            netlist: cir.to_str().unwrap().to_string(),
            dmd_s: vec![3, 5, 8],
            out: Some(json.to_str().unwrap().to_string()),
            epochs: 40,
            threads: 1,
            best_effort: false,
            cache_dir: Some(cache.to_str().unwrap().to_string()),
            knn: KnnChoice::Auto,
        })
        .unwrap();
        assert!(text.contains("sweep over DMD subspace size"));
        // The second and third configs differ only in Phase 3, so their
        // summaries must report cache hits from the replayed Phase-1/2.
        assert!(text.contains("cache"), "{text}");
        assert!(text.contains("3 reports written"), "{text}");
        // The on-disk layer must hold at least the cacheable stages.
        assert!(std::fs::read_dir(&cache).unwrap().count() >= 3);
        // The report file is a JSON array of per-config exports.
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.trim_start().starts_with('['));
        assert!(body.contains("cache_hits"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
