//! Hand-rolled argument parsing.

use crate::CliError;

/// Neighbor-search backend selected on the command line.
///
/// `Auto` keeps the size-based heuristic (exact below a few thousand pins,
/// rp-forest above); the other variants force one backend with its default
/// parameters regardless of circuit size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnChoice {
    /// Pick per circuit size (default).
    #[default]
    Auto,
    /// Exhaustive O(n²) search.
    Exact,
    /// Random-projection forest.
    RpForest,
    /// Hierarchical navigable small-world index.
    Hnsw,
}

impl KnnChoice {
    /// The command-line token for this backend; `parse(token())` round-trips.
    /// The ECO workspace manifest persists this so `cirstag diff` rebuilds
    /// the exact analyze-time configuration.
    pub fn token(self) -> &'static str {
        match self {
            KnnChoice::Auto => "auto",
            KnnChoice::Exact => "exact",
            KnnChoice::RpForest => "rp-forest",
            KnnChoice::Hnsw => "hnsw",
        }
    }

    pub(crate) fn parse(s: &str) -> Result<KnnChoice, CliError> {
        match s {
            "auto" => Ok(KnnChoice::Auto),
            "exact" => Ok(KnnChoice::Exact),
            "rp-forest" => Ok(KnnChoice::RpForest),
            "hnsw" => Ok(KnnChoice::Hnsw),
            _ => Err(CliError::new(
                "--knn expects one of auto, exact, rp-forest, hnsw",
            )),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `cirstag generate --gates N [--seed S] <out.cir>`
    Generate {
        /// Gate count.
        gates: usize,
        /// Generator seed.
        seed: u64,
        /// Output netlist path.
        out: String,
    },
    /// `cirstag sta <netlist>`
    Sta {
        /// Netlist path.
        netlist: String,
    },
    /// `cirstag analyze <netlist> [--out report.json] [--epochs N] [--top F]
    /// [--threads T] [--strict|--best-effort] [--cache-dir DIR]
    /// [--partitions N]`
    Analyze {
        /// Netlist path.
        netlist: String,
        /// Optional JSON report destination.
        out: Option<String>,
        /// GNN training epochs.
        epochs: usize,
        /// Fraction reported as "most unstable".
        top: f64,
        /// Worker threads for the analysis pipeline (`0` = all cores).
        threads: usize,
        /// Run the pipeline under the best-effort failure policy: climb the
        /// fallback ladders and finish degraded (exit code 2) instead of
        /// failing on the first stage error.
        best_effort: bool,
        /// Optional on-disk artifact-cache directory; repeated runs with the
        /// same inputs and config replay cached stage artifacts from here.
        cache_dir: Option<String>,
        /// Neighbor-search backend for the Phase-2 manifold graphs.
        knn: KnnChoice,
        /// Partition the design into this many regions and run the
        /// partition-scoped pipeline, writing an ECO workspace (manifest +
        /// segmented artifact cache) that `cirstag diff` replays. Requires
        /// `--cache-dir`; the count is validated against the design size.
        partitions: Option<usize>,
    },
    /// `cirstag diff --workspace DIR (--edited edited.cir | --delta ops.json)
    /// [--out report.json] [--threads T] [--strict|--best-effort] [--cold]`
    Diff {
        /// ECO workspace directory written by `analyze --partitions`.
        workspace: String,
        /// Edited netlist path (must preserve the pin count).
        edited: Option<String>,
        /// Netlist-delta ops file (`cirstag-delta/v1` JSON).
        delta: Option<String>,
        /// Optional JSON destination for the deterministic ECO report.
        out: Option<String>,
        /// Worker threads for the analysis pipeline (`0` = all cores).
        threads: usize,
        /// Failure-policy override; `None` inherits the workspace policy.
        best_effort: Option<bool>,
        /// Ignore the segmented disk cache and recompute every partition
        /// (reference run for bit-identity and speedup checks).
        cold: bool,
    },
    /// `cirstag sweep <netlist> [--dmd-s LIST] [--out reports.json]
    /// [--epochs N] [--threads T] [--strict|--best-effort] [--cache-dir DIR]
    /// [--knn METHOD]`
    Sweep {
        /// Netlist path.
        netlist: String,
        /// `num_eigenpairs` (DMD subspace size `s`) values to sweep.
        dmd_s: Vec<usize>,
        /// Optional JSON destination for the array of reports.
        out: Option<String>,
        /// GNN training epochs.
        epochs: usize,
        /// Worker threads for the analysis pipeline (`0` = all cores).
        threads: usize,
        /// Best-effort failure policy (see `analyze`).
        best_effort: bool,
        /// Optional on-disk artifact-cache directory shared across the sweep.
        cache_dir: Option<String>,
        /// Neighbor-search backend for the Phase-2 manifold graphs.
        knn: KnnChoice,
    },
    /// `cirstag dot <netlist> [--scores report.json]`
    Dot {
        /// Netlist path.
        netlist: String,
        /// Optional JSON report whose scores drive the heat map.
        scores: Option<String>,
    },
    /// `cirstag serve [--addr HOST:PORT] [--workers N] [--queue N]
    /// [--deadline-ms MS] [--strict|--best-effort] [--cache-dir DIR]
    /// [--port-file PATH]`
    Serve {
        /// Listen address; port `0` picks an ephemeral port.
        addr: String,
        /// Worker threads executing admitted analyses.
        workers: usize,
        /// Admission-queue capacity; deeper backlogs are shed with `503`.
        queue: usize,
        /// Default per-request deadline for requests without one.
        deadline_ms: Option<u64>,
        /// Base failure policy for requests without a `best_effort` field.
        best_effort: bool,
        /// Optional on-disk artifact-cache directory shared by all tenants.
        cache_dir: Option<String>,
        /// Write the bound address here after startup (ephemeral-port
        /// discovery for scripts).
        port_file: Option<String>,
    },
    /// `cirstag load <netlist> --addr HOST:PORT [--requests N] [--clients N]
    /// [--epochs N] [--deadline-ms MS] [--best-effort] [--shutdown]`
    Load {
        /// Netlist sent with every `analyze` request.
        netlist: String,
        /// Daemon address to drive.
        addr: String,
        /// Total requests across all clients.
        requests: usize,
        /// Concurrent client connections.
        clients: usize,
        /// GNN training epochs requested per analysis.
        epochs: usize,
        /// Per-request deadline.
        deadline_ms: Option<u64>,
        /// Request the best-effort failure policy.
        best_effort: bool,
        /// Send a graceful `shutdown` to the daemon after the run.
        shutdown: bool,
    },
    /// `cirstag help` or `--help`.
    Help,
}

/// Usage text shown by `help` and on parse errors.
pub const USAGE: &str = "\
cirstag — circuit stability analysis on graph-based manifolds

USAGE:
  cirstag generate --gates N [--seed S] <out.cir>   write a synthetic benchmark
  cirstag sta <netlist>                             pre-routing timing report
  cirstag analyze <netlist> [--out report.json]     CirSTAG stability scores
                            [--epochs N] [--top F]
                            [--threads T]           (0 = all cores; results
                                                     are thread-count independent)
                            [--strict]              fail on the first stage error
                                                     (default)
                            [--best-effort]         degrade through fallback
                                                     ladders instead of failing;
                                                     exits 2 when degraded
                            [--cache-dir DIR]       persist stage artifacts and
                                                     replay them on re-runs
                            [--knn METHOD]          Phase-2 neighbor search:
                                                     auto (default), exact,
                                                     rp-forest, or hnsw
                            [--partitions N]        partition-scoped run; writes
                                                     an ECO workspace (requires
                                                     --cache-dir) for diff
  cirstag diff --workspace DIR                      incremental ECO re-analysis:
               (--edited e.cir | --delta ops.json)  re-score an edited design,
               [--out report.json] [--threads T]    recomputing only dirty
               [--strict|--best-effort] [--cold]    partitions (+halo) against
                                                    the workspace cache; --cold
                                                    recomputes everything as a
                                                    bit-identity reference
  cirstag sweep <netlist> [--dmd-s 5,10,15,20,25]   analyze once per DMD
                          [--out reports.json]      subspace size s, replaying
                          [--epochs N] [--threads T] cached Phase-1/2 artifacts
                          [--strict|--best-effort]  across configs
                          [--cache-dir DIR] [--knn METHOD]
  cirstag dot <netlist> [--scores report.json]      Graphviz DOT of the pin graph
  cirstag serve [--addr 127.0.0.1:0] [--workers N]  resident analysis daemon
                [--queue N] [--deadline-ms MS]      speaking NDJSON over TCP
                [--strict|--best-effort]            (verbs: analyze, sweep, delta,
                [--cache-dir DIR]                   health, stats, shutdown);
                [--port-file PATH]                  sheds load past the queue
                                                    bound, respawns panicked
                                                    workers, degrades to
                                                    best-effort under overload
  cirstag load <netlist> --addr HOST:PORT           drive a daemon and report
                [--requests N] [--clients N]        the answer mix and latency
                [--epochs N] [--deadline-ms MS]     percentiles; --shutdown
                [--best-effort] [--shutdown]        stops the daemon afterwards
  cirstag help                                      this message
";

/// Parses `args` (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a usage hint for unknown subcommands, missing
/// values or unparsable numbers.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let rest: Vec<&String> = it.collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let mut gates = None;
            let mut seed = 1u64;
            let mut out = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--gates" => {
                        gates =
                            Some(value(&rest, &mut i, "--gates")?.parse().map_err(|_| {
                                CliError::new("--gates expects a positive integer")
                            })?);
                    }
                    "--seed" => {
                        seed = value(&rest, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| CliError::new("--seed expects an integer"))?;
                    }
                    other if !other.starts_with("--") => {
                        out = Some(other.to_string());
                    }
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            Ok(Command::Generate {
                gates: gates
                    .ok_or_else(|| CliError::new(format!("--gates is required\n{USAGE}")))?,
                seed,
                out: out
                    .ok_or_else(|| CliError::new(format!("output path is required\n{USAGE}")))?,
            })
        }
        "sta" => {
            let netlist = rest
                .first()
                .ok_or_else(|| CliError::new(format!("netlist path is required\n{USAGE}")))?;
            Ok(Command::Sta {
                netlist: netlist.to_string(),
            })
        }
        "analyze" => {
            let mut netlist = None;
            let mut out = None;
            let mut epochs = 200usize;
            let mut top = 0.10f64;
            let mut threads = 0usize;
            let mut best_effort = false;
            let mut cache_dir = None;
            let mut knn = KnnChoice::Auto;
            let mut partitions = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--out" => out = Some(value(&rest, &mut i, "--out")?.to_string()),
                    "--strict" => best_effort = false,
                    "--best-effort" => best_effort = true,
                    "--cache-dir" => {
                        cache_dir = Some(value(&rest, &mut i, "--cache-dir")?.to_string());
                    }
                    "--knn" => knn = KnnChoice::parse(value(&rest, &mut i, "--knn")?)?,
                    "--threads" => {
                        threads = value(&rest, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| CliError::new("--threads expects an integer"))?;
                    }
                    "--epochs" => {
                        epochs = value(&rest, &mut i, "--epochs")?
                            .parse()
                            .map_err(|_| CliError::new("--epochs expects an integer"))?;
                    }
                    "--partitions" => {
                        // `0` and absurd counts pass the parser; the command
                        // layer validates them against the design size so the
                        // error can be typed by the partitioner itself.
                        partitions = Some(
                            value(&rest, &mut i, "--partitions")?
                                .parse()
                                .map_err(|_| CliError::new("--partitions expects an integer"))?,
                        );
                    }
                    "--top" => {
                        top = value(&rest, &mut i, "--top")?
                            .parse()
                            .map_err(|_| CliError::new("--top expects a fraction in (0, 1]"))?;
                        if !(top > 0.0 && top <= 1.0) {
                            return Err(CliError::new("--top must lie in (0, 1]"));
                        }
                    }
                    other if !other.starts_with("--") => netlist = Some(other.to_string()),
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            Ok(Command::Analyze {
                netlist: netlist
                    .ok_or_else(|| CliError::new(format!("netlist path is required\n{USAGE}")))?,
                out,
                epochs,
                top,
                threads,
                best_effort,
                cache_dir,
                knn,
                partitions,
            })
        }
        "diff" => {
            let mut workspace = None;
            let mut edited = None;
            let mut delta = None;
            let mut out = None;
            let mut threads = 0usize;
            let mut best_effort = None;
            let mut cold = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--workspace" => {
                        workspace = Some(value(&rest, &mut i, "--workspace")?.to_string());
                    }
                    "--edited" => edited = Some(value(&rest, &mut i, "--edited")?.to_string()),
                    "--delta" => delta = Some(value(&rest, &mut i, "--delta")?.to_string()),
                    "--out" => out = Some(value(&rest, &mut i, "--out")?.to_string()),
                    "--strict" => best_effort = Some(false),
                    "--best-effort" => best_effort = Some(true),
                    "--cold" => cold = true,
                    "--threads" => {
                        threads = value(&rest, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| CliError::new("--threads expects an integer"))?;
                    }
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            if edited.is_some() == delta.is_some() {
                return Err(CliError::new(format!(
                    "diff needs exactly one edit source: --edited <netlist> or --delta <ops.json>\n{USAGE}"
                )));
            }
            Ok(Command::Diff {
                workspace: workspace
                    .ok_or_else(|| CliError::new(format!("--workspace is required\n{USAGE}")))?,
                edited,
                delta,
                out,
                threads,
                best_effort,
                cold,
            })
        }
        "sweep" => {
            let mut netlist = None;
            let mut out = None;
            let mut epochs = 200usize;
            let mut threads = 0usize;
            let mut best_effort = false;
            let mut cache_dir = None;
            let mut knn = KnnChoice::Auto;
            let mut dmd_s: Vec<usize> = vec![5, 10, 15, 20, 25];
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--out" => out = Some(value(&rest, &mut i, "--out")?.to_string()),
                    "--strict" => best_effort = false,
                    "--best-effort" => best_effort = true,
                    "--cache-dir" => {
                        cache_dir = Some(value(&rest, &mut i, "--cache-dir")?.to_string());
                    }
                    "--knn" => knn = KnnChoice::parse(value(&rest, &mut i, "--knn")?)?,
                    "--threads" => {
                        threads = value(&rest, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| CliError::new("--threads expects an integer"))?;
                    }
                    "--epochs" => {
                        epochs = value(&rest, &mut i, "--epochs")?
                            .parse()
                            .map_err(|_| CliError::new("--epochs expects an integer"))?;
                    }
                    "--dmd-s" => {
                        dmd_s = value(&rest, &mut i, "--dmd-s")?
                            .split(',')
                            .map(|t| t.trim().parse::<usize>())
                            .collect::<Result<Vec<usize>, _>>()
                            .map_err(|_| {
                                CliError::new(
                                    "--dmd-s expects a comma-separated list of positive integers",
                                )
                            })?;
                        if dmd_s.is_empty() || dmd_s.contains(&0) {
                            return Err(CliError::new("--dmd-s values must be positive integers"));
                        }
                    }
                    other if !other.starts_with("--") => netlist = Some(other.to_string()),
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            Ok(Command::Sweep {
                netlist: netlist
                    .ok_or_else(|| CliError::new(format!("netlist path is required\n{USAGE}")))?,
                dmd_s,
                out,
                epochs,
                threads,
                best_effort,
                cache_dir,
                knn,
            })
        }
        "dot" => {
            let mut netlist = None;
            let mut scores = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--scores" => scores = Some(value(&rest, &mut i, "--scores")?.to_string()),
                    other if !other.starts_with("--") => netlist = Some(other.to_string()),
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            Ok(Command::Dot {
                netlist: netlist
                    .ok_or_else(|| CliError::new(format!("netlist path is required\n{USAGE}")))?,
                scores,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:0".to_string();
            let mut workers = 4usize;
            let mut queue = 64usize;
            let mut deadline_ms = None;
            let mut best_effort = false;
            let mut cache_dir = None;
            let mut port_file = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--addr" => addr = value(&rest, &mut i, "--addr")?.to_string(),
                    "--strict" => best_effort = false,
                    "--best-effort" => best_effort = true,
                    "--cache-dir" => {
                        cache_dir = Some(value(&rest, &mut i, "--cache-dir")?.to_string());
                    }
                    "--port-file" => {
                        port_file = Some(value(&rest, &mut i, "--port-file")?.to_string());
                    }
                    "--workers" => {
                        workers = value(&rest, &mut i, "--workers")?
                            .parse()
                            .map_err(|_| CliError::new("--workers expects a positive integer"))?;
                        if workers == 0 {
                            return Err(CliError::new("--workers must be at least 1"));
                        }
                    }
                    "--queue" => {
                        queue = value(&rest, &mut i, "--queue")?
                            .parse()
                            .map_err(|_| CliError::new("--queue expects a positive integer"))?;
                        if queue == 0 {
                            return Err(CliError::new("--queue must be at least 1"));
                        }
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(
                            value(&rest, &mut i, "--deadline-ms")?
                                .parse()
                                .map_err(|_| CliError::new("--deadline-ms expects an integer"))?,
                        );
                    }
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            Ok(Command::Serve {
                addr,
                workers,
                queue,
                deadline_ms,
                best_effort,
                cache_dir,
                port_file,
            })
        }
        "load" => {
            let mut netlist = None;
            let mut addr = None;
            let mut requests = 50usize;
            let mut clients = 8usize;
            let mut epochs = 40usize;
            let mut deadline_ms = None;
            let mut best_effort = false;
            let mut shutdown = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--addr" => addr = Some(value(&rest, &mut i, "--addr")?.to_string()),
                    "--best-effort" => best_effort = true,
                    "--shutdown" => shutdown = true,
                    "--requests" => {
                        requests = value(&rest, &mut i, "--requests")?
                            .parse()
                            .map_err(|_| CliError::new("--requests expects a positive integer"))?;
                    }
                    "--clients" => {
                        clients = value(&rest, &mut i, "--clients")?
                            .parse()
                            .map_err(|_| CliError::new("--clients expects a positive integer"))?;
                        if clients == 0 {
                            return Err(CliError::new("--clients must be at least 1"));
                        }
                    }
                    "--epochs" => {
                        epochs = value(&rest, &mut i, "--epochs")?
                            .parse()
                            .map_err(|_| CliError::new("--epochs expects an integer"))?;
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(
                            value(&rest, &mut i, "--deadline-ms")?
                                .parse()
                                .map_err(|_| CliError::new("--deadline-ms expects an integer"))?,
                        );
                    }
                    other if !other.starts_with("--") => netlist = Some(other.to_string()),
                    other => return Err(CliError::new(format!("unknown flag {other}\n{USAGE}"))),
                }
                i += 1;
            }
            Ok(Command::Load {
                netlist: netlist
                    .ok_or_else(|| CliError::new(format!("netlist path is required\n{USAGE}")))?,
                addr: addr.ok_or_else(|| CliError::new(format!("--addr is required\n{USAGE}")))?,
                requests,
                clients,
                epochs,
                deadline_ms,
                best_effort,
                shutdown,
            })
        }
        other => Err(CliError::new(format!(
            "unknown subcommand {other}\n{USAGE}"
        ))),
    }
}

fn value<'a>(rest: &'a [&'a String], i: &mut usize, flag: &str) -> Result<&'a str, CliError> {
    *i += 1;
    rest.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::new(format!("{flag} expects a value")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&strs(&[
            "generate", "--gates", "500", "--seed", "7", "o.cir",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                gates: 500,
                seed: 7,
                out: "o.cir".to_string()
            }
        );
    }

    #[test]
    fn generate_requires_gates_and_out() {
        assert!(parse_args(&strs(&["generate", "o.cir"])).is_err());
        assert!(parse_args(&strs(&["generate", "--gates", "10"])).is_err());
    }

    #[test]
    fn parses_analyze_with_defaults() {
        let cmd = parse_args(&strs(&["analyze", "d.cir"])).unwrap();
        match cmd {
            Command::Analyze {
                netlist,
                out,
                epochs,
                top,
                threads,
                best_effort,
                cache_dir,
                knn,
                partitions,
            } => {
                assert_eq!(netlist, "d.cir");
                assert!(out.is_none());
                assert_eq!(epochs, 200);
                assert!((top - 0.10).abs() < 1e-12);
                assert_eq!(threads, 0);
                assert!(!best_effort, "strict is the default policy");
                assert!(cache_dir.is_none(), "caching is opt-in");
                assert_eq!(knn, KnnChoice::Auto, "backend heuristic is the default");
                assert!(partitions.is_none(), "whole-design analysis is the default");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn analyze_parses_cache_dir() {
        let cmd = parse_args(&strs(&["analyze", "d.cir", "--cache-dir", "/tmp/c"])).unwrap();
        match cmd {
            Command::Analyze { cache_dir, .. } => {
                assert_eq!(cache_dir.as_deref(), Some("/tmp/c"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strs(&["analyze", "d.cir", "--cache-dir"])).is_err());
    }

    #[test]
    fn parses_sweep_with_defaults() {
        let cmd = parse_args(&strs(&["sweep", "d.cir"])).unwrap();
        match cmd {
            Command::Sweep {
                netlist,
                dmd_s,
                out,
                epochs,
                threads,
                best_effort,
                cache_dir,
                knn,
            } => {
                assert_eq!(netlist, "d.cir");
                assert_eq!(dmd_s, vec![5, 10, 15, 20, 25]);
                assert!(out.is_none());
                assert_eq!(epochs, 200);
                assert_eq!(threads, 0);
                assert!(!best_effort);
                assert!(cache_dir.is_none());
                assert_eq!(knn, KnnChoice::Auto);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sweep_parses_dmd_s_list() {
        let cmd = parse_args(&strs(&["sweep", "d.cir", "--dmd-s", "4, 8,12"])).unwrap();
        match cmd {
            Command::Sweep { dmd_s, .. } => assert_eq!(dmd_s, vec![4, 8, 12]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strs(&["sweep", "d.cir", "--dmd-s", "4,x"])).is_err());
        assert!(parse_args(&strs(&["sweep", "d.cir", "--dmd-s", "4,0"])).is_err());
        assert!(parse_args(&strs(&["sweep", "d.cir", "--dmd-s", ""])).is_err());
        assert!(parse_args(&strs(&["sweep", "d.cir", "--dmd-s"])).is_err());
    }

    #[test]
    fn parses_knn_backend() {
        for (token, want) in [
            ("auto", KnnChoice::Auto),
            ("exact", KnnChoice::Exact),
            ("rp-forest", KnnChoice::RpForest),
            ("hnsw", KnnChoice::Hnsw),
        ] {
            let cmd = parse_args(&strs(&["analyze", "d.cir", "--knn", token])).unwrap();
            match cmd {
                Command::Analyze { knn, .. } => assert_eq!(knn, want),
                other => panic!("unexpected {other:?}"),
            }
        }
        let cmd = parse_args(&strs(&["sweep", "d.cir", "--knn", "hnsw"])).unwrap();
        match cmd {
            Command::Sweep { knn, .. } => assert_eq!(knn, KnnChoice::Hnsw),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strs(&["analyze", "d.cir", "--knn", "kdtree"])).is_err());
        assert!(parse_args(&strs(&["analyze", "d.cir", "--knn"])).is_err());
    }

    #[test]
    fn analyze_parses_partitions() {
        let cmd = parse_args(&strs(&["analyze", "d.cir", "--partitions", "8"])).unwrap();
        match cmd {
            Command::Analyze { partitions, .. } => assert_eq!(partitions, Some(8)),
            other => panic!("unexpected {other:?}"),
        }
        // `0` parses; the command layer rejects it with the partitioner's
        // typed error once the design size is known.
        let cmd = parse_args(&strs(&["analyze", "d.cir", "--partitions", "0"])).unwrap();
        match cmd {
            Command::Analyze { partitions, .. } => assert_eq!(partitions, Some(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strs(&["analyze", "d.cir", "--partitions", "x"])).is_err());
        assert!(parse_args(&strs(&["analyze", "d.cir", "--partitions"])).is_err());
    }

    #[test]
    fn parses_diff() {
        let cmd = parse_args(&strs(&[
            "diff",
            "--workspace",
            "/tmp/ws",
            "--delta",
            "ops.json",
            "--out",
            "r.json",
            "--threads",
            "1",
            "--cold",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Diff {
                workspace: "/tmp/ws".to_string(),
                edited: None,
                delta: Some("ops.json".to_string()),
                out: Some("r.json".to_string()),
                threads: 1,
                best_effort: None,
                cold: true,
            }
        );
        let cmd = parse_args(&strs(&[
            "diff",
            "--workspace",
            "/tmp/ws",
            "--edited",
            "e.cir",
            "--best-effort",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Diff {
                workspace: "/tmp/ws".to_string(),
                edited: Some("e.cir".to_string()),
                delta: None,
                out: None,
                threads: 0,
                best_effort: Some(true),
                cold: false,
            }
        );
    }

    #[test]
    fn diff_requires_workspace_and_one_edit_source() {
        assert!(parse_args(&strs(&["diff", "--edited", "e.cir"])).is_err());
        assert!(parse_args(&strs(&["diff", "--workspace", "/tmp/ws"])).is_err());
        assert!(parse_args(&strs(&[
            "diff",
            "--workspace",
            "/tmp/ws",
            "--edited",
            "e.cir",
            "--delta",
            "d.json",
        ]))
        .is_err());
    }

    #[test]
    fn knn_tokens_roundtrip() {
        for choice in [
            KnnChoice::Auto,
            KnnChoice::Exact,
            KnnChoice::RpForest,
            KnnChoice::Hnsw,
        ] {
            assert_eq!(KnnChoice::parse(choice.token()).unwrap(), choice);
        }
    }

    #[test]
    fn analyze_validates_top() {
        assert!(parse_args(&strs(&["analyze", "d.cir", "--top", "1.5"])).is_err());
        assert!(parse_args(&strs(&["analyze", "d.cir", "--top", "0"])).is_err());
    }

    #[test]
    fn analyze_parses_threads() {
        let cmd = parse_args(&strs(&["analyze", "d.cir", "--threads", "4"])).unwrap();
        match cmd {
            Command::Analyze { threads, .. } => assert_eq!(threads, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strs(&["analyze", "d.cir", "--threads", "x"])).is_err());
        assert!(parse_args(&strs(&["analyze", "d.cir", "--threads"])).is_err());
    }

    #[test]
    fn analyze_parses_failure_policy() {
        let cmd = parse_args(&strs(&["analyze", "d.cir", "--best-effort"])).unwrap();
        match cmd {
            Command::Analyze { best_effort, .. } => assert!(best_effort),
            other => panic!("unexpected {other:?}"),
        }
        // --strict wins when it comes last; flags are processed in order.
        let cmd = parse_args(&strs(&["analyze", "d.cir", "--best-effort", "--strict"])).unwrap();
        match cmd {
            Command::Analyze { best_effort, .. } => assert!(!best_effort),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_sta_and_dot() {
        assert_eq!(
            parse_args(&strs(&["sta", "d.cir"])).unwrap(),
            Command::Sta {
                netlist: "d.cir".to_string()
            }
        );
        assert_eq!(
            parse_args(&strs(&["dot", "d.cir", "--scores", "r.json"])).unwrap(),
            Command::Dot {
                netlist: "d.cir".to_string(),
                scores: Some("r.json".to_string())
            }
        );
    }

    #[test]
    fn help_and_errors() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["--help"])).unwrap(), Command::Help);
        assert!(parse_args(&strs(&["bogus"])).is_err());
        assert!(parse_args(&strs(&["analyze", "d.cir", "--bad-flag", "x"])).is_err());
    }

    #[test]
    fn missing_flag_value_rejected() {
        assert!(parse_args(&strs(&["generate", "--gates"])).is_err());
        assert!(parse_args(&strs(&["analyze", "d.cir", "--out"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults() {
        let cmd = parse_args(&strs(&["serve"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:0".to_string(),
                workers: 4,
                queue: 64,
                deadline_ms: None,
                best_effort: false,
                cache_dir: None,
                port_file: None,
            }
        );
    }

    #[test]
    fn parses_serve_flags() {
        let cmd = parse_args(&strs(&[
            "serve",
            "--addr",
            "127.0.0.1:7878",
            "--workers",
            "2",
            "--queue",
            "8",
            "--deadline-ms",
            "250",
            "--best-effort",
            "--cache-dir",
            "/tmp/c",
            "--port-file",
            "/tmp/p",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:7878".to_string(),
                workers: 2,
                queue: 8,
                deadline_ms: Some(250),
                best_effort: true,
                cache_dir: Some("/tmp/c".to_string()),
                port_file: Some("/tmp/p".to_string()),
            }
        );
        assert!(parse_args(&strs(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&strs(&["serve", "--queue", "0"])).is_err());
        assert!(parse_args(&strs(&["serve", "positional"])).is_err());
    }

    #[test]
    fn parses_load() {
        let cmd = parse_args(&strs(&[
            "load",
            "d.cir",
            "--addr",
            "127.0.0.1:7878",
            "--requests",
            "100",
            "--clients",
            "16",
            "--deadline-ms",
            "500",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Load {
                netlist: "d.cir".to_string(),
                addr: "127.0.0.1:7878".to_string(),
                requests: 100,
                clients: 16,
                epochs: 40,
                deadline_ms: Some(500),
                best_effort: false,
                shutdown: true,
            }
        );
    }

    #[test]
    fn load_requires_netlist_and_addr() {
        assert!(parse_args(&strs(&["load", "--addr", "127.0.0.1:1"])).is_err());
        assert!(parse_args(&strs(&["load", "d.cir"])).is_err());
        assert!(parse_args(&strs(&["load", "d.cir", "--clients", "0"])).is_err());
    }
}
