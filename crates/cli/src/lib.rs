//! Command-line front-end for the CirSTAG stack.
//!
//! The `cirstag` binary wraps the library pipeline behind four subcommands:
//!
//! ```text
//! cirstag generate --gates 500 --seed 7 out.cir     # synthetic benchmark
//! cirstag sta design.cir                            # timing report
//! cirstag analyze design.cir --out report.json      # stability scores
//! cirstag dot design.cir --scores report.json       # heat-mapped DOT graph
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency) and exposed here so
//! it can be unit-tested; `src/bin/cirstag.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{parse_args, Command, KnnChoice};
pub use commands::{run, RunStatus};

/// Maps a completed run's status to the process exit code: `0` for
/// [`RunStatus::Clean`], `2` for [`RunStatus::Degraded`]. Errors (including
/// argument parse failures) exit `1`.
pub fn exit_code(status: RunStatus) -> u8 {
    match status {
        RunStatus::Clean => 0,
        RunStatus::Degraded => 2,
    }
}

/// CLI error: a message for the user plus the suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

macro_rules! from_error {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError { message: e.to_string() }
            }
        })+
    };
}

from_error!(
    std::io::Error,
    cirstag::CirStagError,
    cirstag_circuit::CircuitError,
    cirstag_gnn::GnnError,
    cirstag_graph::GraphError,
    cirstag_linalg::LinalgError,
);
