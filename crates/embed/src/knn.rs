//! k-nearest-neighbor graph construction over embedding rows.

use crate::EmbedError;
use cirstag_graph::Graph;
use cirstag_linalg::{par, vecops, DenseMatrix};
use std::collections::BTreeMap;

/// Neighbor-search strategy for [`knn_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMethod {
    /// Exact all-pairs search, `O(n²·d)`. Use for < ~5k points or in tests.
    Exact,
    /// Approximate search with a forest of random-projection trees
    /// (annoy-style splits on the direction between two random points).
    /// `O(n log n)` construction, recall controlled by `num_trees`.
    RpForest {
        /// Number of trees; more trees = higher recall.
        num_trees: usize,
        /// Maximum leaf size; candidates are leaf co-members.
        leaf_size: usize,
    },
    /// Approximate search through a deterministic HNSW index
    /// ([`crate::HnswIndex`]): `O(n log n)` construction, per-query search
    /// parallelized over the pool. The method of choice at ≥ ~50k points.
    Hnsw {
        /// Max links per node on layers ≥ 1 (layer 0 allows `2m`).
        m: usize,
        /// Beam width while inserting; higher = better graph, slower build.
        ef_construction: usize,
        /// Query beam width; the effective beam is `max(ef_search, k + 1)`.
        ef_search: usize,
    },
}

impl KnnMethod {
    /// The default HNSW configuration ([`crate::HnswParams::default`]),
    /// balancing ≥ 0.95 recall@k against build cost for circuit embeddings.
    pub fn hnsw_default() -> KnnMethod {
        let p = crate::HnswParams::default();
        KnnMethod::Hnsw {
            m: p.m,
            ef_construction: p.ef_construction,
            ef_search: p.ef_search,
        }
    }
}

/// Diagnostics from an approximate neighbor search: which method ran and
/// how large the achieved per-point candidate pools were, so downstream
/// reports can distinguish approximate runs from exact ones and judge their
/// recall headroom. `None` is returned for the exact method.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnStats {
    /// Method label: `"rp-forest"` or `"hnsw"`.
    pub method: &'static str,
    /// Neighbors requested per point.
    pub requested_k: usize,
    /// Smallest candidate pool any point saw before truncation to `k`.
    pub min_candidates: usize,
    /// Mean candidate-pool size across points.
    pub mean_candidates: f64,
}

impl KnnStats {
    fn from_pools(method: &'static str, requested_k: usize, pools: &[usize]) -> KnnStats {
        let min_candidates = pools.iter().copied().min().unwrap_or(0);
        let mean_candidates = if pools.is_empty() {
            0.0
        } else {
            pools.iter().sum::<usize>() as f64 / pools.len() as f64
        };
        KnnStats {
            method,
            requested_k,
            min_candidates,
            mean_candidates,
        }
    }
}

/// Options for [`knn_graph`].
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Search strategy.
    pub method: KnnMethod,
    /// Seed for the deterministic random-projection splits.
    pub seed: u64,
    /// Small constant added to *median-normalized* squared distances before
    /// inversion, so duplicate points get a large-but-finite weight and the
    /// weight ratio across the graph stays bounded by `~1/ε` (keeping the
    /// manifold Laplacian well-conditioned for the solvers downstream).
    pub weight_epsilon: f64,
    /// When `true` (default), a minimum-spanning backbone over component
    /// representatives is added so the resulting manifold graph is connected
    /// — required by the effective-resistance machinery downstream.
    pub ensure_connected: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            method: KnnMethod::Exact,
            seed: 0x6E4E,
            weight_epsilon: 1e-3,
            ensure_connected: true,
        }
    }
}

/// Builds the symmetrized kNN graph of the rows of `points`.
///
/// Edge `(p, q)` is present when `q` is among `p`'s `k` nearest neighbors
/// *or* vice versa, with weight `w_pq = 1 / (d²_pq / d²_med + ε)`, where
/// `d²_med` is the median squared neighbor distance. Up to the global
/// `d²_med` scaling this is the inverse-squared-distance weight for which
/// the PGM gradient identity of Eq. (7), `∂F₂/∂w_pq = ‖Xᵀe_pq‖² = 1/w_pq`,
/// holds; the scaling leaves the spectral-distortion scores `η = w·R^eff`
/// and all DMD rankings unchanged while keeping the manifold Laplacian
/// well-conditioned.
///
/// # Errors
///
/// Returns [`EmbedError::InvalidArgument`] when `k == 0`, `k ≥ n`, or the
/// input contains non-finite values.
pub fn knn_graph(points: &DenseMatrix, k: usize, config: &KnnConfig) -> Result<Graph, EmbedError> {
    knn_graph_with_stats(points, k, config).map(|(g, _)| g)
}

/// [`knn_graph`] plus the approximate-search diagnostics ([`KnnStats`],
/// `None` for [`KnnMethod::Exact`]) so callers can record that a run was
/// approximate and how much candidate headroom it had.
///
/// # Errors
///
/// Same contract as [`knn_graph`].
pub fn knn_graph_with_stats(
    points: &DenseMatrix,
    k: usize,
    config: &KnnConfig,
) -> Result<(Graph, Option<KnnStats>), EmbedError> {
    let n = points.nrows();
    if n == 0 {
        return Ok((Graph::new(0), None));
    }
    if k == 0 || k >= n {
        return Err(EmbedError::InvalidArgument {
            reason: format!("k = {k} must be in 1..{n}"),
        });
    }
    if !points.all_finite() {
        return Err(EmbedError::InvalidArgument {
            reason: "points contain non-finite values".to_string(),
        });
    }
    let (neighbor_lists, stats) = match config.method {
        KnnMethod::Exact => (exact_knn(points, k), None),
        KnnMethod::RpForest {
            num_trees,
            leaf_size,
        } => {
            let (lists, pools) = rp_forest_knn(
                points,
                k,
                num_trees.max(1),
                leaf_size.max(k + 1),
                config.seed,
            );
            let stats = KnnStats::from_pools("rp-forest", k, &pools);
            (lists, Some(stats))
        }
        KnnMethod::Hnsw {
            m,
            ef_construction,
            ef_search,
        } => {
            let (lists, pools) = hnsw_knn(points, k, m, ef_construction, ef_search, config.seed)?;
            let stats = KnnStats::from_pools("hnsw", k, &pools);
            (lists, Some(stats))
        }
    };

    // Median squared neighbor distance for scale normalization.
    let mut all_d2: Vec<f64> = neighbor_lists
        .iter()
        .flat_map(|l| l.iter().map(|&(_, d2)| d2))
        .filter(|&d2| d2 > 0.0)
        .collect();
    let med = if all_d2.is_empty() {
        1.0
    } else {
        let mid = all_d2.len() / 2;
        all_d2.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        all_d2[mid]
    };
    // Symmetrize as a union, deduplicating before insertion so the
    // parallel-edge merging of `Graph` does not double weights. A `BTreeMap`
    // keyed on `(min, max)` both deduplicates and yields the edges already in
    // the deterministic lexicographic order the graph is built in.
    let mut edges: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (p, list) in neighbor_lists.iter().enumerate() {
        for &(q, d2) in list {
            let key = if p < q { (p, q) } else { (q, p) };
            // Clamp the normalized distance so the weight range stays within
            // [~1e-2, 1/ε]: enough resolution for the η ranking, bounded
            // conditioning for the solvers.
            let x = (d2 / med).min(1e2);
            let w = 1.0 / (x + config.weight_epsilon);
            edges.entry(key).or_insert(w);
        }
    }
    let mut g = Graph::new(n);
    for ((u, v), w) in edges {
        g.add_edge(u, v, w)?;
    }

    if config.ensure_connected && !g.is_connected() {
        connect_components(&mut g, points, med, config.weight_epsilon)?;
    }
    Ok((g, stats))
}

/// Points per worker chunk in the exact search; large enough to amortize the
/// scratch buffer, small enough to load-balance across threads.
const EXACT_KNN_CHUNK: usize = 16;

fn exact_knn(points: &DenseMatrix, k: usize) -> Vec<Vec<(usize, f64)>> {
    let n = points.nrows();
    // Caching the squared row norms turns every pairwise distance into a
    // single dot product via ‖p − q‖² = ‖p‖² + ‖q‖² − 2 p·q, cutting the
    // inner-loop flops by a third and skipping the per-pair difference
    // buffer. Floating-point cancellation can push the identity slightly
    // negative for near-duplicate rows, so clamp at zero.
    let norms: Vec<f64> = (0..n)
        .map(|p| vecops::dot(points.row(p), points.row(p)))
        .collect();
    let mut lists: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    // Each point's neighbor list is independent of every other point's, so
    // chunks of points fan out across the thread pool; slot `p` always holds
    // point `p`'s list, keeping the result thread-count-invariant. Chunking
    // (rather than one task per point) lets each worker reuse a single
    // length-`n` distance scratch buffer across all its queries instead of
    // allocating one per point.
    par::chunks_mut(&mut lists, EXACT_KNN_CHUNK, |chunk_idx, chunk| {
        let base = chunk_idx * EXACT_KNN_CHUNK;
        let mut dists: Vec<(usize, f64)> = Vec::with_capacity(n);
        for (offset, slot) in chunk.iter_mut().enumerate() {
            let p = base + offset;
            let rp = points.row(p);
            dists.clear();
            for q in 0..n {
                if q == p {
                    continue;
                }
                let d2 = (norms[p] + norms[q] - 2.0 * vecops::dot(rp, points.row(q))).max(0.0);
                dists.push((q, d2));
            }
            // Select the k nearest in O(n), then order just those k.
            if dists.len() > k {
                dists.select_nth_unstable_by(k - 1, |a, b| a.1.total_cmp(&b.1));
                dists.truncate(k);
            }
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            slot.extend_from_slice(&dists);
        }
    });
    lists
}

pub(crate) struct Splitter {
    state: u64,
}

impl Splitter {
    pub(crate) fn new(seed: u64) -> Self {
        Splitter {
            state: seed ^ 0x9e37_79b9_7f4a_7c15 | 1,
        }
    }
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn pick(&mut self, n: usize) -> usize {
        // cirstag-lint: allow(cast-truncation) -- usize -> u64 is lossless on 64-bit hosts; the modulo keeps the draw in 0..n, back within usize
        (self.next_u64() % n as u64) as usize
    }
}

/// Recursively partitions `items` by annoy-style hyperplanes; leaves become
/// candidate pools.
fn rp_split(
    points: &DenseMatrix,
    items: &mut Vec<usize>,
    leaf_size: usize,
    rng: &mut Splitter,
    leaves: &mut Vec<Vec<usize>>,
    depth: usize,
) {
    if items.len() <= leaf_size || depth > 40 {
        leaves.push(std::mem::take(items));
        return;
    }
    // Direction between two random distinct points.
    let a = items[rng.pick(items.len())];
    let mut b = items[rng.pick(items.len())];
    let mut guard = 0;
    while b == a && guard < 8 {
        b = items[rng.pick(items.len())];
        guard += 1;
    }
    if a == b {
        leaves.push(std::mem::take(items));
        return;
    }
    let dir: Vec<f64> = points
        .row(a)
        .iter()
        .zip(points.row(b))
        .map(|(x, y)| x - y)
        .collect();
    let mut proj: Vec<(usize, f64)> = items
        .iter()
        .map(|&i| (i, vecops::dot(points.row(i), &dir)))
        .collect();
    proj.sort_by(|x, y| x.1.total_cmp(&y.1));
    let mid = proj.len() / 2;
    if mid == 0 || mid == proj.len() {
        leaves.push(std::mem::take(items));
        return;
    }
    let mut left: Vec<usize> = proj[..mid].iter().map(|&(i, _)| i).collect();
    let mut right: Vec<usize> = proj[mid..].iter().map(|&(i, _)| i).collect();
    items.clear();
    rp_split(points, &mut left, leaf_size, rng, leaves, depth + 1);
    rp_split(points, &mut right, leaf_size, rng, leaves, depth + 1);
}

/// Points per worker chunk in the HNSW query fan-out. Sized from `n` alone
/// (never from the thread count, which would be a determinism hazard even
/// though chunking only groups scratch reuse): large enough to amortize the
/// per-chunk scratch, small enough to load-balance.
fn hnsw_chunk_len(n: usize) -> usize {
    (n / 64).clamp(16, 4096)
}

/// Builds a deterministic HNSW index serially, then fans the per-point
/// queries out across the pool: slot `p` always holds point `p`'s list, and
/// each worker chunk reuses one [`crate::HnswScratch`], so results are
/// bit-identical at any thread count and warmed searches allocate nothing.
/// Returns the neighbor lists and the per-point achieved candidate-pool
/// sizes.
#[allow(clippy::type_complexity)]
fn hnsw_knn(
    points: &DenseMatrix,
    k: usize,
    m: usize,
    ef_construction: usize,
    ef_search: usize,
    seed: u64,
) -> Result<(Vec<Vec<(usize, f64)>>, Vec<usize>), EmbedError> {
    let n = points.nrows();
    let params = crate::HnswParams {
        m,
        ef_construction,
        ef_search,
    };
    let index = crate::HnswIndex::build(points, &params, seed)?;
    let ef = ef_search.max(k + 1);
    let chunk_len = hnsw_chunk_len(n);
    let mut slots: Vec<(Vec<(usize, f64)>, usize)> = vec![(Vec::new(), 0); n];
    par::chunks_mut(&mut slots, chunk_len, |chunk_idx, chunk| {
        let base = chunk_idx * chunk_len;
        let mut scratch = index.scratch();
        for (offset, slot) in chunk.iter_mut().enumerate() {
            let p = base + offset;
            slot.0.reserve(k);
            slot.1 = index.knn_into(points, p, k, ef, &mut scratch, &mut slot.0);
        }
    });
    Ok(slots.into_iter().unzip())
}

fn rp_forest_knn(
    points: &DenseMatrix,
    k: usize,
    num_trees: usize,
    leaf_size: usize,
    seed: u64,
) -> (Vec<Vec<(usize, f64)>>, Vec<usize>) {
    let n = points.nrows();
    // Trees are seeded independently, so they build in parallel; the leaf
    // sets are then merged serially in tree order. Per-point candidate lists
    // end up identical to the serial construction because each point's list
    // is sorted and deduplicated before ranking.
    let per_tree_leaves: Vec<Vec<Vec<usize>>> = par::map_indexed(num_trees, |t| {
        // cirstag-lint: allow(cast-truncation) -- tree index: a small loop counter, lossless usize -> u64 on 64-bit hosts
        let mut rng = Splitter::new(seed.wrapping_add(t as u64 * 0x1234_5677));
        let mut all: Vec<usize> = (0..n).collect();
        let mut leaves = Vec::new();
        rp_split(points, &mut all, leaf_size, &mut rng, &mut leaves, 0);
        leaves
    });
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); n];
    for leaves in per_tree_leaves {
        for leaf in leaves {
            for &i in &leaf {
                for &j in &leaf {
                    if i != j {
                        candidates[i].push(j);
                    }
                }
            }
        }
    }
    let ranked: Vec<(Vec<(usize, f64)>, usize)> = par::map_indexed(n, |p| {
        let mut cand = candidates[p].clone();
        cand.sort_unstable();
        cand.dedup();
        let pool = cand.len();
        let mut dists = rank_candidates(points, p, &cand);
        dists.truncate(k);
        (dists, pool)
    });
    ranked.into_iter().unzip()
}

/// Scores `cand` against point `p` and sorts ascending by
/// `(squared distance, id)`. Distances go 4-at-a-time through
/// [`vecops::dist2_sq4`] so the AVX2 kernel (when the `simd` feature is on)
/// accelerates the inner loop bit-identically.
fn rank_candidates(points: &DenseMatrix, p: usize, cand: &[usize]) -> Vec<(usize, f64)> {
    let rp = points.row(p);
    let mut dists: Vec<(usize, f64)> = Vec::with_capacity(cand.len());
    let mut quads = cand.chunks_exact(4);
    for quad in &mut quads {
        let &[q0, q1, q2, q3] = quad else {
            continue; // unreachable: chunks_exact(4) yields length-4 slices
        };
        let d4 = vecops::dist2_sq4(
            rp,
            [
                points.row(q0),
                points.row(q1),
                points.row(q2),
                points.row(q3),
            ],
        );
        for (&q, &d2) in quad.iter().zip(&d4) {
            dists.push((q, d2));
        }
    }
    for &q in quads.remainder() {
        dists.push((q, vecops::dist2_sq(rp, points.row(q))));
    }
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    dists
}

/// Adds a minimum-spanning backbone over component representatives so the
/// graph becomes connected. Representatives are the first node of each
/// component; backbone edges get the usual inverse-squared-distance weight.
fn connect_components(
    g: &mut Graph,
    points: &DenseMatrix,
    med: f64,
    eps: f64,
) -> Result<(), EmbedError> {
    let labels = cirstag_graph::connected_components(g);
    let num_comps = labels.iter().copied().max().map_or(0, |m| m + 1);
    if num_comps <= 1 {
        return Ok(());
    }
    let mut reps: Vec<usize> = vec![usize::MAX; num_comps];
    for (node, &c) in labels.iter().enumerate() {
        if reps[c] == usize::MAX {
            reps[c] = node;
        }
    }
    // Prim's over the complete representative graph (num_comps is small).
    let mut in_tree = vec![false; num_comps];
    if let Some(seed_slot) = in_tree.first_mut() {
        *seed_slot = true;
    }
    for _ in 1..num_comps {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..num_comps {
            if !in_tree[a] {
                continue;
            }
            for b in 0..num_comps {
                if in_tree[b] {
                    continue;
                }
                let d2 = vecops::dist2_sq(points.row(reps[a]), points.row(reps[b]));
                if best.is_none_or(|(_, _, bd)| d2 < bd) {
                    best = Some((a, b, d2));
                }
            }
        }
        // Prim's invariant guarantees a frontier edge exists while any
        // component is outside the tree; if that ever breaks, stop adding
        // backbone edges rather than panic mid-pipeline.
        let Some((a, b, d2)) = best else { break };
        g.add_edge(reps[a], reps[b], 1.0 / ((d2 / med).min(1e2) + eps))?;
        in_tree[b] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line: 0, 1, 2, ..., n-1.
    fn line_points(n: usize) -> DenseMatrix {
        DenseMatrix::from_rows(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn exact_knn_on_line_links_neighbors() {
        let pts = line_points(6);
        let g = knn_graph(&pts, 1, &KnnConfig::default()).unwrap();
        // Every node links to an adjacent node; union symmetrization keeps
        // the chain connected.
        assert!(g.is_connected());
        assert!(g.edge_weight(0, 1).is_some());
        assert!(g.edge_weight(0, 2).is_none());
    }

    #[test]
    fn weight_ratios_follow_inverse_squared_distance() {
        let pts = DenseMatrix::from_rows(&[vec![0.0], vec![2.0], vec![10.0]]).unwrap();
        let cfg = KnnConfig {
            weight_epsilon: 0.0,
            ensure_connected: false,
            ..KnnConfig::default()
        };
        let g = knn_graph(&pts, 1, &cfg).unwrap();
        // d²(0,1) = 4 and d²(1,2) = 64: the weight ratio must be 16
        // regardless of the median normalization.
        let ratio = g.edge_weight(0, 1).unwrap() / g.edge_weight(1, 2).unwrap();
        assert!((ratio - 16.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn duplicate_points_get_finite_weight() {
        let pts = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![5.0]]).unwrap();
        let g = knn_graph(&pts, 1, &KnnConfig::default()).unwrap();
        let w = g.edge_weight(0, 1).unwrap();
        // Duplicates hit the ε floor: weight ≈ 1/ε, large but bounded.
        assert!(w.is_finite() && w > 100.0);
    }

    #[test]
    fn invalid_k_rejected() {
        let pts = line_points(4);
        assert!(knn_graph(&pts, 0, &KnnConfig::default()).is_err());
        assert!(knn_graph(&pts, 4, &KnnConfig::default()).is_err());
    }

    #[test]
    fn non_finite_points_rejected() {
        let pts = DenseMatrix::from_rows(&[vec![0.0], vec![f64::NAN]]).unwrap();
        assert!(knn_graph(&pts, 1, &KnnConfig::default()).is_err());
    }

    #[test]
    fn two_clusters_connected_by_backbone() {
        // Two well-separated clusters with k=1: disconnected without the
        // backbone, connected with it.
        let mut rows = Vec::new();
        for i in 0..4 {
            rows.push(vec![i as f64 * 0.01, 0.0]);
        }
        for i in 0..4 {
            rows.push(vec![100.0 + i as f64 * 0.01, 0.0]);
        }
        let pts = DenseMatrix::from_rows(&rows).unwrap();
        let disconnected = knn_graph(
            &pts,
            1,
            &KnnConfig {
                ensure_connected: false,
                ..KnnConfig::default()
            },
        )
        .unwrap();
        assert!(!disconnected.is_connected());
        let connected = knn_graph(&pts, 1, &KnnConfig::default()).unwrap();
        assert!(connected.is_connected());
    }

    #[test]
    fn rp_forest_matches_exact_on_small_input() {
        // With enough trees on a tiny input, recall should be perfect.
        let pts = line_points(30);
        let exact = knn_graph(
            &pts,
            2,
            &KnnConfig {
                ensure_connected: false,
                ..KnnConfig::default()
            },
        )
        .unwrap();
        let approx = knn_graph(
            &pts,
            2,
            &KnnConfig {
                method: KnnMethod::RpForest {
                    num_trees: 8,
                    leaf_size: 8,
                },
                ensure_connected: false,
                ..KnnConfig::default()
            },
        )
        .unwrap();
        // Recall: fraction of exact edges recovered.
        let mut hit = 0;
        for e in exact.edges() {
            if approx.edge_weight(e.u, e.v).is_some() {
                hit += 1;
            }
        }
        let recall = hit as f64 / exact.num_edges() as f64;
        assert!(recall >= 0.9, "recall {recall}");
    }

    #[test]
    fn rp_forest_scales_and_stays_connected() {
        // 2-D grid of points; approximate kNN + backbone must be connected.
        let mut rows = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let pts = DenseMatrix::from_rows(&rows).unwrap();
        let g = knn_graph(
            &pts,
            4,
            &KnnConfig {
                method: KnnMethod::RpForest {
                    num_trees: 6,
                    leaf_size: 16,
                },
                ..KnnConfig::default()
            },
        )
        .unwrap();
        assert!(g.is_connected());
        assert!(g.num_edges() >= 400); // at least ~kn/2 edges
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = line_points(40);
        let cfg = KnnConfig {
            method: KnnMethod::RpForest {
                num_trees: 4,
                leaf_size: 8,
            },
            ..KnnConfig::default()
        };
        let a = knn_graph(&pts, 3, &cfg).unwrap();
        let b = knn_graph(&pts, 3, &cfg).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
        }
    }

    #[test]
    fn hnsw_matches_exact_on_small_input() {
        let pts = line_points(60);
        let plain = KnnConfig {
            ensure_connected: false,
            ..KnnConfig::default()
        };
        let exact = knn_graph(&pts, 2, &plain).unwrap();
        let approx = knn_graph(
            &pts,
            2,
            &KnnConfig {
                method: KnnMethod::hnsw_default(),
                ..plain
            },
        )
        .unwrap();
        let mut hit = 0;
        for e in exact.edges() {
            if approx.edge_weight(e.u, e.v).is_some() {
                hit += 1;
            }
        }
        let recall = hit as f64 / exact.num_edges() as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    fn stats_identify_approximate_methods() {
        let pts = line_points(40);
        let (_, stats) = knn_graph_with_stats(&pts, 3, &KnnConfig::default()).unwrap();
        assert!(stats.is_none(), "exact search must report no stats");
        let (_, stats) = knn_graph_with_stats(
            &pts,
            3,
            &KnnConfig {
                method: KnnMethod::hnsw_default(),
                ..KnnConfig::default()
            },
        )
        .unwrap();
        let stats = stats.unwrap();
        assert_eq!(stats.method, "hnsw");
        assert_eq!(stats.requested_k, 3);
        // ef_search bounds the pool; every point must surface ≥ k candidates.
        assert!(stats.min_candidates >= 3, "{stats:?}");
        assert!(stats.mean_candidates >= stats.min_candidates as f64);
        let (_, stats) = knn_graph_with_stats(
            &pts,
            3,
            &KnnConfig {
                method: KnnMethod::RpForest {
                    num_trees: 4,
                    leaf_size: 8,
                },
                ..KnnConfig::default()
            },
        )
        .unwrap();
        assert_eq!(stats.unwrap().method, "rp-forest");
    }

    #[test]
    fn hnsw_deterministic_given_seed() {
        let pts = line_points(80);
        let cfg = KnnConfig {
            method: KnnMethod::hnsw_default(),
            ..KnnConfig::default()
        };
        let a = knn_graph(&pts, 3, &cfg).unwrap();
        let b = knn_graph(&pts, 3, &cfg).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
            assert_eq!(ea.weight.to_bits(), eb.weight.to_bits());
        }
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let pts = DenseMatrix::zeros(0, 0);
        let g = knn_graph(&pts, 1, &KnnConfig::default()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }
}
