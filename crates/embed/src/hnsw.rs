//! Deterministic HNSW (hierarchical navigable small world) neighbor index.
//!
//! The exact kNN search in [`crate::knn_graph`] is `O(n²·d)` — the scaling
//! wall between ~50k-pin benchmarks and million-pin netlists. This module
//! provides the sub-quadratic replacement: a from-scratch HNSW index whose
//! construction is **order-deterministic** and whose search is bit-identical
//! at any thread count, per the workspace determinism contract.
//!
//! # Layer structure
//!
//! Every node is assigned a level `ℓ ≥ 0` from a geometric-ish distribution
//! (`ℓ = ⌊−ln(u) / ln(m)⌋` with `u` drawn from a seeded xorshift stream in
//! node order), so roughly a `1/m` fraction of nodes appears on each higher
//! layer. Layer 0 holds every node with up to `2m` links; each layer above
//! holds the subsample with up to `m` links. A query greedily descends from
//! the top-layer entry point, then runs an `ef`-bounded best-first search on
//! layer 0.
//!
//! # Determinism strategy
//!
//! - Level assignment consumes the seeded RNG in fixed node order.
//! - Nodes are inserted serially in index order `0..n`; search fan-out never
//!   mutates the index, so any parallelism is confined to independent
//!   queries whose results land in per-query slots.
//! - All candidate orderings — heap priority, neighbor selection, result
//!   ranking — compare `(distance, node id)` via `f64::total_cmp` with the
//!   id as tie-break, so equal distances cannot introduce platform or
//!   schedule dependence.
//!
//! # Allocation discipline
//!
//! [`HnswScratch`] owns every buffer the search touches (epoch-stamped
//! visited array, binary-heap vectors, result pool). Buffers warm up to
//! their steady-state capacity on first use and are reused afterwards, so a
//! warmed search performs **zero** heap allocations — pinned by the
//! counting-allocator test in `cirstag-bench`.

use crate::knn::Splitter;
use crate::EmbedError;
use cirstag_linalg::{par, vecops, DenseMatrix};

/// Hard cap on assigned levels; `⌊−ln(u)/ln(2)⌋` exceeds this only with
/// probability ~2⁻²⁴ per node, and capping keeps the descent loop bounded.
const MAX_LEVEL: usize = 24;

/// `2⁻⁵³`, the unit scaling that maps 53 random mantissa bits into `(0, 1]`.
const UNIT_53: f64 = 1.0 / 9_007_199_254_740_992.0;

/// A scored candidate: `(squared distance, node id)`.
type Cand = (f64, u32);

/// Construction and search parameters for [`HnswIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Maximum links per node on layers ≥ 1 (layer 0 allows `2m`).
    /// Clamped to `2..=64` at build time.
    pub m: usize,
    /// Beam width of the best-first search used while inserting nodes;
    /// larger values build a higher-recall graph, slower. Clamped to at
    /// least `2m`.
    pub ef_construction: usize,
    /// Default beam width for queries; the effective beam is
    /// `max(ef_search, k + 1)`.
    pub ef_search: usize,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 12,
            ef_construction: 100,
            ef_search: 64,
        }
    }
}

/// Reusable per-worker search state; create with [`HnswIndex::scratch`].
///
/// One scratch serves any number of sequential searches against the index
/// it was sized for. After the first search over a given workload the
/// buffers have reached steady-state capacity and subsequent searches
/// allocate nothing.
#[derive(Debug)]
pub struct HnswScratch {
    /// Epoch-stamped visited marks (`visited[i] == epoch` ⇔ seen this query).
    visited: Vec<u32>,
    /// Current query epoch; bumping it resets all marks in O(1).
    epoch: u32,
    /// Min-heap of frontier candidates, closest first.
    cand: Vec<Cand>,
    /// Max-heap of the best `ef` results, farthest first.
    result: Vec<Cand>,
    /// Drained results, closest first; doubles as the heuristic input pool.
    pool: Vec<Cand>,
    /// Neighbors chosen by the selection heuristic.
    selected: Vec<Cand>,
    /// Candidates the heuristic passed over (refilled from, nearest first).
    spill: Vec<Cand>,
}

impl HnswScratch {
    fn with_nodes(n: usize) -> Self {
        HnswScratch {
            visited: vec![0u32; n],
            epoch: 0,
            cand: Vec::new(),
            result: Vec::new(),
            pool: Vec::new(),
            selected: Vec::new(),
            spill: Vec::new(),
        }
    }

    /// Starts a fresh query: invalidates every visited mark in O(1).
    fn bump_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `node` visited; returns `true` when it already was (or when the
    /// id is out of range for the index this scratch was sized for, which
    /// conservatively skips the node instead of panicking).
    fn mark(&mut self, node: u32) -> bool {
        match self.visited.get_mut(ix(node)) {
            Some(slot) if *slot == self.epoch => true,
            Some(slot) => {
                *slot = self.epoch;
                false
            }
            None => true,
        }
    }
}

/// Widening `u32 → usize` node-id conversion (this workspace targets 64-bit
/// hosts, where the conversion is lossless).
#[inline]
fn ix(node: u32) -> usize {
    // cirstag-lint: allow(cast-truncation) -- u32 -> usize widens on the 64-bit hosts this workspace targets; no value can be lost
    node as usize
}

/// Strict total order on candidates: nearer distance first, node id as the
/// tie-break so equal distances stay deterministic.
#[inline]
fn closer(a: Cand, b: Cand) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// Binary-heap push on a plain `Vec`, priority given by [`closer`]
/// (`min == true`: nearest at the root; `min == false`: farthest).
fn heap_push(heap: &mut Vec<Cand>, item: Cand, min: bool) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        let up = if min {
            closer(heap[i], heap[parent])
        } else {
            closer(heap[parent], heap[i])
        };
        if !up {
            break;
        }
        heap.swap(i, parent);
        i = parent;
    }
}

/// Pops the root of a [`heap_push`]-maintained heap.
fn heap_pop(heap: &mut Vec<Cand>, min: bool) -> Option<Cand> {
    let last = heap.len().checked_sub(1)?;
    heap.swap(0, last);
    let top = heap.pop();
    let n = heap.len();
    let mut i = 0usize;
    loop {
        let l = 2 * i + 1;
        if l >= n {
            break;
        }
        let r = l + 1;
        let mut pick = l;
        if r < n {
            let r_first = if min {
                closer(heap[r], heap[l])
            } else {
                closer(heap[l], heap[r])
            };
            if r_first {
                pick = r;
            }
        }
        let down = if min {
            closer(heap[pick], heap[i])
        } else {
            closer(heap[i], heap[pick])
        };
        if !down {
            break;
        }
        heap.swap(i, pick);
        i = pick;
    }
    top
}

/// A built HNSW index over the rows of one embedding matrix.
///
/// The index stores adjacency and cached squared row norms but not the
/// points themselves; every search takes the **same** matrix that was passed
/// to [`HnswIndex::build`]. Construction is serial and deterministic; any
/// number of searches may then run concurrently (each with its own
/// [`HnswScratch`]) without affecting results.
#[derive(Debug)]
pub struct HnswIndex {
    /// Number of indexed rows.
    n: usize,
    /// Max links per node on layers ≥ 1.
    m: usize,
    /// Max links per node on layer 0 (`2m`).
    m0: usize,
    /// Entry node for the greedy descent (a node on the top layer).
    entry: u32,
    /// Highest populated layer.
    top_level: usize,
    /// Assigned level per node.
    levels: Vec<u8>,
    /// Flat layer-0 adjacency: node `i`'s links occupy
    /// `graph0[i·m0 .. i·m0 + deg0[i]]`.
    graph0: Vec<u32>,
    /// Layer-0 out-degrees.
    deg0: Vec<u32>,
    /// Per-node offset into `upper` (`u32::MAX` for level-0-only nodes).
    upper_idx: Vec<u32>,
    /// Upper-layer adjacency for nodes with level ≥ 1: entry `j` holds the
    /// link lists for layers `1..=levels[node]` of the `j`-th such node.
    upper: Vec<Vec<Vec<u32>>>,
    /// Cached squared row norms, so each pairwise distance is one dot
    /// product via `‖p − q‖² = ‖p‖² + ‖q‖² − 2·p·q` (clamped at zero
    /// against cancellation), exactly as the exact-search path computes it.
    norms: Vec<f64>,
}

impl HnswIndex {
    /// Builds the index over the rows of `points`, deterministically:
    /// the same `(points, params, seed)` always produces the same index,
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::InvalidArgument`] when `points` contains
    /// non-finite values or has more rows than a `u32` node id can address.
    pub fn build(
        points: &DenseMatrix,
        params: &HnswParams,
        seed: u64,
    ) -> Result<HnswIndex, EmbedError> {
        let n = points.nrows();
        if u32::try_from(n).is_err() {
            return Err(EmbedError::InvalidArgument {
                reason: format!("hnsw index limited to u32 node ids, got n = {n}"),
            });
        }
        if !points.all_finite() {
            return Err(EmbedError::InvalidArgument {
                reason: "points contain non-finite values".to_string(),
            });
        }
        let m = params.m.clamp(2, 64);
        let m0 = m * 2;
        let efc = params.ef_construction.max(m0);

        // Level assignment: one seeded draw per node, in node order, so the
        // layer structure is a pure function of (seed, n, m).
        let mult = 1.0 / (m as f64).ln();
        let mut rng = Splitter::new(seed ^ 0x484E_5357); // "HNSW"
        let levels: Vec<u8> = (0..n)
            .map(|_| {
                let u = ((rng.next_u64() >> 11) + 1) as f64 * UNIT_53; // in (0, 1]
                let raw = -u.ln() * mult; // ≥ 0, finite
                                          // cirstag-lint: allow(cast-truncation) -- raw is a non-negative finite float; the saturating cast is immediately clamped to MAX_LEVEL = 24, well inside u8
                let lvl = (raw as usize).min(MAX_LEVEL);
                u8::try_from(lvl).unwrap_or(0)
            })
            .collect();

        // Squared norms fan out across the pool; slot p always holds row p's
        // norm, so the result is thread-count-invariant.
        let norms: Vec<f64> = par::map_indexed(n, |p| vecops::dot(points.row(p), points.row(p)));

        let mut upper_idx = vec![u32::MAX; n];
        let mut upper: Vec<Vec<Vec<u32>>> = Vec::new();
        for (i, &lvl) in levels.iter().enumerate() {
            let lvl = usize::from(lvl);
            if lvl >= 1 {
                upper_idx[i] = u32::try_from(upper.len()).unwrap_or(u32::MAX);
                upper.push((1..=lvl).map(|_| Vec::with_capacity(m + 1)).collect());
            }
        }

        let mut idx = HnswIndex {
            n,
            m,
            m0,
            entry: 0,
            top_level: levels.first().map_or(0, |&l| usize::from(l)),
            levels,
            graph0: vec![0u32; n * m0],
            deg0: vec![0u32; n],
            upper_idx,
            upper,
            norms,
        };
        if n == 0 {
            return Ok(idx);
        }

        // Serial insertion in node order 0..n — the determinism anchor.
        let mut scratch = idx.scratch();
        let mut entries: Vec<Cand> = Vec::with_capacity(efc);
        let mut links: Vec<u32> = Vec::with_capacity(m0 + 1);
        for q in 1..n {
            let qid = u32::try_from(q).unwrap_or(u32::MAX);
            let lq = usize::from(idx.levels[q]);
            let qrow = points.row(q);
            let qnorm = idx.norms[q];
            let mut e = (idx.dist_to(points, qnorm, qrow, ix(idx.entry)), idx.entry);
            let top = idx.top_level;
            let mut level = top;
            while level > lq {
                e = idx.greedy(points, qnorm, qrow, e, level);
                level -= 1;
            }
            entries.clear();
            entries.push(e);
            let mut l = lq.min(top);
            loop {
                idx.search_layer(points, qnorm, qrow, &entries, efc, l, &mut scratch);
                drain_results(&mut scratch);
                // The full result set seeds the next (lower) layer's search.
                entries.clear();
                entries.extend_from_slice(&scratch.pool);
                idx.select_neighbors(points, idx.m, &mut scratch);
                links.clear();
                links.extend(scratch.selected.iter().map(|&(_, c)| c));
                idx.set_links(qid, l, &links);
                let cap = if l == 0 { idx.m0 } else { idx.m };
                for &s in &links {
                    idx.add_link(points, s, qid, l, cap, &mut scratch);
                }
                if l == 0 {
                    break;
                }
                l -= 1;
            }
            if lq > top {
                idx.entry = qid;
                idx.top_level = lq;
            }
        }
        Ok(idx)
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Highest populated layer (0 for a single-layer index).
    pub fn top_level(&self) -> usize {
        self.top_level
    }

    /// Allocates a search scratch sized for this index.
    pub fn scratch(&self) -> HnswScratch {
        HnswScratch::with_nodes(self.n)
    }

    /// Finds the `k` nearest indexed rows to indexed row `query` (excluding
    /// the query itself), appending `(neighbor, squared distance)` pairs to
    /// `out` in ascending `(distance, id)` order. `points` must be the
    /// matrix the index was built over. Returns the achieved candidate-pool
    /// size — the number of distinct neighbors the `ef`-bounded search
    /// surfaced before truncation to `k` — which callers report as the
    /// recall diagnostic for approximate runs.
    ///
    /// `out` is cleared first; a warmed `(scratch, out)` pair makes this
    /// call allocation-free.
    pub fn knn_into(
        &self,
        points: &DenseMatrix,
        query: usize,
        k: usize,
        ef: usize,
        scratch: &mut HnswScratch,
        out: &mut Vec<(usize, f64)>,
    ) -> usize {
        out.clear();
        if self.n == 0 || query >= self.n || k == 0 {
            return 0;
        }
        let qrow = points.row(query);
        let qnorm = self.norms[query];
        let beam = ef.max(k + 1);
        let mut e = (
            self.dist_to(points, qnorm, qrow, ix(self.entry)),
            self.entry,
        );
        let mut level = self.top_level;
        while level > 0 {
            e = self.greedy(points, qnorm, qrow, e, level);
            level -= 1;
        }
        self.search_layer(points, qnorm, qrow, &[e], beam, 0, scratch);
        drain_results(scratch);
        scratch.pool.retain(|&(_, id)| ix(id) != query);
        let pool_size = scratch.pool.len();
        for &(d, id) in scratch.pool.iter().take(k) {
            out.push((ix(id), d));
        }
        pool_size
    }

    /// Squared distance from a cached query `(norm, row)` to indexed row
    /// `b`, via the same norm identity (and zero clamp) as the exact search.
    #[inline]
    fn dist_to(&self, points: &DenseMatrix, qnorm: f64, qrow: &[f64], b: usize) -> f64 {
        (qnorm + self.norms[b] - 2.0 * vecops::dot(qrow, points.row(b))).max(0.0)
    }

    /// Squared distance between two indexed rows.
    #[inline]
    fn dist2(&self, points: &DenseMatrix, a: usize, b: usize) -> f64 {
        self.dist_to(points, self.norms[a], points.row(a), b)
    }

    /// Link list of `node` at `level`.
    fn neighbors(&self, node: u32, level: usize) -> &[u32] {
        let i = ix(node);
        if level == 0 {
            let base = i * self.m0;
            &self.graph0[base..base + ix(self.deg0[i])]
        } else {
            &self.upper[ix(self.upper_idx[i])][level - 1]
        }
    }

    /// Greedy descent step at `level`: repeatedly move to the best neighbor
    /// (by `(distance, id)`) until no neighbor improves on the current node.
    fn greedy(
        &self,
        points: &DenseMatrix,
        qnorm: f64,
        qrow: &[f64],
        start: Cand,
        level: usize,
    ) -> Cand {
        let mut cur = start;
        loop {
            let mut best = cur;
            for &nb in self.neighbors(cur.1, level) {
                let d = self.dist_to(points, qnorm, qrow, ix(nb));
                if closer((d, nb), best) {
                    best = (d, nb);
                }
            }
            if best.1 == cur.1 {
                return cur;
            }
            cur = best;
        }
    }

    /// `ef`-bounded best-first search at `level`, leaving the up-to-`ef`
    /// nearest visited nodes in `scratch.result` (a farthest-first heap).
    #[allow(clippy::too_many_arguments)] // hot path: threading a context struct through would obscure the query tuple
    fn search_layer(
        &self,
        points: &DenseMatrix,
        qnorm: f64,
        qrow: &[f64],
        entries: &[Cand],
        ef: usize,
        level: usize,
        scratch: &mut HnswScratch,
    ) {
        scratch.bump_epoch();
        scratch.cand.clear();
        scratch.result.clear();
        for &e in entries {
            if scratch.mark(e.1) {
                continue;
            }
            heap_push(&mut scratch.cand, e, true);
            heap_push(&mut scratch.result, e, false);
            if scratch.result.len() > ef {
                heap_pop(&mut scratch.result, false);
            }
        }
        while let Some(c) = heap_pop(&mut scratch.cand, true) {
            // cirstag-lint: allow(no-panic-in-lib) -- result is non-empty here: len() >= ef and ef >= 1
            if scratch.result.len() >= ef && closer(scratch.result[0], c) {
                break; // every frontier candidate is farther than the worst kept result
            }
            for &nb in self.neighbors(c.1, level) {
                if scratch.mark(nb) {
                    continue;
                }
                let d = self.dist_to(points, qnorm, qrow, ix(nb));
                let item = (d, nb);
                // cirstag-lint: allow(no-panic-in-lib) -- short-circuit: result[0] is read only when len() >= ef >= 1
                if scratch.result.len() < ef || closer(item, scratch.result[0]) {
                    heap_push(&mut scratch.cand, item, true);
                    heap_push(&mut scratch.result, item, false);
                    if scratch.result.len() > ef {
                        heap_pop(&mut scratch.result, false);
                    }
                }
            }
        }
    }

    /// The Malkov–Yashunin selection heuristic over `scratch.pool`
    /// (closest-first): keep a candidate only when it is nearer to the query
    /// than to every neighbor already kept — this preserves bridges between
    /// clusters that plain nearest-`m` selection would prune — then refill
    /// any spare capacity with the nearest passed-over candidates so the
    /// graph never under-links (keep-pruned-connections).
    fn select_neighbors(&self, points: &DenseMatrix, cap: usize, scratch: &mut HnswScratch) {
        scratch.selected.clear();
        scratch.spill.clear();
        for &(d, c) in &scratch.pool {
            if scratch.selected.len() >= cap {
                break;
            }
            let keep = scratch
                .selected
                .iter()
                .all(|&(_, s)| d < self.dist2(points, ix(c), ix(s)));
            if keep {
                scratch.selected.push((d, c));
            } else {
                scratch.spill.push((d, c));
            }
        }
        let mut si = 0usize;
        while scratch.selected.len() < cap && si < scratch.spill.len() {
            scratch.selected.push(scratch.spill[si]);
            si += 1;
        }
    }

    /// Overwrites `node`'s link list at `level` with `ids`.
    fn set_links(&mut self, node: u32, level: usize, ids: &[u32]) {
        let i = ix(node);
        if level == 0 {
            let take = ids.len().min(self.m0);
            let base = i * self.m0;
            self.graph0[base..base + take].copy_from_slice(&ids[..take]);
            self.deg0[i] = u32::try_from(take).unwrap_or(0);
        } else {
            let slot = &mut self.upper[ix(self.upper_idx[i])][level - 1];
            slot.clear();
            slot.extend_from_slice(ids);
        }
    }

    /// Adds the back-link `s → q` at `level`; when `s`'s list would exceed
    /// `cap`, re-selects `s`'s links with the same heuristic over the old
    /// list plus `q`.
    fn add_link(
        &mut self,
        points: &DenseMatrix,
        s: u32,
        q: u32,
        level: usize,
        cap: usize,
        scratch: &mut HnswScratch,
    ) {
        let deg = self.neighbors(s, level).len();
        if deg < cap {
            let i = ix(s);
            if level == 0 {
                let base = i * self.m0;
                self.graph0[base + deg] = q;
                self.deg0[i] += 1;
            } else {
                self.upper[ix(self.upper_idx[i])][level - 1].push(q);
            }
            return;
        }
        // Re-rank the overfull list around `s` and keep the heuristic's cap.
        let snorm = self.norms[ix(s)];
        let srow = points.row(ix(s));
        scratch.pool.clear();
        for &nb in self.neighbors(s, level) {
            scratch
                .pool
                .push((self.dist_to(points, snorm, srow, ix(nb)), nb));
        }
        scratch
            .pool
            .push((self.dist_to(points, snorm, srow, ix(q)), q));
        scratch
            .pool
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.select_neighbors(points, cap, scratch);
        let mut kept: [u32; 128] = [0; 128]; // cap ≤ m0 ≤ 128 by the clamp in build
        let klen = scratch.selected.len().min(128);
        for (slot, &(_, c)) in kept.iter_mut().zip(scratch.selected.iter().take(klen)) {
            *slot = c;
        }
        self.set_links(s, level, &kept[..klen]);
    }
}

/// Drains `scratch.result` (farthest-first heap) into `scratch.pool` in
/// ascending `(distance, id)` order.
fn drain_results(scratch: &mut HnswScratch) {
    scratch.pool.clear();
    while let Some(item) = heap_pop(&mut scratch.result, false) {
        scratch.pool.push(item);
    }
    scratch.pool.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: usize) -> DenseMatrix {
        let mut rows = Vec::new();
        for i in 0..side {
            for j in 0..side {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        DenseMatrix::from_rows(&rows).unwrap()
    }

    fn exact_neighbors(points: &DenseMatrix, p: usize, k: usize) -> Vec<usize> {
        let n = points.nrows();
        let mut d: Vec<(f64, usize)> = (0..n)
            .filter(|&q| q != p)
            .map(|q| (vecops::dist2_sq(points.row(p), points.row(q)), q))
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        d.truncate(k);
        d.into_iter().map(|(_, q)| q).collect()
    }

    #[test]
    fn heap_orders_by_distance_then_id() {
        let mut h = Vec::new();
        for item in [(2.0, 7), (1.0, 3), (1.0, 1), (3.0, 0)] {
            heap_push(&mut h, item, true);
        }
        assert_eq!(heap_pop(&mut h, true), Some((1.0, 1)));
        assert_eq!(heap_pop(&mut h, true), Some((1.0, 3)));
        assert_eq!(heap_pop(&mut h, true), Some((2.0, 7)));
        assert_eq!(heap_pop(&mut h, true), Some((3.0, 0)));
        assert_eq!(heap_pop(&mut h, true), None);
    }

    #[test]
    fn recall_on_grid_is_high() {
        let pts = grid_points(18); // 324 points
        let idx = HnswIndex::build(&pts, &HnswParams::default(), 7).unwrap();
        let mut scratch = idx.scratch();
        let mut out = Vec::new();
        let k = 6;
        let mut hits = 0usize;
        let mut total = 0usize;
        for p in 0..pts.nrows() {
            idx.knn_into(&pts, p, k, 64, &mut scratch, &mut out);
            let exact = exact_neighbors(&pts, p, k);
            for (q, _) in &out {
                // Grid distances tie heavily; count a hit when the found
                // neighbor's distance matches an exact neighbor's rank set.
                if exact.contains(q)
                    || vecops::dist2_sq(pts.row(p), pts.row(*q))
                        <= vecops::dist2_sq(pts.row(p), pts.row(exact[k - 1]))
                {
                    hits += 1;
                }
            }
            total += k;
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    fn rebuild_is_bit_identical() {
        let pts = grid_points(10);
        let a = HnswIndex::build(&pts, &HnswParams::default(), 42).unwrap();
        let b = HnswIndex::build(&pts, &HnswParams::default(), 42).unwrap();
        assert_eq!(a.graph0, b.graph0);
        assert_eq!(a.deg0, b.deg0);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.entry, b.entry);
        let mut sa = a.scratch();
        let mut sb = b.scratch();
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for p in 0..pts.nrows() {
            a.knn_into(&pts, p, 4, 32, &mut sa, &mut oa);
            b.knn_into(&pts, p, 4, 32, &mut sb, &mut ob);
            assert_eq!(oa, ob);
            for ((qa, da), (qb, db)) in oa.iter().zip(&ob) {
                assert_eq!(qa, qb);
                assert_eq!(da.to_bits(), db.to_bits());
            }
        }
    }

    #[test]
    fn different_seed_changes_layer_assignment() {
        let pts = grid_points(12);
        let a = HnswIndex::build(&pts, &HnswParams::default(), 1).unwrap();
        let b = HnswIndex::build(&pts, &HnswParams::default(), 2).unwrap();
        assert_ne!(a.levels, b.levels);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = DenseMatrix::zeros(0, 0);
        let idx = HnswIndex::build(&empty, &HnswParams::default(), 0).unwrap();
        assert!(idx.is_empty());
        let one = DenseMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let idx = HnswIndex::build(&one, &HnswParams::default(), 0).unwrap();
        assert_eq!(idx.len(), 1);
        let mut scratch = idx.scratch();
        let mut out = vec![(9usize, 9.0f64)];
        let pool = idx.knn_into(&one, 0, 3, 16, &mut scratch, &mut out);
        assert_eq!(pool, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn non_finite_points_rejected() {
        let pts = DenseMatrix::from_rows(&[vec![0.0], vec![f64::NAN]]).unwrap();
        assert!(HnswIndex::build(&pts, &HnswParams::default(), 0).is_err());
    }

    #[test]
    fn duplicate_points_still_link() {
        let pts = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![5.0], vec![5.0]])
            .unwrap();
        let idx = HnswIndex::build(&pts, &HnswParams::default(), 3).unwrap();
        let mut scratch = idx.scratch();
        let mut out = Vec::new();
        for p in 0..5 {
            let pool = idx.knn_into(&pts, p, 2, 16, &mut scratch, &mut out);
            assert!(pool >= 2, "point {p} pool {pool}");
            assert_eq!(out.len(), 2);
            assert!(out.iter().all(|&(q, _)| q != p));
        }
    }
}
