//! Phase-1 machinery: spectral node embeddings and kNN graph construction.
//!
//! - [`spectral_embedding`] computes the weighted Laplacian-eigenmap
//!   embedding of Eq. (4) of the paper:
//!   `U_M = [√|1−λ̃₁| ũ₁, …, √|1−λ̃_M| ũ_M]` from the first `M` eigenpairs of
//!   the normalized Laplacian.
//! - [`knn_graph`] turns any embedding matrix (rows = nodes) into the initial
//!   dense graph of Phase 2, with inverse-squared-distance weights so that
//!   `1/w_pq = ‖Xᵀe_pq‖²` matches the PGM gradient identity of Eq. (7).
//!   Exact (`O(n²)`), random-projection-tree, and deterministic HNSW
//!   (`O(n log n)`, see [`HnswIndex`]) flavours are provided.
//!
//! # Example
//!
//! ```
//! use cirstag_embed::{knn_graph, spectral_embedding, KnnConfig, SpectralConfig};
//! use cirstag_graph::Graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = Graph::from_edges(6, &[(0,1,1.0),(1,2,1.0),(2,3,1.0),(3,4,1.0),(4,5,1.0),(5,0,1.0)])?;
//! let u = spectral_embedding(&g, 3, &SpectralConfig::default())?;
//! assert_eq!(u.shape(), (6, 3));
//! let manifold = knn_graph(&u, 2, &KnnConfig::default())?;
//! assert!(manifold.num_edges() >= 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod hnsw;
mod knn;
mod spectral;

pub use error::EmbedError;
pub use hnsw::{HnswIndex, HnswParams, HnswScratch};
pub use knn::{knn_graph, knn_graph_with_stats, KnnConfig, KnnMethod, KnnStats};
pub use spectral::{
    augment_with_features, dense_spectral_embedding, spectral_embedding, spectral_embedding_ws,
    SpectralConfig,
};
