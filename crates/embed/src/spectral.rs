//! Weighted spectral embedding (Eq. 4 of the paper).

use crate::EmbedError;
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use cirstag_solver::{
    smallest_normalized_laplacian_eigs, smallest_normalized_laplacian_eigs_ws, SolverWorkspace,
};

/// Options for [`spectral_embedding`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Lanczos iteration budget (Krylov dimension cap).
    pub max_iter: usize,
    /// Ritz-residual tolerance for the eigensolver.
    pub tol: f64,
    /// Seed for the deterministic Lanczos start vector.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            max_iter: 300,
            tol: 1e-8,
            seed: 0xC1257A6,
        }
    }
}

/// Computes the Phase-1 weighted spectral embedding of Eq. (4):
///
/// `U_M = [√|1−λ̃₁| ũ₁, …, √|1−λ̃_M| ũ_M]`
///
/// where `(λ̃ᵢ, ũᵢ)` are the `m` smallest eigenpairs of the normalized
/// Laplacian of `g`. Each *row* of the returned `n × m` matrix is a node's
/// embedding vector. The `√|1−λ|` weighting de-emphasizes eigenvectors near
/// λ = 1 (which carry little low-frequency structure) and is what makes the
/// embedding preserve the graph's coarse geometry.
///
/// # Errors
///
/// - [`EmbedError::InvalidArgument`] when `m == 0` or `m > |V|`.
/// - Propagates eigensolver failures.
pub fn spectral_embedding(
    g: &Graph,
    m: usize,
    config: &SpectralConfig,
) -> Result<DenseMatrix, EmbedError> {
    let n = g.num_nodes();
    if m == 0 || m > n {
        return Err(EmbedError::InvalidArgument {
            reason: format!("embedding dimension {m} must be in 1..={n}"),
        });
    }
    let (eigenvalues, eigenvectors) =
        smallest_normalized_laplacian_eigs(g, m, config.max_iter, config.tol, config.seed)?;
    Ok(weighted_embedding(n, m, &eigenvalues, &eigenvectors))
}

/// Workspace-pooled form of [`spectral_embedding`]: the inner Lanczos
/// iteration draws its scratch vectors from `ws`, so repeated embeddings (the
/// pipeline's retry ladder, batched analyses) allocate nothing once the pool
/// is warm. Bit-identical to [`spectral_embedding`].
///
/// # Errors
///
/// Same contract as [`spectral_embedding`].
pub fn spectral_embedding_ws(
    g: &Graph,
    m: usize,
    config: &SpectralConfig,
    ws: &mut SolverWorkspace,
) -> Result<DenseMatrix, EmbedError> {
    let n = g.num_nodes();
    if m == 0 || m > n {
        return Err(EmbedError::InvalidArgument {
            reason: format!("embedding dimension {m} must be in 1..={n}"),
        });
    }
    let (eigenvalues, eigenvectors) =
        smallest_normalized_laplacian_eigs_ws(g, m, config.max_iter, config.tol, config.seed, ws)?;
    Ok(weighted_embedding(n, m, &eigenvalues, &eigenvectors))
}

/// Applies the Eq. (4) column weights `√|1−λ̃ⱼ|` to the raw eigenvectors.
fn weighted_embedding(
    n: usize,
    m: usize,
    eigenvalues: &[f64],
    eigenvectors: &DenseMatrix,
) -> DenseMatrix {
    let mut u = DenseMatrix::zeros(n, m);
    for (j, &lam) in eigenvalues.iter().enumerate() {
        let w = (1.0 - lam).abs().sqrt();
        for i in 0..n {
            u.set(i, j, w * eigenvectors.get(i, j));
        }
    }
    u
}

/// Dense fallback for [`spectral_embedding`]: computes the same Eq. (4)
/// weighted embedding through a full Jacobi eigendecomposition of the
/// normalized Laplacian instead of the Lanczos iteration.
///
/// `O(n³)` time and `O(n²)` memory — this is the terminal rung of the
/// Phase-1 fallback ladder for graphs whose spectra defeat the iterative
/// solver, not a general replacement. Eigenvector signs may differ from the
/// Lanczos path (both are valid embeddings).
///
/// # Errors
///
/// - [`EmbedError::InvalidArgument`] when `m == 0` or `m > |V|`.
/// - Propagates dense eigensolver failures.
pub fn dense_spectral_embedding(g: &Graph, m: usize) -> Result<DenseMatrix, EmbedError> {
    let n = g.num_nodes();
    if m == 0 || m > n {
        return Err(EmbedError::InvalidArgument {
            reason: format!("embedding dimension {m} must be in 1..={n}"),
        });
    }
    let dense = g.normalized_laplacian().to_dense();
    let (eigenvalues, eigenvectors) =
        cirstag_linalg::jacobi_eigen(&dense).map_err(cirstag_solver::SolverError::from)?;
    let mut u = DenseMatrix::zeros(n, m);
    for j in 0..m {
        let w = (1.0 - eigenvalues[j]).abs().sqrt();
        for i in 0..n {
            u.set(i, j, w * eigenvectors.get(i, j));
        }
    }
    Ok(u)
}

/// Concatenates node feature columns onto a spectral embedding, scaling the
/// features by `feature_weight` so callers can balance structural versus
/// feature distances on the input manifold.
///
/// This is the hook used by the timing case study: capacitance perturbations
/// live in feature space, so the input manifold must be feature-aware for
/// DMDs to reflect them.
///
/// # Errors
///
/// Returns [`EmbedError::InvalidArgument`] when the row counts disagree or
/// `feature_weight` is not finite and non-negative.
pub fn augment_with_features(
    embedding: &DenseMatrix,
    features: &DenseMatrix,
    feature_weight: f64,
) -> Result<DenseMatrix, EmbedError> {
    if embedding.nrows() != features.nrows() {
        return Err(EmbedError::InvalidArgument {
            reason: format!(
                "embedding has {} rows but features have {}",
                embedding.nrows(),
                features.nrows()
            ),
        });
    }
    if !(feature_weight.is_finite() && feature_weight >= 0.0) {
        return Err(EmbedError::InvalidArgument {
            reason: format!("feature weight {feature_weight} must be finite and non-negative"),
        });
    }
    let n = embedding.nrows();
    let me = embedding.ncols();
    let mf = features.ncols();
    let mut out = DenseMatrix::zeros(n, me + mf);
    for i in 0..n {
        for j in 0..me {
            out.set(i, j, embedding.get(i, j));
        }
        for j in 0..mf {
            out.set(i, me + j, feature_weight * features.get(i, j));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_linalg::vecops;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(
            n,
            &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn embedding_shape_and_finiteness() {
        let g = cycle(10);
        let u = spectral_embedding(&g, 4, &SpectralConfig::default()).unwrap();
        assert_eq!(u.shape(), (10, 4));
        assert!(u.all_finite());
    }

    #[test]
    fn first_column_weight_is_one() {
        // λ₁ = 0 so the weight √|1−0| = 1 and the column is the unit
        // eigenvector (degree-weighted constant for the cycle).
        let g = cycle(8);
        let u = spectral_embedding(&g, 2, &SpectralConfig::default()).unwrap();
        let col0 = u.column(0);
        assert!((vecops::norm2(&col0) - 1.0).abs() < 1e-6);
        // Constant sign pattern for a regular graph.
        let s = col0[0].signum();
        assert!(col0.iter().all(|v| v.signum() == s));
    }

    #[test]
    fn adjacent_nodes_are_close_in_embedding() {
        // On a long cycle, embedding distance between adjacent nodes must be
        // (much) smaller than between antipodal nodes.
        let n = 24;
        let g = cycle(n);
        let u = spectral_embedding(&g, 5, &SpectralConfig::default()).unwrap();
        let d_adj = vecops::dist2(u.row(0), u.row(1));
        let d_far = vecops::dist2(u.row(0), u.row(n / 2));
        assert!(
            d_adj < d_far / 2.0,
            "adjacent {d_adj} should be well below antipodal {d_far}"
        );
    }

    #[test]
    fn invalid_dimension_rejected() {
        let g = cycle(4);
        assert!(spectral_embedding(&g, 0, &SpectralConfig::default()).is_err());
        assert!(spectral_embedding(&g, 5, &SpectralConfig::default()).is_err());
    }

    #[test]
    fn embedding_deterministic() {
        let g = cycle(12);
        let cfg = SpectralConfig::default();
        let a = spectral_embedding(&g, 3, &cfg).unwrap();
        let b = spectral_embedding(&g, 3, &cfg).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-15);
    }

    #[test]
    fn workspace_form_is_bit_identical_and_reuses_buffers() {
        let g = cycle(12);
        let cfg = SpectralConfig::default();
        let plain = spectral_embedding(&g, 3, &cfg).unwrap();
        let mut ws = SolverWorkspace::new();
        let pooled = spectral_embedding_ws(&g, 3, &cfg, &mut ws).unwrap();
        for (a, b) in plain.as_slice().iter().zip(pooled.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "embeddings must be bitwise equal");
        }
        // A warmed workspace must not allocate on a repeat embedding.
        let misses = ws.misses();
        let again = spectral_embedding_ws(&g, 3, &cfg, &mut ws).unwrap();
        assert_eq!(ws.misses(), misses, "warm rerun must not allocate");
        assert!(again.all_finite());
    }

    #[test]
    fn disconnected_graph_still_embeds() {
        // Two separate rings: the zero eigenvalue has multiplicity 2; the
        // embedding must stay finite and give each component a coherent
        // low-frequency coordinate.
        let mut edges = Vec::new();
        for i in 0..6 {
            edges.push((i, (i + 1) % 6, 1.0));
            edges.push((6 + i, 6 + (i + 1) % 6, 1.0));
        }
        let g = Graph::from_edges(12, &edges).unwrap();
        let u = spectral_embedding(&g, 3, &SpectralConfig::default()).unwrap();
        assert!(u.all_finite());
        assert_eq!(u.shape(), (12, 3));
    }

    #[test]
    fn dense_embedding_matches_iterative_geometry() {
        // A weighted path has simple (non-degenerate) eigenvalues, so the
        // dense and Lanczos embeddings agree up to per-column sign flips —
        // which leave all pairwise row distances unchanged.
        let edges: Vec<_> = (0..9).map(|i| (i, i + 1, 1.0 + 0.1 * i as f64)).collect();
        let g = Graph::from_edges(10, &edges).unwrap();
        let iterative = spectral_embedding(&g, 4, &SpectralConfig::default()).unwrap();
        let dense = dense_spectral_embedding(&g, 4).unwrap();
        assert_eq!(dense.shape(), (10, 4));
        assert!(dense.all_finite());
        for i in 0..10 {
            for j in (i + 1)..10 {
                let di = vecops::dist2(iterative.row(i), iterative.row(j));
                let dd = vecops::dist2(dense.row(i), dense.row(j));
                assert!((di - dd).abs() < 1e-5, "rows ({i},{j}): {di} vs {dd}");
            }
        }
    }

    #[test]
    fn dense_embedding_validates_dimension() {
        let g = cycle(4);
        assert!(dense_spectral_embedding(&g, 0).is_err());
        assert!(dense_spectral_embedding(&g, 5).is_err());
    }

    #[test]
    fn augmentation_concatenates_and_scales() {
        let e = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let f = DenseMatrix::from_rows(&[vec![10.0], vec![20.0]]).unwrap();
        let out = augment_with_features(&e, &f, 0.5).unwrap();
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out.get(0, 2), 5.0);
        assert_eq!(out.get(1, 0), 3.0);
    }

    #[test]
    fn augmentation_validates() {
        let e = DenseMatrix::zeros(2, 2);
        let f = DenseMatrix::zeros(3, 1);
        assert!(augment_with_features(&e, &f, 1.0).is_err());
        let f2 = DenseMatrix::zeros(2, 1);
        assert!(augment_with_features(&e, &f2, f64::NAN).is_err());
        assert!(augment_with_features(&e, &f2, -1.0).is_err());
    }
}
