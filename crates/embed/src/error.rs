use std::error::Error;
use std::fmt;

/// Error type for embedding and kNN construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmbedError {
    /// An underlying solver operation failed.
    Solver(cirstag_solver::SolverError),
    /// An underlying graph operation failed.
    Graph(cirstag_graph::GraphError),
    /// An argument was invalid.
    InvalidArgument {
        /// Description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::Solver(e) => write!(f, "solver error: {e}"),
            EmbedError::Graph(e) => write!(f, "graph error: {e}"),
            EmbedError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl Error for EmbedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmbedError::Solver(e) => Some(e),
            EmbedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cirstag_solver::SolverError> for EmbedError {
    fn from(e: cirstag_solver::SolverError) -> Self {
        EmbedError::Solver(e)
    }
}

impl From<cirstag_graph::GraphError> for EmbedError {
    fn from(e: cirstag_graph::GraphError) -> Self {
        EmbedError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: EmbedError = cirstag_graph::GraphError::Disconnected.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmbedError>();
    }
}
