//! Phase-2 machinery: graph-based manifold learning via PGMs.
//!
//! Implements the paper's scalable probabilistic-graphical-model construction
//! (Section IV-B): starting from the dense kNN graph of Phase 1, edges are
//! pruned by the *spectral distortion* criterion of Eq. (8),
//! `η_pq = w_pq · R^eff_pq` (the edge's leverage score), which greedily
//! maximizes the PGM maximum-likelihood objective of Eq. (6). A low-stretch
//! spanning-tree backbone guarantees connectivity, and a practical
//! low-resistance-diameter (LRD) rule keeps the off-tree edges that close
//! electrically long cycles — the ones a tree approximates worst.
//!
//! # Example
//!
//! ```
//! use cirstag_embed::{knn_graph, KnnConfig};
//! use cirstag_linalg::DenseMatrix;
//! use cirstag_pgm::{learn_manifold, PgmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 40 points on a noisy circle.
//! let rows: Vec<Vec<f64>> = (0..40)
//!     .map(|i| {
//!         let t = i as f64 / 40.0 * std::f64::consts::TAU;
//!         vec![t.cos(), t.sin()]
//!     })
//!     .collect();
//! let points = DenseMatrix::from_rows(&rows)?;
//! let dense = knn_graph(&points, 6, &KnnConfig::default())?;
//! let manifold = learn_manifold(&dense, &PgmConfig::default())?;
//! assert!(manifold.graph.is_connected());
//! assert!(manifold.graph.num_edges() <= dense.num_edges());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod objective;
mod sparsify;

pub use error::PgmError;
pub use objective::{pgm_objective, PgmObjective};
pub use sparsify::{learn_manifold, random_prune, PgmConfig, PgmResult, PgmStats};
