//! Spectral sparsification of the dense kNN graph into a PGM manifold.

use crate::PgmError;
use cirstag_graph::{low_stretch_tree, Graph, TreePathOracle};
use cirstag_linalg::par;
use cirstag_solver::ResistanceEstimator;

/// Options for [`learn_manifold`].
#[derive(Debug, Clone, Copy)]
pub struct PgmConfig {
    /// Target average degree of the sparsified manifold. The edge budget is
    /// `⌈degree_target · n / 2⌉`; the spanning-tree backbone always stays.
    pub degree_target: f64,
    /// Number of Johnson–Lindenstrauss probes for effective-resistance
    /// estimation (`O(log n)` suffices; more probes tighten the η ranking).
    pub resistance_probes: usize,
    /// Quantile (in `[0, 1]`) of tree-cycle resistance above which an
    /// off-tree edge is *always* kept — the low-resistance-diameter (LRD)
    /// rule: cycles that are electrically long are the ones the tree
    /// approximates worst, so the edges closing them carry irreplaceable
    /// spectral information. `1.0` disables the rule.
    pub lrd_keep_quantile: f64,
    /// Seed for the tree heuristic and resistance sketch.
    pub seed: u64,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig {
            degree_target: 6.0,
            resistance_probes: 48,
            lrd_keep_quantile: 0.95,
            seed: 0x5A65,
        }
    }
}

/// Statistics reported by [`learn_manifold`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PgmStats {
    /// Edges of the dense input graph.
    pub edges_before: usize,
    /// Edges of the sparsified manifold.
    pub edges_after: usize,
    /// Edges contributed by the spanning-tree backbone.
    pub tree_edges: usize,
    /// Off-tree edges kept by the LRD (long-cycle) rule.
    pub kept_by_lrd: usize,
    /// Off-tree edges kept by the η (leverage) ranking.
    pub kept_by_eta: usize,
}

/// Result of [`learn_manifold`]: the sparsified PGM graph plus statistics.
#[derive(Debug, Clone)]
pub struct PgmResult {
    /// The learned manifold graph.
    pub graph: Graph,
    /// How the edge budget was spent.
    pub stats: PgmStats,
}

/// Learns a sparse PGM manifold from a dense (kNN) graph.
///
/// The procedure implements Section IV-B of the paper:
///
/// 1. Extract a low-stretch spanning-tree backbone (connectivity + baseline
///    spectral approximation).
/// 2. Estimate every off-tree edge's effective resistance with a sketched
///    estimator, giving the spectral-distortion score of Eq. (8):
///    `η_pq = w_pq · R^eff_pq`.
/// 3. Keep off-tree edges closing electrically long tree cycles (the LRD
///    rule), then fill the remaining budget with the largest-η edges;
///    everything else — low-η edges, whose removal barely decreases
///    `log det Θ` while decreasing `Tr(XᵀΘX)` — is pruned.
///
/// # Errors
///
/// - [`PgmError::InvalidArgument`] for non-positive `degree_target`, zero
///   probes, or an out-of-range quantile.
/// - [`PgmError::Graph`] when `dense` is disconnected (run the kNN stage
///   with `ensure_connected` enabled).
/// - Propagates resistance-estimation failures.
pub fn learn_manifold(dense: &Graph, config: &PgmConfig) -> Result<PgmResult, PgmError> {
    if !(config.degree_target > 0.0 && config.degree_target.is_finite()) {
        return Err(PgmError::InvalidArgument {
            reason: format!("degree_target {} must be positive", config.degree_target),
        });
    }
    if config.resistance_probes == 0 {
        return Err(PgmError::InvalidArgument {
            reason: "resistance_probes must be positive".to_string(),
        });
    }
    if !(0.0..=1.0).contains(&config.lrd_keep_quantile) {
        return Err(PgmError::InvalidArgument {
            reason: format!(
                "lrd_keep_quantile {} must lie in [0, 1]",
                config.lrd_keep_quantile
            ),
        });
    }
    let n = dense.num_nodes();
    if n <= 2 || dense.num_edges() <= 1 {
        return Ok(PgmResult {
            graph: dense.clone(),
            stats: PgmStats {
                edges_before: dense.num_edges(),
                edges_after: dense.num_edges(),
                tree_edges: dense.num_edges(),
                ..PgmStats::default()
            },
        });
    }

    let tree = low_stretch_tree(dense, config.seed)?;
    // cirstag-lint: allow(cast-truncation) -- float -> usize saturates (never wraps); the edge budget is a small nonnegative count
    let budget = ((config.degree_target * n as f64 / 2.0).ceil() as usize).max(tree.num_edges());
    let mut keep = vec![false; dense.num_edges()];
    for &eid in tree.edge_ids() {
        keep[eid] = true;
    }
    let mut stats = PgmStats {
        edges_before: dense.num_edges(),
        tree_edges: tree.num_edges(),
        ..PgmStats::default()
    };

    let off_tree: Vec<usize> = (0..dense.num_edges()).filter(|&e| !keep[e]).collect();
    let mut remaining = budget - tree.num_edges();

    if !off_tree.is_empty() && remaining > 0 {
        // η scores via the resistance sketch over the *dense* graph.
        let estimator =
            ResistanceEstimator::sketched(dense, config.resistance_probes, config.seed ^ 0xE7A)?;
        let oracle = TreePathOracle::new(tree.as_graph())?;

        // Per-edge scoring (sketch query + tree-path resistance) touches only
        // shared read-only state, so the off-tree edges fan out across the
        // pool; slot `i` always holds `off_tree[i]`'s scores, keeping the
        // ranking thread-count-invariant.
        let mut scored: Vec<(usize, f64, f64)> = par::try_map_indexed(off_tree.len(), |i| {
            let eid = off_tree[i];
            let e = dense.edges()[eid];
            let r_eff = estimator.query(e.u, e.v)?;
            let eta = e.weight * r_eff;
            let cycle_res = oracle.path_resistance(e.u, e.v)? + e.resistance();
            Ok::<_, PgmError>((eid, eta, cycle_res))
        })?;

        // LRD rule: always keep edges whose tree cycle is electrically long.
        if config.lrd_keep_quantile < 1.0 {
            let mut cycles: Vec<f64> = scored.iter().map(|&(_, _, c)| c).collect();
            cycles.sort_by(|a, b| a.total_cmp(b));
            // cirstag-lint: allow(cast-truncation) -- quantile is clamped to [0, 1], so the rounded index lies in 0..cycles.len()
            let idx = ((cycles.len() as f64 - 1.0) * config.lrd_keep_quantile).round() as usize;
            let threshold = cycles[idx.min(cycles.len() - 1)];
            for &(eid, _, cycle_res) in &scored {
                if cycle_res > threshold && remaining > 0 {
                    keep[eid] = true;
                    remaining -= 1;
                    stats.kept_by_lrd += 1;
                }
            }
        }

        // Fill the remaining budget with the largest-η edges (Eq. 8 pruning).
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(eid, _, _) in &scored {
            if remaining == 0 {
                break;
            }
            if !keep[eid] {
                keep[eid] = true;
                remaining -= 1;
                stats.kept_by_eta += 1;
            }
        }
    }

    let graph = dense.filter_edges(|eid, _| keep[eid]);
    stats.edges_after = graph.num_edges();
    Ok(PgmResult { graph, stats })
}

/// Prunes `dense` down to the same edge budget as [`learn_manifold`] but
/// choosing off-tree edges *uniformly at random* (deterministic in `seed`).
/// Baseline for the ablation study: shows that the η criterion, not mere
/// sparsity, is what preserves the spectral structure.
///
/// # Errors
///
/// Same validation as [`learn_manifold`].
pub fn random_prune(dense: &Graph, config: &PgmConfig) -> Result<PgmResult, PgmError> {
    if !(config.degree_target > 0.0 && config.degree_target.is_finite()) {
        return Err(PgmError::InvalidArgument {
            reason: format!("degree_target {} must be positive", config.degree_target),
        });
    }
    let n = dense.num_nodes();
    if n <= 2 || dense.num_edges() <= 1 {
        return Ok(PgmResult {
            graph: dense.clone(),
            stats: PgmStats {
                edges_before: dense.num_edges(),
                edges_after: dense.num_edges(),
                tree_edges: dense.num_edges(),
                ..PgmStats::default()
            },
        });
    }
    let tree = low_stretch_tree(dense, config.seed)?;
    // cirstag-lint: allow(cast-truncation) -- float -> usize saturates (never wraps); the edge budget is a small nonnegative count
    let budget = ((config.degree_target * n as f64 / 2.0).ceil() as usize).max(tree.num_edges());
    let mut keep = vec![false; dense.num_edges()];
    for &eid in tree.edge_ids() {
        keep[eid] = true;
    }
    let mut off_tree: Vec<usize> = (0..dense.num_edges()).filter(|&e| !keep[e]).collect();
    // Deterministic Fisher–Yates shuffle.
    let mut state = config.seed ^ 0xDEAD_BEEF_1234_5678 | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..off_tree.len()).rev() {
        // cirstag-lint: allow(cast-truncation) -- usize -> u64 is lossless on 64-bit hosts; the modulo keeps j in 0..=i, back within usize
        let j = (next() % (i as u64 + 1)) as usize;
        off_tree.swap(i, j);
    }
    let mut remaining = budget - tree.num_edges();
    let mut kept_random = 0;
    for &eid in &off_tree {
        if remaining == 0 {
            break;
        }
        keep[eid] = true;
        remaining -= 1;
        kept_random += 1;
    }
    let graph = dense.filter_edges(|eid, _| keep[eid]);
    Ok(PgmResult {
        stats: PgmStats {
            edges_before: dense.num_edges(),
            edges_after: graph.num_edges(),
            tree_edges: tree.num_edges(),
            kept_by_lrd: 0,
            kept_by_eta: kept_random,
        },
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_embed::{knn_graph, KnnConfig};
    use cirstag_linalg::DenseMatrix;

    /// Dense kNN graph over a 2-D grid of points.
    fn dense_grid(side: usize, k: usize) -> (Graph, DenseMatrix) {
        let mut rows = Vec::new();
        for i in 0..side {
            for j in 0..side {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let pts = DenseMatrix::from_rows(&rows).unwrap();
        let g = knn_graph(&pts, k, &KnnConfig::default()).unwrap();
        (g, pts)
    }

    #[test]
    fn sparsifier_respects_budget_and_connectivity() {
        let (dense, _) = dense_grid(8, 8);
        let cfg = PgmConfig {
            degree_target: 4.0,
            ..PgmConfig::default()
        };
        let result = learn_manifold(&dense, &cfg).unwrap();
        assert!(result.graph.is_connected());
        assert!(result.graph.num_edges() <= (4.0_f64 * 64.0 / 2.0).ceil() as usize + 1);
        assert!(result.graph.num_edges() < dense.num_edges());
        assert_eq!(
            result.stats.edges_after,
            result.stats.tree_edges + result.stats.kept_by_lrd + result.stats.kept_by_eta
        );
    }

    #[test]
    fn sparsifier_preserves_quadratic_form_better_than_random() {
        let (dense, _) = dense_grid(7, 8);
        let cfg = PgmConfig {
            degree_target: 3.0,
            ..PgmConfig::default()
        };
        let smart = learn_manifold(&dense, &cfg).unwrap().graph;
        let random = random_prune(&dense, &cfg).unwrap().graph;

        // Compare Rayleigh-quotient distortion on smooth test vectors
        // (coordinates of the grid): a good sparsifier keeps the ratio near 1.
        let n = dense.num_nodes();
        let mut max_err_smart = 0.0f64;
        let mut max_err_random = 0.0f64;
        for probe in 0..6u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| {
                    let v = (i as u64).wrapping_mul(probe * 2 + 3) % 19;
                    v as f64 / 19.0 - 0.5
                })
                .collect();
            let full = dense.laplacian_quadratic_form(&x);
            if full < 1e-12 {
                continue;
            }
            let rs = smart.laplacian_quadratic_form(&x) / full;
            let rr = random.laplacian_quadratic_form(&x) / full;
            max_err_smart = max_err_smart.max((rs - 1.0).abs());
            max_err_random = max_err_random.max((rr - 1.0).abs());
        }
        assert!(
            max_err_smart <= max_err_random + 0.05,
            "smart {max_err_smart} vs random {max_err_random}"
        );
    }

    #[test]
    fn tiny_graphs_pass_through() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let r = learn_manifold(&g, &PgmConfig::default()).unwrap();
        assert_eq!(r.graph.num_edges(), 1);
        assert_eq!(r.stats.edges_before, 1);
    }

    #[test]
    fn validation() {
        let (dense, _) = dense_grid(4, 3);
        assert!(learn_manifold(
            &dense,
            &PgmConfig {
                degree_target: 0.0,
                ..PgmConfig::default()
            }
        )
        .is_err());
        assert!(learn_manifold(
            &dense,
            &PgmConfig {
                resistance_probes: 0,
                ..PgmConfig::default()
            }
        )
        .is_err());
        assert!(learn_manifold(
            &dense,
            &PgmConfig {
                lrd_keep_quantile: 1.5,
                ..PgmConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn disconnected_input_rejected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            learn_manifold(&g, &PgmConfig::default()),
            Err(PgmError::Graph(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (dense, _) = dense_grid(6, 6);
        let cfg = PgmConfig::default();
        let a = learn_manifold(&dense, &cfg).unwrap();
        let b = learn_manifold(&dense, &cfg).unwrap();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
        }
    }

    #[test]
    fn generous_budget_keeps_everything() {
        let (dense, _) = dense_grid(5, 4);
        let cfg = PgmConfig {
            degree_target: 100.0,
            ..PgmConfig::default()
        };
        let r = learn_manifold(&dense, &cfg).unwrap();
        assert_eq!(r.graph.num_edges(), dense.num_edges());
    }

    #[test]
    fn random_prune_matches_budget() {
        let (dense, _) = dense_grid(6, 8);
        let cfg = PgmConfig {
            degree_target: 3.0,
            ..PgmConfig::default()
        };
        let smart = learn_manifold(&dense, &cfg).unwrap();
        let random = random_prune(&dense, &cfg).unwrap();
        assert_eq!(smart.graph.num_edges(), random.graph.num_edges());
        assert!(random.graph.is_connected());
    }
}
