//! The PGM maximum-likelihood objective of Eq. (6), for evaluation and tests.

use crate::PgmError;
use cirstag_graph::Graph;
use cirstag_linalg::{jacobi_eigen, vecops, DenseMatrix};

/// The two terms of the PGM objective `F(Θ) = F₁ − F₂ / M` (Eq. 6) for
/// `Θ = L + I/σ²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgmObjective {
    /// `F₁ = log det Θ = Σᵢ log(λᵢ + 1/σ²)`.
    pub log_det: f64,
    /// `F₂ = Tr(XᵀΘX) = Tr(XᵀX)/σ² + Σ_pq w_pq ‖Xᵀe_pq‖²`.
    pub trace_term: f64,
    /// Number of data columns `M` used for the `1/M` scaling.
    pub num_samples: usize,
}

impl PgmObjective {
    /// The combined objective `F₁ − F₂ / M`.
    pub fn value(&self) -> f64 {
        self.log_det - self.trace_term / self.num_samples.max(1) as f64
    }
}

/// Evaluates the PGM objective for graph `g`, data matrix `x` (rows = nodes,
/// columns = samples/dimensions) and prior variance `sigma²`.
///
/// Uses a dense eigendecomposition for the log-determinant, so this is an
/// `O(n³)` diagnostic intended for tests, ablations and small graphs — the
/// sparsifier itself never calls it.
///
/// # Errors
///
/// - [`PgmError::InvalidArgument`] when shapes disagree or `sigma² ≤ 0`.
/// - Propagates eigensolver failures.
pub fn pgm_objective(g: &Graph, x: &DenseMatrix, sigma_sq: f64) -> Result<PgmObjective, PgmError> {
    let n = g.num_nodes();
    if x.nrows() != n {
        return Err(PgmError::InvalidArgument {
            reason: format!("data matrix has {} rows but graph has {n} nodes", x.nrows()),
        });
    }
    if !(sigma_sq.is_finite() && sigma_sq > 0.0) {
        return Err(PgmError::InvalidArgument {
            reason: format!("sigma² = {sigma_sq} must be positive and finite"),
        });
    }
    let lap = g.laplacian().to_dense();
    let (eigenvalues, _) = jacobi_eigen(&lap)?;
    let inv_sigma_sq = 1.0 / sigma_sq;
    let log_det: f64 = eigenvalues
        .iter()
        .map(|&lam| (lam.max(0.0) + inv_sigma_sq).ln())
        .sum();

    // Tr(XᵀX)/σ²
    let mut trace_xx = 0.0;
    for i in 0..n {
        trace_xx += vecops::dot(x.row(i), x.row(i));
    }
    // Σ w_pq ‖Xᵀ e_pq‖² = Σ w_pq ‖x_p − x_q‖².
    let mut smooth = 0.0;
    for e in g.edges() {
        smooth += e.weight * vecops::dist2_sq(x.row(e.u), x.row(e.v));
    }
    Ok(PgmObjective {
        log_det,
        trace_term: trace_xx * inv_sigma_sq + smooth,
        num_samples: x.ncols().max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Graph, DenseMatrix) {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let x = DenseMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.1],
            vec![2.0, -0.1],
            vec![1.0, 0.0],
        ])
        .unwrap();
        (g, x)
    }

    #[test]
    fn objective_components_are_finite() {
        let (g, x) = toy();
        let f = pgm_objective(&g, &x, 1.0).unwrap();
        assert!(f.log_det.is_finite());
        assert!(f.trace_term.is_finite());
        assert!(f.value().is_finite());
    }

    #[test]
    fn log_det_matches_hand_computation_for_empty_graph() {
        // Θ = I/σ² for an edgeless graph: log det = n·log(1/σ²).
        let g = Graph::new(3);
        let x = DenseMatrix::zeros(3, 1);
        let f = pgm_objective(&g, &x, 0.5).unwrap();
        assert!((f.log_det - 3.0 * (2.0_f64).ln()).abs() < 1e-10);
        assert_eq!(f.trace_term, 0.0);
    }

    #[test]
    fn smoothness_term_grows_with_disagreement() {
        let g = Graph::from_edges(2, &[(0, 1, 2.0)]).unwrap();
        let close = DenseMatrix::from_rows(&[vec![0.0], vec![0.1]]).unwrap();
        let far = DenseMatrix::from_rows(&[vec![0.0], vec![5.0]]).unwrap();
        let fc = pgm_objective(&g, &close, 1.0).unwrap();
        let ff = pgm_objective(&g, &far, 1.0).unwrap();
        assert!(ff.trace_term > fc.trace_term);
    }

    #[test]
    fn removing_redundant_edge_changes_objective_as_expected() {
        // Dropping an edge lowers both log det (F1) and the smoothness part
        // of F2; for an edge between *distant* data points the F2 drop
        // dominates, so the overall objective improves.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0]]).unwrap();
        let pruned = g.filter_edges(|_, e| !(e.u == 0 && e.v == 2));
        let f_full = pgm_objective(&g, &x, 1.0).unwrap();
        let f_pruned = pgm_objective(&pruned, &x, 1.0).unwrap();
        assert!(f_pruned.log_det < f_full.log_det);
        assert!(f_pruned.trace_term < f_full.trace_term);
        assert!(f_pruned.value() > f_full.value());
    }

    #[test]
    fn validation() {
        let (g, x) = toy();
        assert!(pgm_objective(&g, &x, 0.0).is_err());
        assert!(pgm_objective(&g, &x, f64::NAN).is_err());
        let bad = DenseMatrix::zeros(2, 2);
        assert!(pgm_objective(&g, &bad, 1.0).is_err());
    }
}
