use std::error::Error;
use std::fmt;

/// Error type for PGM manifold learning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PgmError {
    /// An underlying solver operation failed.
    Solver(cirstag_solver::SolverError),
    /// An underlying graph operation failed.
    Graph(cirstag_graph::GraphError),
    /// An underlying linear-algebra operation failed.
    Linalg(cirstag_linalg::LinalgError),
    /// An argument was invalid.
    InvalidArgument {
        /// Description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::Solver(e) => write!(f, "solver error: {e}"),
            PgmError::Graph(e) => write!(f, "graph error: {e}"),
            PgmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            PgmError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl Error for PgmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PgmError::Solver(e) => Some(e),
            PgmError::Graph(e) => Some(e),
            PgmError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cirstag_solver::SolverError> for PgmError {
    fn from(e: cirstag_solver::SolverError) -> Self {
        PgmError::Solver(e)
    }
}

impl From<cirstag_graph::GraphError> for PgmError {
    fn from(e: cirstag_graph::GraphError) -> Self {
        PgmError::Graph(e)
    }
}

impl From<cirstag_linalg::LinalgError> for PgmError {
    fn from(e: cirstag_linalg::LinalgError) -> Self {
        PgmError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: PgmError = cirstag_graph::GraphError::Disconnected.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PgmError>();
    }
}
