//! Fixture-driven rule tests: each file under `tests/fixtures/violations/`
//! must trip exactly its rule, each file under `tests/fixtures/clean/` must
//! lint active-clean.
//!
//! The fixtures live under a `tests/fixtures/` path, which the workspace walk
//! classifies as `Exempt` — so they never pollute a real `cargo run -p
//! cirstag-lint` sweep. Here we load their *contents* and lint them under a
//! synthetic lib path inside a result-affecting crate
//! (`crates/graph/src/…`), which makes every rule applicable.

use cirstag_lint::report::Finding;
use cirstag_lint::rules;
use cirstag_lint::source::SourceFile;
use cirstag_lint::workspace::WorkspaceCtx;
use std::fs;
use std::path::Path;

/// Lints a fixture file as if it were library code in `cirstag-graph`.
fn lint_fixture(dir: &str, name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let file = SourceFile::from_source(&format!("crates/graph/src/{name}"), &src);
    cirstag_lint::lint_file(&file, &WorkspaceCtx::default())
}

fn active<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| !f.waived && f.rule == rule)
        .collect()
}

#[test]
fn no_panic_violations_fire() {
    let findings = lint_fixture("violations", "no_panic.rs");
    // unwrap, expect, panic!, todo!, and a literal index: five sites.
    assert_eq!(active(&findings, rules::NO_PANIC).len(), 5, "{findings:#?}");
}

#[test]
fn no_panic_clean_is_silent() {
    let findings = lint_fixture("clean", "no_panic.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn float_discipline_violations_fire() {
    let findings = lint_fixture("violations", "float.rs");
    // ==, != against literals plus a bare f64::NAN: three sites.
    assert_eq!(
        active(&findings, rules::FLOAT_DISCIPLINE).len(),
        3,
        "{findings:#?}"
    );
}

#[test]
fn float_discipline_clean_is_silent() {
    let findings = lint_fixture("clean", "float.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn feature_hygiene_violations_fire() {
    let findings = lint_fixture("violations", "feature.rs");
    assert!(
        !active(&findings, rules::FEATURE_HYGIENE).is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn feature_hygiene_clean_is_silent() {
    let findings = lint_fixture("clean", "feature.rs");
    assert!(
        active(&findings, rules::FEATURE_HYGIENE).is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn determinism_violations_fire() {
    let findings = lint_fixture("violations", "determinism.rs");
    assert!(
        !active(&findings, rules::DETERMINISM).is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn determinism_clean_is_silent() {
    let findings = lint_fixture("clean", "determinism.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn determinism_only_applies_to_result_affecting_crates() {
    // The same HashMap-using source under a non-result-affecting crate
    // (cirstag-gnn is not in RESULT_AFFECTING) must not trip the rule.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations/determinism.rs");
    let src = fs::read_to_string(path).unwrap();
    let file = SourceFile::from_source("crates/gnn/src/determinism.rs", &src);
    let findings = cirstag_lint::lint_file(&file, &WorkspaceCtx::default());
    assert!(
        active(&findings, rules::DETERMINISM).is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn error_hygiene_violations_fire() {
    let findings = lint_fixture("violations", "error_hygiene.rs");
    // Both pub fns assert on their unit-returning paths.
    assert_eq!(
        active(&findings, rules::ERROR_HYGIENE).len(),
        2,
        "{findings:#?}"
    );
}

#[test]
fn error_hygiene_clean_is_silent() {
    let findings = lint_fixture("clean", "error_hygiene.rs");
    assert!(
        active(&findings, rules::ERROR_HYGIENE).is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn cast_truncation_violations_fire() {
    let findings = lint_fixture("violations", "cast.rs");
    // u64->u32, f64->f32, i64->u8, f64->isize: four lossy sites.
    assert_eq!(
        active(&findings, rules::CAST_TRUNCATION).len(),
        4,
        "{findings:#?}"
    );
}

#[test]
fn cast_truncation_clean_is_silent() {
    let findings = lint_fixture("clean", "cast.rs");
    assert!(
        active(&findings, rules::CAST_TRUNCATION).is_empty(),
        "{findings:#?}"
    );
    // The waived lossy cast is reported as waived, not dropped.
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rules::CAST_TRUNCATION && f.waived),
        "{findings:#?}"
    );
}

#[test]
fn pub_doc_violations_fire() {
    let findings = lint_fixture("violations", "pub_doc.rs");
    // Undocumented const, struct, named field, fn, and impl method: five.
    assert_eq!(active(&findings, rules::PUB_DOC).len(), 5, "{findings:#?}");
}

#[test]
fn pub_doc_clean_is_silent() {
    let findings = lint_fixture("clean", "pub_doc.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn unsafe_safety_violations_fire() {
    let findings = lint_fixture("violations", "unsafe_safety.rs");
    // Unjustified block, unsafe fn without `# Safety`, unsafe impl, and an
    // empty rationale: four sites.
    assert_eq!(
        active(&findings, rules::UNSAFE_SAFETY).len(),
        4,
        "{findings:#?}"
    );
}

#[test]
fn unsafe_safety_clean_is_silent() {
    let findings = lint_fixture("clean", "unsafe_safety.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn lock_order_violations_fire() {
    let findings = lint_fixture("violations", "lock_order.rs");
    // Both reversed acquisition sites of the lo/hi cycle are reported.
    assert_eq!(
        active(&findings, rules::LOCK_ORDER).len(),
        2,
        "{findings:#?}"
    );
}

#[test]
fn lock_order_clean_is_silent() {
    let findings = lint_fixture("clean", "lock_order.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn nondeterminism_violations_fire() {
    let findings = lint_fixture("violations", "nondeterminism.rs");
    // Instant::now, .elapsed(), pool-width branch, ThreadId,
    // thread::current, .keys() on a HashMap, `for .. in` a HashSet: seven.
    assert_eq!(
        active(&findings, rules::NONDETERMINISM).len(),
        7,
        "{findings:#?}"
    );
}

#[test]
fn nondeterminism_clean_is_silent() {
    let findings = lint_fixture("clean", "nondeterminism.rs");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn nondeterminism_only_applies_to_result_affecting_crates() {
    // The same sources under cirstag-gnn (not result-affecting) must not
    // trip the rule.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations/nondeterminism.rs");
    let src = fs::read_to_string(path).unwrap();
    let file = SourceFile::from_source("crates/gnn/src/nondeterminism.rs", &src);
    let findings = cirstag_lint::lint_file(&file, &WorkspaceCtx::default());
    assert!(
        active(&findings, rules::NONDETERMINISM).is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn unsafe_safety_applies_even_outside_result_affecting_crates() {
    // Unsafe hygiene is workspace-wide: the same sources under cirstag-gnn
    // still fire.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations/unsafe_safety.rs");
    let src = fs::read_to_string(path).unwrap();
    let file = SourceFile::from_source("crates/gnn/src/unsafe_safety.rs", &src);
    let findings = cirstag_lint::lint_file(&file, &WorkspaceCtx::default());
    assert_eq!(
        active(&findings, rules::UNSAFE_SAFETY).len(),
        4,
        "{findings:#?}"
    );
}

#[test]
fn waiver_with_reason_is_honored() {
    let findings = lint_fixture("clean", "waived.rs");
    // The violation is still *reported* — waived, never silently dropped.
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].waived);
    assert!(findings[0]
        .waiver_reason
        .as_deref()
        .is_some_and(|r| r.contains("non-empty")));
    assert!(findings.iter().all(|f| f.waived), "no active findings");
}

#[test]
fn waiver_without_reason_is_rejected() {
    let findings = lint_fixture("violations", "waiver_no_reason.rs");
    // The underlying finding stays active…
    assert_eq!(active(&findings, rules::NO_PANIC).len(), 1, "{findings:#?}");
    // …and the malformed waiver is a finding of its own, never waivable.
    assert_eq!(
        active(&findings, rules::WAIVER_SYNTAX).len(),
        1,
        "{findings:#?}"
    );
}

#[test]
fn fixtures_are_exempt_from_the_workspace_walk() {
    // Loaded under their real path, the violation fixtures classify as
    // Exempt and produce nothing — they can never fail a repo sweep.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations/no_panic.rs");
    let src = fs::read_to_string(path).unwrap();
    let file = SourceFile::from_source("crates/lint/tests/fixtures/violations/no_panic.rs", &src);
    let findings = cirstag_lint::lint_file(&file, &WorkspaceCtx::default());
    assert!(findings.is_empty(), "{findings:#?}");
}
