//! Fixture: consistent acquisition order and an early `drop` keep the lock
//! graph acyclic — textually reversed acquisitions are fine once the first
//! guard is released.

use std::sync::Mutex;

/// A pair of counters guarded by separate locks.
pub struct Pair {
    lo: Mutex<u64>,
    hi: Mutex<u64>,
}

impl Pair {
    /// Sums under the canonical lo-then-hi order.
    pub fn sum(&self) -> u64 {
        let glo = self.lo.lock();
        let ghi = self.hi.lock();
        combine(&glo, &ghi)
    }

    /// Reads hi first but releases it before touching lo, so no hi→lo
    /// hold-while-acquiring edge exists.
    pub fn staged(&self) -> u64 {
        let ghi = self.hi.lock();
        let h = peek(&ghi);
        drop(ghi);
        let glo = self.lo.lock();
        h + peek(&glo)
    }
}
