// Fixture: the typed-error idioms the `no-panic-in-lib` rule must accept.

/// Converts a missing value into a typed error.
pub fn checked_get(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing value".to_string())
}

/// First element without panicking on empty input.
pub fn checked_index(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

/// Propagates the empty-input case as a typed error.
pub fn propagated(xs: &[u32]) -> Result<u32, String> {
    let head = xs.get(0).copied().ok_or("empty")?;
    Ok(head)
}

#[cfg(test)]
mod tests {
    // Panics are fine inside test regions.
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
