//! Fixture: every `unsafe` construct carries its SAFETY rationale, in each
//! accepted position — `# Safety` doc section, preceding comment block
//! (skipping attribute lines), and trailing same-line comment.

/// Reads the first byte behind `p`.
///
/// # Safety
///
/// `p` must be non-null, aligned, and valid for reads of one byte.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller upholds the validity contract documented above.
    unsafe { *p }
}

/// Safe wrapper around a reference-derived pointer.
pub fn read_checked(x: &u8) -> u8 {
    let p: *const u8 = x;
    // SAFETY: `p` was just derived from a live shared reference, so it is
    // valid, aligned, and initialized for the duration of this read.
    unsafe { *p }
}

/// Reads with the rationale trailing on the same line.
pub fn read_trailing(x: &u8) -> u8 {
    let p: *const u8 = x;
    unsafe { *p } // SAFETY: derived from a live reference one line up.
}

/// Types whose all-zero byte pattern is a valid value.
///
/// # Safety
///
/// Implementors guarantee zeroed memory is a valid instance.
pub unsafe trait Zeroable {}

// SAFETY: all-zero bits are a valid u8 (the value 0).
#[allow(dead_code)]
unsafe impl Zeroable for u8 {}
