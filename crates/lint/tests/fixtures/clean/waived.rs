// Fixture: a real violation covered by a well-formed waiver with a reason —
// the finding must be reported as waived, leaving the file active-clean.

/// First element; callers guarantee non-empty input.
pub fn head(xs: &[u32]) -> u32 {
    xs[0] // cirstag-lint: allow(no-panic-in-lib) -- fixture documents the waiver syntax; callers guarantee non-empty input
}
