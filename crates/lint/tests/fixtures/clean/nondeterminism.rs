//! Fixture: the deterministic counterparts — sorted containers for
//! iteration, pool width read outside any branch condition, and timing
//! threaded in as data rather than read from the clock.

use std::collections::BTreeMap;

/// Iterating a `BTreeMap` is ordered; no finding.
pub fn ordered_sum(scores: &BTreeMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (_k, v) in scores {
        acc += v;
    }
    acc
}

/// Reading the pool width into data (not a branch condition) is allowed;
/// chunk geometry is pinned by the caller-visible constant instead.
pub fn plan_chunks(len: usize) -> usize {
    let width = par::current_num_threads();
    let _ = width;
    len.div_ceil(64)
}

/// Durations arrive as data; nothing reads the clock here.
pub fn throughput(items: u64, elapsed_secs: f64) -> f64 {
    items as f64 / elapsed_secs.max(1e-9)
}
