// Fixture: correctly gated rayon with a serial fallback — the seam idiom
// the `feature-hygiene` rule enforces.

/// Doubles and sums, fanning out across the rayon pool.
#[cfg(feature = "parallel")]
pub fn map_sum(xs: &[f64]) -> f64 {
    use rayon::prelude::*;
    xs.par_iter().map(|x| x * 2.0).sum()
}

/// Doubles and sums serially.
#[cfg(not(feature = "parallel"))]
pub fn map_sum(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * 2.0).sum()
}
