//! pub-doc clean: every public item carries a doc comment; restricted
//! visibility and re-exports are exempt.

/// Number of probes the sketch averages.
pub const NUM_PROBES: usize = 64;

/// A documented configuration struct.
#[derive(Debug, Clone)]
pub struct Config {
    /// Neighbor count per node.
    pub k: usize,
    /// Seed for the deterministic RNG.
    pub seed: u64,
}

/// Builds the default configuration.
pub fn default_config() -> Config {
    Config { k: 10, seed: 1 }
}

/// A documented zero-cost marker.
pub struct Marker;

impl Marker {
    /// A documented constructor.
    pub const fn new() -> Marker {
        Marker
    }
}

pub(crate) fn internal_helper() -> usize {
    NUM_PROBES
}

pub use std::mem::swap;
