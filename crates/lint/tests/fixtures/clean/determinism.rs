// Fixture: ordered containers the `determinism` rule accepts in
// result-affecting crates.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Counts distinct keys with deterministic ordered iteration.
pub fn tally(keys: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for &k in keys {
        seen.insert(k);
    }
    seen.len()
}

/// An empty ordered weight map.
pub fn weights() -> BTreeMap<u32, f64> {
    BTreeMap::new()
}
