//! cast-truncation clean: lossless conversions, typed fallible casts, the
//! exempt `as f64` widening, and a waived lossy cast with its range proof.

use std::time::Duration;

/// Typed fallible narrowing: the failure surfaces instead of wrapping.
pub fn narrow(x: u64) -> Option<u32> {
    u32::try_from(x).ok()
}

/// Saturating conversion through `try_from`, the idiom the solver's
/// diagnostics use for elapsed-millisecond timestamps.
pub fn elapsed_ms(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX) // cirstag-lint: allow(no-panic-in-lib) -- unwrap_or never panics; saturation fallback
}

/// Lossless widenings: `From` for integers, `as f64` for the one cast the
/// rule exempts (exact for every integer up to 2^53 and every f32).
pub fn widen(a: u16, b: u32, c: f32) -> f64 {
    let wide = u64::from(a) + u64::from(b);
    wide as f64 + c as f64
}

/// A genuinely lossy cast carrying its range proof as a waiver.
pub fn bucket(i: usize) -> u8 {
    (i % 251) as u8 // cirstag-lint: allow(cast-truncation) -- i % 251 < 256, always in u8 range
}
