// Fixture: the typed-error and debug-only idioms the `error-hygiene` rule
// accepts.

/// Sets the length, rejecting zero with a typed error.
pub fn set_len(len: usize) -> Result<(), String> {
    if len == 0 {
        return Err("len must be positive".to_string());
    }
    Ok(())
}

/// Debug-build sanity check; free in release builds.
pub fn debug_only_check(len: usize) {
    debug_assert!(len < 1_000_000);
}

fn private_helpers_may_assert(len: usize) {
    assert!(len > 0);
}
