// Fixture: tolerance-based float handling the `float-discipline` rule accepts.

/// Tolerance-based float equality.
pub fn close(x: f64, y: f64) -> bool {
    (x - y).abs() < 1e-12
}

/// `true` for NaN or infinite inputs.
pub fn is_invalid(x: f64) -> bool {
    x.is_nan() || !x.is_finite()
}

/// Integer equality is exact and allowed.
pub fn int_eq_is_fine(n: usize) -> bool {
    n == 0
}
