//! Fixture: two methods acquire the same two mutexes in opposite orders,
//! closing a cycle in the lock graph — both reversed acquisition sites are
//! reported.

use std::sync::Mutex;

/// A pair of counters guarded by separate locks.
pub struct Pair {
    lo: Mutex<u64>,
    hi: Mutex<u64>,
}

impl Pair {
    /// Sums under lo-then-hi.
    pub fn sum_forward(&self) -> u64 {
        let glo = self.lo.lock();
        let ghi = self.hi.lock();
        combine(&glo, &ghi)
    }

    /// Sums under hi-then-lo — the reversed order that closes the cycle.
    pub fn sum_reverse(&self) -> u64 {
        let ghi = self.hi.lock();
        let glo = self.lo.lock();
        combine(&glo, &ghi)
    }
}
