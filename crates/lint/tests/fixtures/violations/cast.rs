//! cast-truncation violations: every lossy `as` numeric cast fires.

pub fn truncating(x: u64, y: f64, z: i64) -> u32 {
    let a = x as u32; // u64 -> u32 truncates high bits
    let b = y as f32; // f64 -> f32 rounds away mantissa bits
    let c = z as u8; // i64 -> u8 wraps and drops the sign
    let d = y as isize; // f64 -> isize saturates silently
    a.wrapping_add(b.to_bits())
        .wrapping_add(u32::from(c))
        .wrapping_add(d.unsigned_abs().count_ones())
}
