//! Fixture: nondeterministic constructs in result-affecting code — seven
//! `nondeterminism` sites (the hash containers also trip the coarser
//! `determinism` rule; this file pins only the dataflow-aware rule's count).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Wall-clock readings flowing into a returned value.
pub fn timed_sum(xs: &[u64]) -> (u64, f64) {
    let t0 = Instant::now();
    let total = xs.iter().sum();
    let secs = t0.elapsed().as_secs_f64();
    (total, secs)
}

/// Control flow branching on pool width.
pub fn chunked_len(xs: &[u64]) -> usize {
    if rayon::current_num_threads() > 1 {
        xs.len() / 2
    } else {
        xs.len()
    }
}

/// Results keyed by thread identity.
pub fn worker_key() -> std::thread::ThreadId {
    std::thread::current().id()
}

/// Hash-order iteration, method form.
pub fn first_key() -> Option<u64> {
    let mut scores: HashMap<u64, u64> = HashMap::new();
    scores.insert(1, 2);
    scores.keys().next().copied()
}

/// Hash-order iteration, `for` form.
pub fn total() -> u64 {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(3);
    let mut acc = 0;
    for v in seen {
        acc += v;
    }
    acc
}
