// Fixture: a waiver missing the mandatory `-- <reason>` tail. The underlying
// finding must stay active AND the waiver itself must be flagged.

pub fn head(xs: &[u32]) -> u32 {
    xs[0] // cirstag-lint: allow(no-panic-in-lib)
}
