// Fixture: float comparisons the `float-discipline` rule must catch.

pub fn eq_literal(x: f64) -> bool {
    x == 0.0
}

pub fn ne_literal(x: f64) -> bool {
    x != 1.5
}

pub fn bare_nan() -> f64 {
    f64::NAN
}
