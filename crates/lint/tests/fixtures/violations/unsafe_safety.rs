//! Fixture: `unsafe` without a SAFETY rationale — four sites.

/// Reads through a raw pointer with no stated justification.
pub fn read_unjustified(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Documented, but without the section stating the caller contract, and
/// the signature carries no rationale comment either.
pub unsafe fn advance(p: *const u8) -> *const u8 {
    p.wrapping_add(1)
}

/// Marker for byte-reinterpretable types.
pub trait Pod {}

unsafe impl Pod for u8 {}

/// The annotation is present but the rationale after the colon is empty.
pub fn read_empty_rationale(p: *const u8) -> u8 {
    // SAFETY:
    unsafe { *p }
}
