// Fixture: a pub fn that asserts instead of returning a typed error — the
// shape the `error-hygiene` rule must catch.

pub fn set_len(len: usize) {
    assert!(len > 0, "len must be positive");
}

pub fn check_pair(a: usize, b: usize) {
    assert_eq!(a, b);
}
