// Fixture: every panic avenue the `no-panic-in-lib` rule must catch.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_site(x: Option<u32>) -> u32 {
    x.expect("missing value")
}

pub fn panic_site() -> u32 {
    panic!("library code must not panic")
}

pub fn todo_site() -> u32 {
    todo!()
}

pub fn literal_index(xs: &[u32]) -> u32 {
    xs[0]
}
