//! pub-doc violations: five undocumented public items — a const, a struct,
//! a named field, a fn, and an impl method.

pub const NUM_PROBES: usize = 64;

#[derive(Debug, Clone)]
pub struct Config {
    pub k: usize,
}

pub fn default_config() -> Config {
    Config { k: 10 }
}

/// Documented struct whose method below is not.
pub struct Marker;

impl Marker {
    pub const fn new() -> Marker {
        Marker
    }
}
