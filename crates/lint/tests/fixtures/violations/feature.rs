// Fixture: ungated rayon use the `feature-hygiene` rule must catch.

use rayon::prelude::*;

pub fn parallel_sum(xs: &[f64]) -> f64 {
    xs.par_iter().sum()
}
