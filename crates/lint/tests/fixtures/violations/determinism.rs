// Fixture: iteration-order and entropy hazards the `determinism` rule must
// catch in result-affecting crates.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    for &k in keys {
        seen.insert(k);
    }
    seen.len()
}

pub fn weights() -> HashMap<u32, f64> {
    HashMap::new()
}
