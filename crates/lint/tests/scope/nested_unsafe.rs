// Scope-tree fixture: unsafe fns, unsafe traits/impls, and unsafe blocks —
// including one nested inside a closure inside an unsafe block.

pub unsafe trait Zeroable {}

unsafe impl Zeroable for u64 {}

pub unsafe fn read_first(p: *const u64) -> u64 {
    unsafe { *p }
}

fn wraps(p: *const u64) -> u64 {
    let run = || {
        unsafe {
            let v = unsafe { read_first(p) };
            v
        }
    };
    run()
}

mod inner {
    pub fn in_module(p: *const u8) -> u8 {
        unsafe { *p }
    }
}
