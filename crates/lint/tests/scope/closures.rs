// Scope-tree fixture: closures in every position the builder's pipe-opener
// heuristic must classify — assignment, argument, nested, and `move`.

fn apply(f: impl Fn(usize) -> usize) -> usize {
    f(1)
}

fn closures_everywhere(xs: &[usize]) -> usize {
    let double = |x: usize| -> usize { x * 2 };
    let captured = move |y: usize| {
        let inner = |z: usize| -> usize { z + 1 };
        inner(y) + double(y)
    };
    let folded = xs.iter().fold(0usize, |acc, &v| {
        let bumped = captured(v);
        acc + bumped
    });
    let braceless = xs.iter().map(|v| v + 1).count();
    apply(|n| {
        let m = n | folded;
        m | braceless
    })
}
