// Scope-tree fixture: match scopes with guards, braced arms, and a nested
// match in an arm body. Guards (`if` before `=>`) must not open scopes.

fn classify(x: i64, flag: bool) -> &'static str {
    match x {
        0 if flag => "zero-flagged",
        0 => "zero",
        n if n < 0 => {
            let m = -n;
            if m > 10 {
                "very negative"
            } else {
                "negative"
            }
        }
        _ => match flag {
            true => "positive-flagged",
            false => "positive",
        },
    }
}

fn guard_with_method(x: Option<usize>) -> usize {
    match x {
        Some(v) if v.is_power_of_two() => v,
        Some(v) => {
            let doubled = v * 2;
            doubled
        }
        None => 0,
    }
}
