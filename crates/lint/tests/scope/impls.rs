// Scope-tree fixture: inherent impls, trait impls (`for` segment wins),
// generic impls, and a path-qualified trait impl.

pub struct Store {
    items: Vec<usize>,
}

pub struct Wrapper<T> {
    inner: T,
}

pub trait Describe {
    fn describe(&self) -> String;
}

impl Store {
    pub fn new() -> Store {
        Store { items: Vec::new() }
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl<T> Describe for Wrapper<T> {
    fn describe(&self) -> String {
        String::from("wrapper")
    }
}

impl core::fmt::Debug for Store {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Store").finish()
    }
}
