//! Golden-file pins for the scope-tree builder.
//!
//! Each fixture under `tests/scope/` is lexed and scope-resolved, and the
//! indented [`ScopeTree::dump`] text is compared byte-for-byte against the
//! committed `.golden` file next to it. Any change to the builder's
//! classification (closure detection, impl-type resolution, match/unsafe
//! handling) shows up as a readable tree diff here rather than as a silent
//! behavior shift in the dataflow rules built on top.
//!
//! To regenerate after an intentional change:
//! `BLESS_SCOPE_GOLDEN=1 cargo test -p cirstag-lint --test scope_golden`
//! then review the `.golden` diff before committing.

use cirstag_lint::lexer;
use cirstag_lint::scope::ScopeTree;
use std::path::PathBuf;

fn check(name: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scope");
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs"))).expect("read fixture source");
    let dump = ScopeTree::build(&lexer::lex(&src).tokens).dump();
    let golden_path = dir.join(format!("{name}.golden"));
    if std::env::var_os("BLESS_SCOPE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &dump).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}; regenerate with BLESS_SCOPE_GOLDEN=1",
            golden_path.display()
        )
    });
    assert_eq!(
        dump, golden,
        "scope dump drifted for `{name}`; if intentional, regenerate with \
         BLESS_SCOPE_GOLDEN=1 and review the .golden diff"
    );
}

#[test]
fn closures() {
    check("closures");
}

#[test]
fn impls() {
    check("impls");
}

#[test]
fn match_guards() {
    check("match_guards");
}

#[test]
fn nested_unsafe() {
    check("nested_unsafe");
}
