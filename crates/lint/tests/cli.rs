//! End-to-end parity test for the `cirstag-lint` binary: the human and
//! `--json` output modes must agree on the finding set and the exit code.
//!
//! The binary is exercised against synthetic workspaces assembled in the
//! test's temp directory from the fixture corpus, so the test never depends
//! on the state of the real repository.

use cirstag_lint::report::LintReport;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Builds `<tmp>/cirstag-lint-cli-<pid>-<tag>/crates/graph/src/lib.rs`
/// holding `contents` and returns the workspace root. `crates/graph` keeps
/// every rule applicable (result-affecting, Lib classification).
fn temp_workspace(tag: &str, contents: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("cirstag-lint-cli-{}-{tag}", std::process::id()));
    let src = root.join("crates/graph/src");
    fs::create_dir_all(&src).expect("create temp workspace");
    fs::write(src.join("lib.rs"), contents).expect("write temp lib.rs");
    root
}

fn fixture(dir: &str, name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn run_binary(root: &Path, json: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cirstag-lint"));
    cmd.arg("--no-report").arg("--root").arg(root);
    if json {
        cmd.arg("--json");
    }
    cmd.output().expect("spawn cirstag-lint")
}

/// Active findings as `(file, line, rule)` keys from the `--json` report.
fn json_keys(stdout: &[u8]) -> BTreeSet<(String, usize, String)> {
    let text = String::from_utf8(stdout.to_vec()).expect("json output is UTF-8");
    let report: LintReport = serde_json::from_str(&text).expect("stdout parses as a LintReport");
    report
        .active_findings()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect()
}

/// Active findings as `(file, line, rule)` keys from the human output, whose
/// finding lines read `path:line: [rule] message` (snippet and summary lines
/// are indented or prefixed with `cirstag-lint:`).
fn human_keys(stdout: &[u8]) -> BTreeSet<(String, usize, String)> {
    let text = String::from_utf8(stdout.to_vec()).expect("human output is UTF-8");
    let mut keys = BTreeSet::new();
    for line in text.lines() {
        if line.starts_with(char::is_whitespace) || line.starts_with("cirstag-lint:") {
            continue;
        }
        let (loc, rest) = line.split_once(": [").expect("finding line shape");
        let (file, line_no) = loc.rsplit_once(':').expect("path:line prefix");
        let (rule, _msg) = rest.split_once(']').expect("[rule] tag");
        keys.insert((
            file.to_string(),
            line_no.parse().expect("numeric line"),
            rule.to_string(),
        ));
    }
    keys
}

#[test]
fn json_and_human_modes_agree_on_findings_and_exit_code() {
    let root = temp_workspace("violations", &fixture("violations", "no_panic.rs"));
    let human = run_binary(&root, false);
    let json = run_binary(&root, true);
    let _ = fs::remove_dir_all(&root);

    assert_eq!(human.status.code(), Some(1), "human mode fails on findings");
    assert_eq!(json.status.code(), Some(1), "json mode fails on findings");

    let hk = human_keys(&human.stdout);
    let jk = json_keys(&json.stdout);
    assert!(!jk.is_empty(), "violation workspace produces findings");
    assert_eq!(hk, jk, "both modes report the same (file, line, rule) set");
}

#[test]
fn clean_workspace_exits_zero_in_both_modes() {
    let root = temp_workspace("clean", &fixture("clean", "no_panic.rs"));
    let human = run_binary(&root, false);
    let json = run_binary(&root, true);
    let _ = fs::remove_dir_all(&root);

    assert_eq!(human.status.code(), Some(0), "{human:?}");
    assert_eq!(json.status.code(), Some(0), "{json:?}");
    assert!(human_keys(&human.stdout).is_empty());
    assert!(json_keys(&json.stdout).is_empty());
    // The human summary line is still printed on a clean run.
    let text = String::from_utf8(human.stdout).expect("UTF-8");
    assert!(text.contains("0 active finding(s)"), "{text}");
}

#[test]
fn missing_root_is_a_usage_error() {
    let root = std::env::temp_dir().join(format!(
        "cirstag-lint-cli-{}-does-not-exist",
        std::process::id()
    ));
    let out = run_binary(&root, false);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
