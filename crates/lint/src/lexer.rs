//! A lightweight Rust tokenizer — just enough lexical structure for the
//! repo-specific lint rules, with no dependency on `syn` or `proc-macro2`.
//!
//! The lexer understands line/block comments (nested), string literals
//! (including raw strings with hash fences), char literals vs. lifetimes,
//! numeric literals (distinguishing int from float), identifiers,
//! attributes (`#[...]` captured as a single token with their raw text) and
//! multi-character punctuation. Everything it does not need is folded into
//! single-character [`TokKind::Punct`] tokens.
//!
//! Comments are returned out-of-band so the waiver layer can read
//! `// cirstag-lint: allow(...)` annotations without the rules ever seeing
//! them.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `pub`, `r#type`).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    IntLit,
    /// Floating-point literal (`1.0`, `2e-3`, `4f64`).
    FloatLit,
    /// String literal, including raw strings (text excludes quotes).
    StrLit,
    /// Character literal (`'a'`, `'\n'`).
    CharLit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// An attribute `#[...]` or `#![...]`, captured whole with its raw text.
    Attr,
    /// Punctuation, possibly multi-character (`::`, `->`, `==`, `!=`, `..`).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Raw token text (for [`TokKind::Attr`], the full `#[...]` source).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// `true` when this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` when this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One comment with its source line (1-based). The text excludes the
/// delimiters (`//`, `///`, `//!`, `/* */`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without delimiters, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// `true` for doc comments (`///`, `//!`, `/** */`), which hold prose
    /// and example code rather than waiver annotations.
    pub doc: bool,
}

/// Output of [`lex`]: the token stream plus out-of-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation recognized as single tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn starts_with(&self, pat: &str) -> bool {
        self.src
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(pat.as_bytes()))
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn slice_from(&self, start: usize) -> &'a [u8] {
        self.src.get(start..self.pos).unwrap_or(&[])
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn bytes_to_string(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Lexes `source` into tokens and comments. Total: malformed input never
/// panics — unterminated constructs simply run to end of file.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        let start = cur.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let doc = matches!(cur.peek_at(2), Some(b'/') | Some(b'!'));
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let body = bytes_to_string(cur.slice_from(start));
                let body = body.trim_start_matches('/').trim_start_matches('!');
                out.comments.push(Comment {
                    text: body.trim().to_string(),
                    line,
                    doc,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let doc = matches!(cur.peek_at(2), Some(b'*') | Some(b'!'));
                cur.advance(2);
                let mut depth = 1usize;
                while depth > 0 {
                    if cur.starts_with("/*") {
                        depth += 1;
                        cur.advance(2);
                    } else if cur.starts_with("*/") {
                        depth -= 1;
                        cur.advance(2);
                    } else if cur.bump().is_none() {
                        break;
                    }
                }
                let body = bytes_to_string(cur.slice_from(start));
                let body = body
                    .trim_start_matches('/')
                    .trim_start_matches('*')
                    .trim_start_matches('!')
                    .trim_end_matches('/')
                    .trim_end_matches('*');
                out.comments.push(Comment {
                    text: body.trim().to_string(),
                    line,
                    doc,
                });
            }
            b'#' if matches!(cur.peek_at(1), Some(b'[')) || cur.starts_with("#![") => {
                // Attribute: capture the whole balanced `#[...]` / `#![...]`.
                cur.bump(); // '#'
                if cur.peek() == Some(b'!') {
                    cur.bump();
                }
                cur.bump(); // '['
                let mut depth = 1usize;
                while depth > 0 {
                    match cur.peek() {
                        Some(b'[') => {
                            depth += 1;
                            cur.bump();
                        }
                        Some(b']') => {
                            depth -= 1;
                            cur.bump();
                        }
                        Some(b'"') => {
                            lex_string_body(&mut cur);
                        }
                        Some(_) => {
                            cur.bump();
                        }
                        None => break,
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Attr,
                    text: bytes_to_string(cur.slice_from(start)),
                    line,
                });
            }
            b'"' => {
                lex_string_body(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::StrLit,
                    text: bytes_to_string(cur.slice_from(start)),
                    line,
                });
            }
            b'r' | b'b' if is_raw_string_start(&cur) => {
                lex_raw_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::StrLit,
                    text: bytes_to_string(cur.slice_from(start)),
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_lifetime_start(&cur) {
                    cur.bump(); // '\''
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: bytes_to_string(cur.slice_from(start)),
                        line,
                    });
                } else {
                    cur.bump(); // opening quote
                    if cur.peek() == Some(b'\\') {
                        cur.bump();
                        cur.bump();
                        // Multi-char escapes (\x41, \u{...}) run to the quote.
                        while cur.peek().is_some() && cur.peek() != Some(b'\'') {
                            cur.bump();
                        }
                    } else {
                        cur.bump();
                    }
                    if cur.peek() == Some(b'\'') {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::CharLit,
                        text: bytes_to_string(cur.slice_from(start)),
                        line,
                    });
                }
            }
            b if b.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text: bytes_to_string(cur.slice_from(start)),
                    line,
                });
            }
            b if is_ident_start(b) => {
                // `r#keyword` raw identifiers lex as plain identifiers.
                if b == b'r'
                    && cur.peek_at(1) == Some(b'#')
                    && cur.peek_at(2).is_some_and(is_ident_start)
                {
                    cur.advance(2);
                }
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: bytes_to_string(cur.slice_from(start)).replace("r#", ""),
                    line,
                });
            }
            _ => {
                let matched = MULTI_PUNCT.iter().find(|p| cur.starts_with(p));
                match matched {
                    Some(p) => cur.advance(p.len()),
                    None => {
                        cur.bump();
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: bytes_to_string(cur.slice_from(start)),
                    line,
                });
            }
        }
    }
    out
}

/// Consumes a `"..."` string body including both quotes and escapes.
fn lex_string_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// `true` when the cursor sits on `r"`, `r#"`, `br"`, `b"`, etc.
fn is_raw_string_start(cur: &Cursor<'_>) -> bool {
    let mut off = 0usize;
    if cur.peek_at(off) == Some(b'b') {
        off += 1;
    }
    if cur.peek_at(off) == Some(b'r') {
        off += 1;
        while cur.peek_at(off) == Some(b'#') {
            off += 1;
        }
        return cur.peek_at(off) == Some(b'"');
    }
    // Plain byte string `b"..."`.
    off == 1 && cur.peek_at(off) == Some(b'"')
}

/// Consumes a raw (or byte) string, honoring the `#` fence count.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    let raw = cur.peek() == Some(b'r');
    if raw {
        cur.bump();
    }
    let mut fences = 0usize;
    while cur.peek() == Some(b'#') {
        fences += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    if !raw {
        // Plain byte string: honors escapes like a normal string.
        while let Some(c) = cur.peek() {
            match c {
                b'\\' => {
                    cur.bump();
                    cur.bump();
                }
                b'"' => {
                    cur.bump();
                    return;
                }
                _ => {
                    cur.bump();
                }
            }
        }
        return;
    }
    loop {
        match cur.peek() {
            Some(b'"') => {
                cur.bump();
                let mut close = 0usize;
                while close < fences && cur.peek() == Some(b'#') {
                    close += 1;
                    cur.bump();
                }
                if close == fences {
                    return;
                }
            }
            Some(_) => {
                cur.bump();
            }
            None => return,
        }
    }
}

/// `true` when `'` begins a lifetime rather than a char literal.
fn is_lifetime_start(cur: &Cursor<'_>) -> bool {
    // A lifetime is `'ident` NOT followed by a closing quote.
    let Some(next) = cur.peek_at(1) else {
        return false;
    };
    if !is_ident_start(next) {
        return false;
    }
    // `'a'` is a char literal; `'a` (no trailing quote after the ident run)
    // is a lifetime.
    let mut off = 2usize;
    while cur.peek_at(off).is_some_and(is_ident_continue) {
        off += 1;
    }
    cur.peek_at(off) != Some(b'\'')
}

/// Consumes a numeric literal, classifying int vs. float.
fn lex_number(cur: &mut Cursor<'_>) -> TokKind {
    let mut float = false;
    // Hex/oct/bin prefixes are always integers.
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        )
    {
        cur.advance(2);
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return TokKind::IntLit;
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // A `.` starts the fractional part only when followed by a digit or
    // nothing ident-like (so `0..n` and `1.max(2)` stay integers).
    if cur.peek() == Some(b'.')
        && cur.peek_at(1) != Some(b'.')
        && !cur.peek_at(1).is_some_and(is_ident_start)
    {
        float = true;
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E'))
        && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek_at(1), Some(b'+') | Some(b'-'))
                && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
            cur.bump();
        }
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Type suffix (`f64` forces float, `u32`/`i64`/`usize` keep int).
    if cur.starts_with("f32") || cur.starts_with("f64") {
        float = true;
    }
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    if float {
        TokKind::FloatLit
    } else {
        TokKind::IntLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("fn foo() -> u32 { x.unwrap() }");
        assert!(toks.contains(&(TokKind::Ident, "unwrap".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "->".to_string())));
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = kinds("let a = 1.0; let b = 42; let c = 2e-3; let d = 7f64; let e = 0..n;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::FloatLit)
            .collect();
        assert_eq!(floats.len(), 3, "{floats:?}");
        assert!(toks.contains(&(TokKind::IntLit, "42".to_string())));
        assert!(toks.contains(&(TokKind::IntLit, "0".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "..".to_string())));
    }

    #[test]
    fn method_call_on_int_stays_int() {
        let toks = kinds("let x = 1.max(2);");
        assert!(toks.contains(&(TokKind::IntLit, "1".to_string())));
        assert!(toks.contains(&(TokKind::Ident, "max".to_string())));
    }

    #[test]
    fn comments_are_out_of_band() {
        let lexed = lex("// cirstag-lint: allow(no-panic-in-lib) -- checked above\nx.unwrap();");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.starts_with("cirstag-lint"));
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].doc);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn doc_comments_flagged() {
        let lexed = lex("/// example with x.unwrap()\nfn f() {}");
        assert!(lexed.comments[0].doc);
        // The unwrap inside the doc comment is not a token.
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r#"let s = "panic!(\"inner\") // not a comment";"#);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_fences() {
        let lexed = lex(r###"let s = r#"quote " inside"#; x.unwrap();"###);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn attributes_capture_whole() {
        let lexed = lex("#[cfg(feature = \"parallel\")]\nfn f() {}");
        let attr = &lexed.tokens[0];
        assert_eq!(attr.kind, TokKind::Attr);
        assert!(attr.text.contains("feature = \"parallel\""));
        assert_eq!(attr.line, 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count() == 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn line_numbers_tracked() {
        let lexed = lex("fn a() {}\nfn b() {}\nfn c() {}");
        let fns: Vec<usize> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("fn"))
            .map(|t| t.line)
            .collect();
        assert_eq!(fns, vec![1, 2, 3]);
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("#[cfg(unterminated");
        lex("'");
        lex("let s = r##\"fence never closed\"#");
    }

    #[test]
    fn raw_string_hides_comment_markers_and_tracks_lines() {
        let src = "let s = r#\"has // marker\nand \"quoted\" text\"#;\nlet x = 1;\n";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
        let x = lexed.tokens.iter().find(|t| t.is_ident("x")).expect("x");
        assert_eq!(x.line, 3, "multiline raw string must advance the line");
    }

    #[test]
    fn double_fenced_raw_string_ignores_single_fence_close() {
        let src = r####"let s = r##"inner "# still open"##; x.unwrap();"####;
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::StrLit && t.text.contains("still open")));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings_hide_contents() {
        let src = "let a = b\"// not a comment\"; let b = br#\"also // not\"#; y.unwrap();";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn nested_block_comment_spanning_lines_keeps_line_numbers() {
        let src = "/* outer\n /* inner\n */\n still */\nfn f() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1, "comment spans from its opener");
        let f = lexed.tokens.iter().find(|t| t.is_ident("fn")).expect("fn");
        assert_eq!(f.line, 5, "nested comment must advance four lines");
    }

    #[test]
    fn char_literal_slash_is_not_a_comment() {
        let src = "let sep = '/'; let both = ['/', '/']; // real comment\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1, "{:?}", lexed.comments);
        assert!(lexed.comments[0].text.contains("real comment"));
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn char_literal_quote_and_escapes() {
        let src = "let q = '\"'; let bs = '\\\\'; let sq = '\\''; let u = '\\u{7F}'; z.unwrap();";
        let lexed = lex(src);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 4, "{chars:?}");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn multiline_plain_string_tracks_following_lines() {
        let src = "let s = \"line1\nline2\nline3\";\nw.unwrap();\n";
        let lexed = lex(src);
        let u = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert_eq!(u.line, 4, "multiline string must advance the line");
    }

    #[test]
    fn raw_identifiers_keep_spans() {
        let lexed = lex("fn r#match(r#type: u32) {}\nlet r#fn = 1;");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.is_ident("match") && t.line == 1));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn") && t.line == 2));
    }
}
