//! Inline waiver annotations.
//!
//! A finding is waived with a comment of the form
//!
//! ```text
//! // cirstag-lint: allow(no-panic-in-lib) -- endpoints validated by Graph construction
//! ```
//!
//! Multiple rules may be listed (`allow(rule-a, rule-b)`). The `-- reason`
//! part is **mandatory**: a waiver without a reason never suppresses
//! anything and is itself reported under the `waiver-syntax` rule.
//!
//! Placement: a trailing comment waives findings on its own line; a
//! standalone comment line waives findings on the next line that carries
//! code. Waivers are per-rule and per-line — there is deliberately no
//! file- or module-scoped form, so a seeded violation anywhere in a library
//! crate still fails the run.

use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Marker prefix for waiver comments.
pub const WAIVER_PREFIX: &str = "cirstag-lint:";

/// One parsed waiver annotation.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules the waiver suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Line the annotation appears on (1-based).
    pub line: usize,
}

/// A syntactically invalid waiver (missing reason, unparsable rule list).
#[derive(Debug, Clone)]
pub struct WaiverError {
    /// What is wrong with the annotation.
    pub message: String,
    /// Line the annotation appears on (1-based).
    pub line: usize,
}

/// All waivers of one file, keyed by the line they *apply to*.
#[derive(Debug, Default)]
pub struct WaiverSet {
    by_line: BTreeMap<usize, Vec<Waiver>>,
    /// Malformed annotations, reported as findings by the driver.
    pub errors: Vec<WaiverError>,
}

impl WaiverSet {
    /// Extracts waivers from a file's comments.
    pub fn collect(file: &SourceFile) -> WaiverSet {
        let mut set = WaiverSet::default();
        // Lines that carry at least one token, for standalone-comment
        // attachment.
        let token_lines: Vec<usize> = {
            let mut lines: Vec<usize> = file.tokens.iter().map(|t| t.line).collect();
            lines.sort_unstable();
            lines.dedup();
            lines
        };
        for comment in &file.comments {
            if comment.doc {
                continue;
            }
            let Some(rest) = comment.text.strip_prefix(WAIVER_PREFIX) else {
                continue;
            };
            match parse_annotation(rest.trim()) {
                Ok((rules, reason)) => {
                    let applies_to = if token_lines.binary_search(&comment.line).is_ok() {
                        // Trailing comment: waives its own line.
                        comment.line
                    } else {
                        // Standalone comment: waives the next code line.
                        token_lines
                            .iter()
                            .copied()
                            .find(|&l| l > comment.line)
                            .unwrap_or(comment.line)
                    };
                    set.by_line.entry(applies_to).or_default().push(Waiver {
                        rules,
                        reason,
                        line: comment.line,
                    });
                }
                Err(message) => set.errors.push(WaiverError {
                    message,
                    line: comment.line,
                }),
            }
        }
        set
    }

    /// Returns the waiver covering `rule` on `line`, if any.
    pub fn lookup(&self, rule: &str, line: usize) -> Option<&Waiver> {
        self.by_line
            .get(&line)?
            .iter()
            .find(|w| w.rules.iter().any(|r| r == rule))
    }

    /// Iterates every valid waiver with the line it applies to, so the
    /// driver can report waivers that suppress nothing (stale waivers).
    pub fn entries(&self) -> impl Iterator<Item = (usize, &Waiver)> {
        self.by_line
            .iter()
            .flat_map(|(&line, ws)| ws.iter().map(move |w| (line, w)))
    }

    /// Total number of parsed (valid) waivers.
    pub fn len(&self) -> usize {
        self.by_line.values().map(Vec::len).sum()
    }

    /// `true` when no valid waiver was found.
    pub fn is_empty(&self) -> bool {
        self.by_line.is_empty()
    }
}

/// Parses `allow(rule-a, rule-b) -- reason` into rules and reason.
fn parse_annotation(text: &str) -> Result<(Vec<String>, String), String> {
    let Some(rest) = text.strip_prefix("allow") else {
        return Err(format!(
            "waiver must start with `allow(<rule>)`, got `{text}`"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("waiver rule list must be parenthesized: `allow(<rule>)`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unterminated waiver rule list (missing `)`)".to_string());
    };
    let (list, tail) = rest.split_at(close);
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("waiver names no rule: `allow()` is empty".to_string());
    }
    for rule in &rules {
        if !crate::rules::RULE_NAMES.contains(&rule.as_str()) {
            return Err(format!(
                "waiver names unknown rule `{rule}` (known: {})",
                crate::rules::RULE_NAMES.join(", ")
            ));
        }
    }
    let tail = tail.trim_start_matches(')').trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err(
            "waiver is missing its mandatory reason: `allow(<rule>) -- <reason>`".to_string(),
        );
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("waiver reason after `--` is empty".to_string());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source("crates/graph/src/x.rs", src)
    }

    #[test]
    fn trailing_waiver_applies_to_its_line() {
        let f = file(
            "fn f() {\n    x.unwrap(); // cirstag-lint: allow(no-panic-in-lib) -- guarded above\n}\n",
        );
        let w = WaiverSet::collect(&f);
        assert!(w.lookup("no-panic-in-lib", 2).is_some());
        assert!(w.lookup("no-panic-in-lib", 3).is_none());
        assert!(w.lookup("float-discipline", 2).is_none());
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let f = file(
            "fn f() {\n    // cirstag-lint: allow(no-panic-in-lib) -- guarded above\n    x.unwrap();\n}\n",
        );
        let w = WaiverSet::collect(&f);
        assert!(w.lookup("no-panic-in-lib", 3).is_some());
        assert!(w.lookup("no-panic-in-lib", 2).is_none());
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        let f = file("x.unwrap(); // cirstag-lint: allow(no-panic-in-lib)\n");
        let w = WaiverSet::collect(&f);
        assert!(w.is_empty());
        assert_eq!(w.errors.len(), 1);
        assert!(w.errors[0].message.contains("mandatory reason"));
    }

    #[test]
    fn waiver_with_empty_reason_is_an_error() {
        let f = file("x.unwrap(); // cirstag-lint: allow(no-panic-in-lib) -- \n");
        let w = WaiverSet::collect(&f);
        assert!(w.is_empty());
        assert_eq!(w.errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let f = file("x.unwrap(); // cirstag-lint: allow(no-such-rule) -- because\n");
        let w = WaiverSet::collect(&f);
        assert!(w.is_empty());
        assert_eq!(w.errors.len(), 1);
        assert!(w.errors[0].message.contains("unknown rule"));
    }

    #[test]
    fn multi_rule_waiver() {
        let f = file(
            "x.unwrap(); // cirstag-lint: allow(no-panic-in-lib, determinism) -- both intentional\n",
        );
        let w = WaiverSet::collect(&f);
        assert!(w.lookup("no-panic-in-lib", 1).is_some());
        assert!(w.lookup("determinism", 1).is_some());
    }

    #[test]
    fn block_comment_waiver_with_multiline_reason() {
        let f = file(
            "x.unwrap(); /* cirstag-lint: allow(no-panic-in-lib) -- reason line one\n   and line two */\n",
        );
        let w = WaiverSet::collect(&f);
        assert!(w.errors.is_empty(), "{:?}", w.errors);
        let waiver = w.lookup("no-panic-in-lib", 1).expect("waiver parsed");
        assert!(waiver.reason.contains("line one"));
        assert!(waiver.reason.contains("line two"));
    }

    #[test]
    fn trailing_whitespace_around_annotation_is_tolerated() {
        let f = file(
            "x.unwrap(); // cirstag-lint: allow( no-panic-in-lib , determinism ) -- reason text   \n",
        );
        let w = WaiverSet::collect(&f);
        assert!(w.errors.is_empty(), "{:?}", w.errors);
        assert!(w.lookup("no-panic-in-lib", 1).is_some());
        assert!(w.lookup("determinism", 1).is_some());
        let reason = &w.lookup("determinism", 1).expect("waiver").reason;
        assert_eq!(reason, "reason text", "reason must be trimmed");
    }

    #[test]
    fn standalone_waiver_on_last_line_applies_to_its_own_line() {
        // No code follows, so the waiver can suppress nothing; attaching it
        // to its own line lets the stale-waiver pass report it there.
        let f = file("fn f() {}\n// cirstag-lint: allow(no-panic-in-lib) -- dangling\n");
        let w = WaiverSet::collect(&f);
        assert!(w.errors.is_empty(), "{:?}", w.errors);
        assert!(w.lookup("no-panic-in-lib", 2).is_some());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn unknown_rule_error_names_the_rule_and_the_known_set() {
        let f = file("x.unwrap(); // cirstag-lint: allow(no-panics) -- typo'd rule name\n");
        let w = WaiverSet::collect(&f);
        assert!(w.is_empty());
        assert_eq!(w.errors.len(), 1);
        let msg = &w.errors[0].message;
        assert!(msg.contains("unknown rule `no-panics`"), "{msg}");
        assert!(msg.contains("no-panic-in-lib"), "{msg}");
    }
}
