//! A lexical brace/scope tree built over the token stream.
//!
//! The scope tree is the syntactic front-end the dataflow-aware rules
//! (`unsafe-safety`, `lock-order`, `nondeterminism`) sit on: it resolves
//! every balanced `{ … }` region into a typed node — function bodies with
//! their names and `unsafe` qualifier, `impl` blocks with the implementing
//! type, traits, structs, modules, `match` expressions, closures and plain
//! blocks — without ever leaving the lexical world (no `syn`, fully
//! offline, total on malformed input).
//!
//! Classification is *pending-keyword* based: while streaming tokens the
//! builder remembers the most recent item keyword (`fn foo`, `impl Store`,
//! `match`, a closure's closing `|`, a bare `unsafe`) and attaches it to the
//! next `{`; a `;` discards the pending classification (`struct S;`,
//! trait-method signatures). Stray closing braces are ignored rather than
//! panicking, and an unterminated scope simply runs to the end of the
//! token stream.
//!
//! Known approximations (documented so rule authors can trust the edges):
//! a closure whose `{` is separated from its parameter pipes by an explicit
//! return type (`|x| -> f64 { … }`) classifies as [`ScopeKind::Block`], and
//! struct-literal braces (`Foo { x: 1 }`) also classify as `Block`. Neither
//! affects the rules, which only rely on `Fn`/`Impl`/`Struct`/`Unsafe`
//! nodes and on span containment.

use crate::lexer::{TokKind, Token};
use std::fmt::Write as _;

/// What a `{ … }` region is, resolved lexically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file (token span `[0, len)`), parent of every top scope.
    Root,
    /// `mod name { … }` (inline module).
    Mod(String),
    /// `fn name(...) { … }`, with the `unsafe` qualifier recorded.
    Fn {
        /// Function name.
        name: String,
        /// `true` for `unsafe fn`.
        is_unsafe: bool,
    },
    /// `impl [Trait for] Type { … }` with the implementing type's name.
    Impl(String),
    /// `trait Name { … }`.
    Trait(String),
    /// `struct Name { … }` (braced struct declarations only).
    Struct(String),
    /// `enum Name { … }`.
    Enum(String),
    /// `union Name { … }`.
    Union(String),
    /// `match scrutinee { … }`.
    Match,
    /// Closure body `|args| { … }` (including `move` closures).
    Closure,
    /// Bare `unsafe { … }` block.
    Unsafe,
    /// Any other brace region: `if`/`else`/loop bodies, plain blocks,
    /// struct literals, match arms.
    Block,
}

impl ScopeKind {
    /// Short tag used by [`ScopeTree::dump`] golden files.
    fn tag(&self) -> String {
        match self {
            ScopeKind::Root => "root".to_string(),
            ScopeKind::Mod(n) => format!("mod {n}"),
            ScopeKind::Fn { name, is_unsafe } => {
                if *is_unsafe {
                    format!("unsafe-fn {name}")
                } else {
                    format!("fn {name}")
                }
            }
            ScopeKind::Impl(n) => format!("impl {n}"),
            ScopeKind::Trait(n) => format!("trait {n}"),
            ScopeKind::Struct(n) => format!("struct {n}"),
            ScopeKind::Enum(n) => format!("enum {n}"),
            ScopeKind::Union(n) => format!("union {n}"),
            ScopeKind::Match => "match".to_string(),
            ScopeKind::Closure => "closure".to_string(),
            ScopeKind::Unsafe => "unsafe".to_string(),
            ScopeKind::Block => "block".to_string(),
        }
    }
}

/// One node of the scope tree: a typed token span `[open, close]`.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What this brace region is.
    pub kind: ScopeKind,
    /// Parent scope index (`None` only for the root).
    pub parent: Option<usize>,
    /// Token index of the opening `{` (0 for the root).
    pub open: usize,
    /// Token index of the matching `}`, or `tokens.len()` when the scope is
    /// unterminated (runs to end of file).
    pub close: usize,
    /// 1-based line of the opening `{` (1 for the root).
    pub start_line: usize,
    /// 1-based line of the closing `}` (last token's line when
    /// unterminated).
    pub end_line: usize,
}

impl Scope {
    /// `true` when token index `i` lies strictly inside the braces.
    pub fn contains(&self, i: usize) -> bool {
        i > self.open && i < self.close
    }
}

/// The resolved scope tree of one file. `scopes[0]` is always the root.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// Arena of scopes in opening order (pre-order).
    pub scopes: Vec<Scope>,
}

impl ScopeTree {
    /// Builds the tree from a token stream. Total: malformed input (stray
    /// or missing braces) degrades to wider `Block` spans, never panics.
    pub fn build(tokens: &[Token]) -> ScopeTree {
        Builder::new(tokens).run()
    }

    /// Index of the innermost scope containing token `i` (the root when no
    /// braced scope does).
    pub fn innermost(&self, i: usize) -> usize {
        // Pre-order means later matches are deeper; take the last hit.
        let mut best = 0;
        for (idx, s) in self.scopes.iter().enumerate().skip(1) {
            if s.contains(i) {
                best = idx;
            }
        }
        best
    }

    /// The innermost enclosing `Fn` scope of token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        self.ancestor_matching(i, |k| matches!(k, ScopeKind::Fn { .. }))
    }

    /// The name of the innermost enclosing `impl` (or, failing that,
    /// `struct`/`trait`) of token `i`, if any — used to qualify `self.…`
    /// lock receivers.
    pub fn enclosing_type_name(&self, i: usize) -> Option<&str> {
        let idx = self.ancestor_matching(i, |k| {
            matches!(
                k,
                ScopeKind::Impl(_) | ScopeKind::Struct(_) | ScopeKind::Trait(_)
            )
        })?;
        match &self.scopes[idx].kind {
            ScopeKind::Impl(n) | ScopeKind::Struct(n) | ScopeKind::Trait(n) => Some(n.as_str()),
            _ => None,
        }
    }

    /// The innermost scope at or above token `i` whose kind matches `pred`.
    pub fn ancestor_matching<F: Fn(&ScopeKind) -> bool>(&self, i: usize, pred: F) -> Option<usize> {
        let mut cur = self.innermost(i);
        loop {
            if pred(&self.scopes[cur].kind) {
                return Some(cur);
            }
            cur = self.scopes[cur].parent?;
        }
    }

    /// Indices of every `Fn` scope, in source order.
    pub fn functions(&self) -> impl Iterator<Item = usize> + '_ {
        self.scopes
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, ScopeKind::Fn { .. }))
            .map(|(i, _)| i)
    }

    /// Renders the tree as indented text for golden-file tests:
    /// one `<tag> [open..close] L<start>-<end>` line per scope.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(0, 0, &mut out);
        out
    }

    fn dump_node(&self, idx: usize, depth: usize, out: &mut String) {
        let s = &self.scopes[idx];
        let _ = writeln!(
            out,
            "{:indent$}{} [{}..{}] L{}-{}",
            "",
            s.kind.tag(),
            s.open,
            s.close,
            s.start_line,
            s.end_line,
            indent = depth * 2
        );
        for (child, c) in self.scopes.iter().enumerate() {
            if c.parent == Some(idx) {
                self.dump_node(child, depth + 1, out);
            }
        }
    }
}

/// Keywords that never name an impl'd type in an `impl` header.
fn is_header_keyword(text: &str) -> bool {
    matches!(
        text,
        "for" | "where" | "dyn" | "unsafe" | "const" | "mut" | "ref" | "as" | "impl"
    )
}

struct Builder<'a> {
    tokens: &'a [Token],
    scopes: Vec<Scope>,
    stack: Vec<usize>,
    /// Classification awaiting its `{`.
    pending: Option<ScopeKind>,
    /// A bare `unsafe` qualifier seen but not yet attached.
    saw_unsafe: bool,
    /// Inside closure parameter pipes (`|here|`).
    in_closure_params: bool,
}

impl<'a> Builder<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        let root = Scope {
            kind: ScopeKind::Root,
            parent: None,
            open: 0,
            close: tokens.len(),
            start_line: 1,
            end_line: tokens.last().map_or(1, |t| t.line),
        };
        Builder {
            tokens,
            scopes: vec![root],
            stack: vec![0],
            pending: None,
            saw_unsafe: false,
            in_closure_params: false,
        }
    }

    fn run(mut self) -> ScopeTree {
        for i in 0..self.tokens.len() {
            let tok = &self.tokens[i];
            match tok.kind {
                TokKind::Ident => self.on_ident(i),
                TokKind::Punct => self.on_punct(i),
                _ => {}
            }
        }
        // Unterminated scopes run to end of stream (root already does).
        ScopeTree {
            scopes: self.scopes,
        }
    }

    fn next_ident(&self, i: usize) -> Option<String> {
        self.tokens
            .get(i + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
    }

    fn on_ident(&mut self, i: usize) {
        let text = self.tokens[i].text.as_str();
        // An item keyword only classifies at item position: once a
        // classification is pending, later keywords in the same header
        // (`for` in `impl Trait for Type`, `impl` in `fn f() -> impl
        // Iterator`, `fn` in a `fn(..)`-pointer parameter) must not
        // reclassify the upcoming brace. `unsafe` is exempt — it both
        // qualifies (`unsafe fn`) and opens blocks of its own.
        if self.pending.is_some() && text != "unsafe" {
            return;
        }
        match text {
            "fn" => {
                self.pending = Some(ScopeKind::Fn {
                    name: self.next_ident(i).unwrap_or_else(|| "<anon>".to_string()),
                    is_unsafe: std::mem::take(&mut self.saw_unsafe),
                });
            }
            "impl" => {
                self.saw_unsafe = false;
                self.pending = Some(ScopeKind::Impl(self.impl_type_name(i)));
            }
            "trait" => {
                self.saw_unsafe = false;
                self.pending = Some(ScopeKind::Trait(
                    self.next_ident(i).unwrap_or_else(|| "<anon>".to_string()),
                ));
            }
            "struct" => {
                self.pending = Some(ScopeKind::Struct(
                    self.next_ident(i).unwrap_or_else(|| "<anon>".to_string()),
                ));
            }
            "enum" => {
                self.pending = Some(ScopeKind::Enum(
                    self.next_ident(i).unwrap_or_else(|| "<anon>".to_string()),
                ));
            }
            // `union` is contextual: only a declaration when followed by a
            // name and then `{` or generics.
            "union"
                if self.next_ident(i).is_some()
                    && self
                        .tokens
                        .get(i + 2)
                        .is_some_and(|t| t.is_punct("{") || t.is_punct("<")) =>
            {
                self.pending = Some(ScopeKind::Union(
                    self.next_ident(i).unwrap_or_else(|| "<anon>".to_string()),
                ));
            }
            "mod" => {
                self.pending = Some(ScopeKind::Mod(
                    self.next_ident(i).unwrap_or_else(|| "<anon>".to_string()),
                ));
            }
            "match" => self.pending = Some(ScopeKind::Match),
            "unsafe" => {
                self.saw_unsafe = true;
                if self.pending.is_none() && self.tokens.get(i + 1).is_some_and(|t| t.is_punct("{"))
                {
                    self.pending = Some(ScopeKind::Unsafe);
                }
            }
            _ => {}
        }
    }

    fn on_punct(&mut self, i: usize) {
        let text = self.tokens[i].text.as_str();
        match text {
            "{" => {
                let kind = self.pending.take().unwrap_or(ScopeKind::Block);
                self.saw_unsafe = false;
                self.in_closure_params = false;
                let parent = self.stack.last().copied().unwrap_or(0);
                let line = self.tokens[i].line;
                self.scopes.push(Scope {
                    kind,
                    parent: Some(parent),
                    open: i,
                    close: self.tokens.len(),
                    start_line: line,
                    end_line: self.tokens.last().map_or(line, |t| t.line),
                });
                self.stack.push(self.scopes.len() - 1);
            }
            // Never pop the root: stray closers are ignored.
            "}" if self.stack.len() > 1 => {
                let idx = self.stack.pop().unwrap_or(0);
                self.scopes[idx].close = i;
                self.scopes[idx].end_line = self.tokens[i].line;
            }
            ";" => {
                self.pending = None;
                self.saw_unsafe = false;
                self.in_closure_params = false;
            }
            "|" => {
                if self.in_closure_params {
                    self.in_closure_params = false;
                    self.pending = Some(ScopeKind::Closure);
                } else if self.closure_opener(i) {
                    self.in_closure_params = true;
                }
            }
            // Zero-argument closure `|| { … }` lexes as one `||` token.
            "||" if self.closure_opener(i) => {
                self.pending = Some(ScopeKind::Closure);
            }
            _ => {}
        }
    }

    /// `true` when a `|` at token `i` starts closure parameters rather than
    /// acting as binary/bitwise or: it follows an expression *opener*.
    fn closure_opener(&self, i: usize) -> bool {
        let Some(prev) = i.checked_sub(1).and_then(|p| self.tokens.get(p)) else {
            return true; // file starts with a closure
        };
        match prev.kind {
            TokKind::Punct => matches!(
                prev.text.as_str(),
                "(" | "," | "=" | "{" | ";" | "=>" | ":" | "&" | "&&" | "[" | "|" | "||"
            ),
            TokKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else" | "in"),
            _ => false,
        }
    }

    /// Resolves the implementing type of an `impl` header starting at token
    /// `i`: the first depth-0 identifier after `for` when present
    /// (`impl Trait for Type`), else the first depth-0 identifier
    /// (`impl<T> Type<T>`). Angle-bracket depth is tracked so generic
    /// parameters never masquerade as the type.
    fn impl_type_name(&self, i: usize) -> String {
        let mut depth = 0i32;
        let mut first: Option<&str> = None;
        let mut after_for: Option<&str> = None;
        let mut saw_for = false;
        let mut j = i + 1;
        while let Some(t) = self.tokens.get(j) {
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    "{" | ";" => break,
                    _ => {}
                },
                TokKind::Ident if depth == 0 => {
                    if t.text == "for" {
                        saw_for = true;
                    } else if t.text == "where" {
                        break;
                    } else if !is_header_keyword(&t.text) {
                        if saw_for {
                            if after_for.is_none() {
                                after_for = Some(&t.text);
                            }
                        } else {
                            // Keep the *last* pre-`for` ident so trait paths
                            // (`fmt::Display`) resolve to their final
                            // segment before `for` overrides them anyway.
                            first = Some(&t.text);
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        after_for.or(first).unwrap_or("<anon>").to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        ScopeTree::build(&lex(src).tokens)
    }

    fn kinds(src: &str) -> Vec<String> {
        tree(src).scopes.iter().map(|s| s.kind.tag()).collect()
    }

    #[test]
    fn fn_and_nested_blocks() {
        let t = kinds("fn f() { if x { g(); } }");
        assert_eq!(t, vec!["root", "fn f", "block"]);
    }

    #[test]
    fn unsafe_fn_and_unsafe_block() {
        let t = kinds("unsafe fn f() { unsafe { ptr.read() } }");
        assert_eq!(t, vec!["root", "unsafe-fn f", "unsafe"]);
    }

    #[test]
    fn impl_with_trait_for() {
        let t = kinds("impl fmt::Display for Store { fn fmt(&self) {} }");
        assert_eq!(t, vec!["root", "impl Store", "fn fmt"]);
    }

    #[test]
    fn impl_with_generics() {
        let t = kinds("impl<T: Clone> Queue<T> { fn pop(&mut self) -> T { loop {} } }");
        assert_eq!(t, vec!["root", "impl Queue", "fn pop", "block"]);
    }

    #[test]
    fn closures_classified() {
        let t = kinds("fn f() { let g = |x| { x + 1 }; v.map(|| { 0 }); }");
        assert_eq!(t, vec!["root", "fn f", "closure", "closure"]);
    }

    #[test]
    fn match_and_arms() {
        let t = kinds("fn f(x: u8) { match x { 0 => { a() } _ => b(), } }");
        assert_eq!(t, vec!["root", "fn f", "match", "block"]);
    }

    #[test]
    fn struct_enum_mod_trait() {
        let t = kinds("mod m { struct S { x: u8 } enum E { A } trait T { fn f(&self); } }");
        assert_eq!(t, vec!["root", "mod m", "struct S", "enum E", "trait T"]);
    }

    #[test]
    fn unit_struct_does_not_leak_onto_next_brace() {
        let t = kinds("struct S;\nfn f() {}");
        assert_eq!(t, vec!["root", "fn f"]);
    }

    #[test]
    fn enclosing_lookups() {
        let src = "impl Store { fn get(&self) { let x = self.state; } }";
        let t = tree(src);
        let lexed = lex(src);
        let state_idx = lexed
            .tokens
            .iter()
            .position(|tk| tk.is_ident("state"))
            .expect("tokenized");
        let f = t.enclosing_fn(state_idx).expect("inside fn");
        assert!(matches!(&t.scopes[f].kind, ScopeKind::Fn { name, .. } if name == "get"));
        assert_eq!(t.enclosing_type_name(state_idx), Some("Store"));
    }

    #[test]
    fn stray_and_missing_braces_are_total() {
        tree("} } fn f() { {");
        tree("{ { {");
        let t = tree("fn f() { unterminated");
        assert_eq!(t.scopes.len(), 2);
        assert_eq!(t.scopes[1].close, lex("fn f() { unterminated").tokens.len());
    }

    #[test]
    fn dump_is_stable() {
        let d = tree("fn f() { if x { } }").dump();
        assert!(d.starts_with("root [0.."), "{d}");
        assert!(d.contains("\n  fn f ["), "{d}");
        assert!(d.contains("\n    block ["), "{d}");
    }
}
