//! Workspace walking and per-file lexical structure.
//!
//! A [`SourceFile`] couples the token stream with the *regions* the rules
//! care about: `#[cfg(test)]` modules (exempt from every rule) and
//! `#[cfg(feature = "...")]`-gated spans (consulted by the feature-hygiene
//! rule). Regions are resolved purely lexically: an attribute governs the
//! next item, which extends to the first top-level `;` or through the first
//! balanced `{ ... }` block.

use crate::lexer::{self, Comment, TokKind, Token};
use crate::scope::ScopeTree;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a file participates in the lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Lib,
    /// Binary / CLI source (`src/bin/*.rs`, `src/main.rs`, the `cli` and
    /// `bench` crates): exempt from the library-only rules.
    Bin,
    /// Tests, benches, examples, fixtures: never linted.
    Exempt,
}

/// A token-index span `[start, end)` with the lines it covers.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// First token index inside the region.
    pub start: usize,
    /// One past the last token index inside the region.
    pub end: usize,
}

/// A `#[cfg(...)]`-gated region with the raw attribute text.
#[derive(Debug, Clone)]
pub struct CfgRegion {
    /// Raw text of the governing attribute, e.g.
    /// `#[cfg(feature = "parallel")]`.
    pub attr: String,
    /// Token span the attribute governs.
    pub span: Region,
}

/// One lexed, region-resolved source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Crate the file belongs to (e.g. `cirstag-graph`), or `workspace` for
    /// the root meta-crate sources.
    pub crate_name: String,
    /// Role of the file in the lint run.
    pub kind: FileKind,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Out-of-band comments (waiver annotations live here).
    pub comments: Vec<Comment>,
    /// Source lines (for finding snippets).
    pub lines: Vec<String>,
    /// Token spans of `#[cfg(test)]` items (exempt from all rules).
    pub test_regions: Vec<Region>,
    /// Token spans governed by `#[cfg(...)]` attributes that mention a
    /// feature, with the attribute text.
    pub cfg_regions: Vec<CfgRegion>,
    /// The brace/scope tree (functions, impls, unsafe blocks, …) the
    /// dataflow-aware rules walk.
    pub scope_tree: ScopeTree,
}

impl SourceFile {
    /// Loads and lexes one file.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the file cannot be read.
    pub fn load(root: &Path, path: &Path) -> io::Result<SourceFile> {
        let source = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::from_source(&rel, &source))
    }

    /// Builds a `SourceFile` from in-memory source (used by the self-tests).
    pub fn from_source(rel_path: &str, source: &str) -> SourceFile {
        let lexer::Lexed { tokens, comments } = lexer::lex(source);
        let crate_name = crate_of(rel_path);
        let kind = classify(rel_path);
        let test_regions = find_attr_regions(&tokens, attr_is_cfg_test)
            .into_iter()
            .map(|(_, span)| span)
            .collect();
        let cfg_regions = find_attr_regions(&tokens, |a| a.contains("feature"))
            .into_iter()
            .map(|(attr_idx, span)| CfgRegion {
                attr: tokens
                    .get(attr_idx)
                    .map(|t| t.text.clone())
                    .unwrap_or_default(),
                span,
            })
            .collect();
        let scope_tree = ScopeTree::build(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            kind,
            tokens,
            comments,
            lines: source.lines().map(str::to_string).collect(),
            test_regions,
            cfg_regions,
            scope_tree,
        }
    }

    /// `true` when token index `i` lies in a `#[cfg(test)]` region.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| i >= r.start && i < r.end)
    }

    /// Returns the cfg attributes governing token index `i` (innermost last).
    pub fn cfgs_at(&self, i: usize) -> Vec<&str> {
        self.cfg_regions
            .iter()
            .filter(|r| i >= r.span.start && i < r.span.end)
            .map(|r| r.attr.as_str())
            .collect()
    }

    /// The source line (1-based), trimmed, or an empty string.
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// `#[cfg(test)]` (with arbitrary spacing), including compound forms like
/// `#[cfg(any(test, ..))]` and `#[cfg(all(test, feature = ".."))]`, but not
/// `#[cfg(feature = ...)]`.
fn attr_is_cfg_test(attr: &str) -> bool {
    let squeezed: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    squeezed.contains("cfg(test)")
        || squeezed.contains("cfg(any(test")
        || squeezed.contains("cfg(all(test")
}

/// Crate name from a workspace-relative path (`crates/graph/src/... →
/// cirstag-graph`; `crates/core` keeps its package name `cirstag`).
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        match parts.next() {
            Some("core") => "cirstag".to_string(),
            Some(dir) => format!("cirstag-{dir}"),
            None => "workspace".to_string(),
        }
    } else {
        "workspace".to_string()
    }
}

/// Classifies a workspace-relative path into a [`FileKind`].
fn classify(rel_path: &str) -> FileKind {
    let p = rel_path;
    if p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.contains("/fixtures/")
        || p.starts_with("tests/")
        || p.starts_with("examples/")
    {
        return FileKind::Exempt;
    }
    if p.contains("/bin/")
        || p.ends_with("src/main.rs")
        || p.starts_with("crates/cli/")
        || p.starts_with("crates/bench/")
    {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Finds the token span governed by each attribute matching `pred`.
///
/// The governed item starts at the first token after the attribute (and any
/// further attributes / doc comments) and ends at the first `;` at nesting
/// depth zero, or at the matching `}` of the first top-level `{`.
fn find_attr_regions<F: Fn(&str) -> bool>(tokens: &[Token], pred: F) -> Vec<(usize, Region)> {
    let mut regions = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Attr || !pred(&tok.text) {
            continue;
        }
        // Skip any stacked attributes between this one and the item.
        let mut j = i + 1;
        while tokens.get(j).is_some_and(|t| t.kind == TokKind::Attr) {
            j += 1;
        }
        let start = j;
        let mut depth = 0usize;
        let mut entered_block = false;
        while let Some(t) = tokens.get(j) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => {
                        depth += 1;
                        if t.text == "{" {
                            entered_block = true;
                        }
                    }
                    "}" | ")" | "]" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 && entered_block && t.text == "}" {
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((i, Region { start, end: j }));
    }
    regions
}

/// Recursively collects the `.rs` files of the workspace that the linter
/// walks: `src/`, `crates/*/src/` (and, for completeness of the report,
/// nothing under `vendor/`, `target/`, `tests/`, `benches/`, `examples/` or
/// fixture directories).
///
/// # Errors
///
/// Propagates directory-walk I/O failures.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/graph/src/tree.rs"), FileKind::Lib);
        assert_eq!(classify("crates/cli/src/commands.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/src/case_a.rs"), FileKind::Bin);
        assert_eq!(classify("crates/solver/src/bin/tool.rs"), FileKind::Bin);
        assert_eq!(classify("crates/graph/tests/proptest.rs"), FileKind::Exempt);
        assert_eq!(
            classify("crates/lint/tests/fixtures/violations/panic.rs"),
            FileKind::Exempt
        );
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/graph/src/tree.rs"), "cirstag-graph");
        assert_eq!(crate_of("crates/core/src/pipeline.rs"), "cirstag");
        assert_eq!(crate_of("src/lib.rs"), "workspace");
    }

    #[test]
    fn test_region_covers_mod() {
        let f = SourceFile::from_source(
            "crates/graph/src/x.rs",
            "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("tokenized");
        assert!(f.in_test_region(unwrap_idx));
        let lib_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("lib_code"))
            .expect("tokenized");
        assert!(!f.in_test_region(lib_idx));
    }

    #[test]
    fn cfg_feature_region_resolved() {
        let f = SourceFile::from_source(
            "crates/linalg/src/x.rs",
            "pub fn go() {\n    #[cfg(feature = \"parallel\")]\n    {\n        rayon::fan_out();\n    }\n    #[cfg(not(feature = \"parallel\"))]\n    serial();\n}\n",
        );
        let rayon_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("rayon"))
            .expect("tokenized");
        let cfgs = f.cfgs_at(rayon_idx);
        assert_eq!(cfgs.len(), 1);
        assert!(cfgs[0].contains("feature = \"parallel\""));
        let serial_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("serial"))
            .expect("tokenized");
        let cfgs = f.cfgs_at(serial_idx);
        assert_eq!(cfgs.len(), 1);
        assert!(cfgs[0].contains("not(feature = \"parallel\")"));
    }

    #[test]
    fn attr_on_statement_ends_at_semicolon() {
        let f = SourceFile::from_source(
            "crates/linalg/src/x.rs",
            "fn f() {\n    #[cfg(feature = \"parallel\")]\n    rayon::set(n);\n    after();\n}\n",
        );
        let after_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .expect("tokenized");
        assert!(f.cfgs_at(after_idx).is_empty());
    }
}
