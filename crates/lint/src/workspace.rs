//! Workspace-level context shared across per-file rule runs.
//!
//! The only cross-file fact the rules need today is each crate's typed
//! error enum, discovered from `crates/*/src/error.rs`, so the
//! `error-hygiene` rule can say *which* error type a panicking `pub fn`
//! should return instead.

use crate::lexer::{lex, TokKind};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Facts about the workspace gathered before per-file linting.
#[derive(Debug, Default)]
pub struct WorkspaceCtx {
    /// Crate name → name of its public error enum (e.g. `cirstag-linalg`
    /// → `LinalgError`), discovered from `crates/<x>/src/error.rs`.
    error_types: BTreeMap<String, String>,
}

impl WorkspaceCtx {
    /// Scans `crates/*/src/error.rs` under `root` for `pub enum *Error`
    /// declarations.
    pub fn discover(root: &Path) -> WorkspaceCtx {
        let mut ctx = WorkspaceCtx::default();
        let crates_dir = root.join("crates");
        let Ok(entries) = fs::read_dir(&crates_dir) else {
            return ctx;
        };
        let mut dirs: Vec<_> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let Some(dir_name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let crate_name = if dir_name == "core" {
                "cirstag".to_string()
            } else {
                format!("cirstag-{dir_name}")
            };
            let error_rs = dir.join("src").join("error.rs");
            let Ok(source) = fs::read_to_string(&error_rs) else {
                continue;
            };
            if let Some(name) = first_pub_error_enum(&source) {
                ctx.error_types.insert(crate_name, name);
            }
        }
        ctx
    }

    /// The typed error enum of `crate_name`, if its `error.rs` declares one.
    pub fn error_type_of(&self, crate_name: &str) -> Option<&str> {
        self.error_types.get(crate_name).map(String::as_str)
    }

    /// Number of crates with a discovered error type.
    pub fn error_type_count(&self) -> usize {
        self.error_types.len()
    }
}

/// Finds the first `pub enum <Ident>` whose name ends in `Error`.
fn first_pub_error_enum(source: &str) -> Option<String> {
    let toks = lex(source).tokens;
    for i in 0..toks.len() {
        if toks[i].is_ident("pub")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("enum"))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text.ends_with("Error"))
        {
            return Some(toks[i + 2].text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_pub_error_enum() {
        let src =
            "use std::fmt;\n#[derive(Debug)]\n#[non_exhaustive]\npub enum GraphError { BadEdge }\n";
        assert_eq!(first_pub_error_enum(src).as_deref(), Some("GraphError"));
    }

    #[test]
    fn ignores_private_and_non_error_enums() {
        let src = "enum Hidden {}\npub enum Mode { A, B }\n";
        assert_eq!(first_pub_error_enum(src), None);
    }
}
