//! Findings and the machine-readable lint report.

use serde::impl_serde_struct;

/// Schema tag written into every report so downstream consumers can detect
/// format drift.
pub const REPORT_SCHEMA: &str = "cirstag-lint-report/v1";

/// One rule hit at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (see [`crate::rules::RULE_NAMES`]).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of the hit and the suggested fix.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `true` when an inline waiver with a reason suppresses this hit.
    pub waived: bool,
    /// The waiver's justification, when `waived`.
    pub waiver_reason: Option<String>,
}

impl_serde_struct!(Finding {
    rule,
    file,
    line,
    message,
    snippet,
    waived,
    waiver_reason,
});

/// Per-rule tally of active (unwaived) and waived hits.
#[derive(Debug, Clone, Default)]
pub struct RuleCount {
    /// Rule identifier.
    pub rule: String,
    /// Hits not covered by a waiver.
    pub active: usize,
    /// Hits suppressed by a reasoned waiver.
    pub waived: usize,
}

impl_serde_struct!(RuleCount {
    rule,
    active,
    waived
});

/// The full result of one lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Always [`REPORT_SCHEMA`].
    pub schema: String,
    /// Number of `.rs` files scanned (exempt files included).
    pub files_scanned: usize,
    /// Every hit, waived or not, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Per-rule tallies in [`crate::rules::RULE_NAMES`] order.
    pub counts: Vec<RuleCount>,
}

impl_serde_struct!(LintReport {
    schema,
    files_scanned,
    findings,
    counts,
});

impl LintReport {
    /// Builds a report from raw findings (sorts and tallies them).
    pub fn new(files_scanned: usize, mut findings: Vec<Finding>) -> LintReport {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        let counts = crate::rules::RULE_NAMES
            .iter()
            .map(|&rule| RuleCount {
                rule: rule.to_string(),
                active: findings
                    .iter()
                    .filter(|f| f.rule == rule && !f.waived)
                    .count(),
                waived: findings
                    .iter()
                    .filter(|f| f.rule == rule && f.waived)
                    .count(),
            })
            .collect();
        LintReport {
            schema: REPORT_SCHEMA.to_string(),
            files_scanned,
            findings,
            counts,
        }
    }

    /// Hits not suppressed by a waiver — the run fails when any exist.
    pub fn active_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Number of unwaived hits.
    pub fn active_count(&self) -> usize {
        self.active_findings().count()
    }

    /// Number of waived hits.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Renders the human-readable summary (one line per active finding,
    /// then the per-rule tally).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.active_findings() {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.snippet
            ));
        }
        out.push_str(&format!(
            "cirstag-lint: {} file(s) scanned, {} active finding(s), {} waived\n",
            self.files_scanned,
            self.active_count(),
            self.waived_count()
        ));
        for c in &self.counts {
            if c.active > 0 || c.waived > 0 {
                out.push_str(&format!(
                    "    {:<18} active {:>3}   waived {:>3}\n",
                    c.rule, c.active, c.waived
                ));
            }
        }
        out
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(rule: &str, file: &str, line: usize, waived: bool) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: "m".to_string(),
            snippet: "s".to_string(),
            waived,
            waiver_reason: waived.then(|| "reason".to_string()),
        }
    }

    #[test]
    fn report_sorts_and_tallies() {
        let report = LintReport::new(
            3,
            vec![
                hit("determinism", "b.rs", 9, false),
                hit("no-panic-in-lib", "a.rs", 2, true),
                hit("no-panic-in-lib", "a.rs", 1, false),
            ],
        );
        assert_eq!(report.findings[0].file, "a.rs");
        assert_eq!(report.findings[0].line, 1);
        assert_eq!(report.active_count(), 2);
        assert_eq!(report.waived_count(), 1);
        let np = report
            .counts
            .iter()
            .find(|c| c.rule == "no-panic-in-lib")
            .expect("tally present");
        assert_eq!((np.active, np.waived), (1, 1));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = LintReport::new(1, vec![hit("determinism", "a.rs", 1, false)]);
        let json = report.to_json().expect("serializes");
        assert!(json.contains(REPORT_SCHEMA));
        let back: LintReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.findings.len(), 1);
        assert_eq!(back.files_scanned, 1);
    }
}
