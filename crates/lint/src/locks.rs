//! `lock-order`: lexical lock-acquisition-order analysis.
//!
//! Per file, the pass finds every `Mutex`/`RwLock` *declaration* (struct
//! fields and statics) and every *acquisition* (`.lock()` always;
//! `.read()`/`.write()` only when the receiver's final field name is a
//! declared lock, so `File::read` and friends stay out). Each acquisition
//! gets a stable identity from its receiver chain — `self` is replaced by
//! the enclosing `impl` type from the scope tree, so the four different
//! structs whose lock field is named `state` do not alias — and a *held
//! span*: a `let`-bound guard lives to the end of its innermost enclosing
//! block (or an earlier `drop(name)`), a temporary dies at the end of its
//! statement.
//!
//! Within one function, acquiring `b` inside `a`'s held span yields the
//! directed edge `a → b`. The driver unions edges across the whole
//! workspace into one lock graph and reports every acquisition site whose
//! edge participates in a cycle — the lexical signature of a
//! deadlock-capable acquisition-order inversion. Findings are waivable at
//! the acquisition line like any other rule.
//!
//! This is a lexical approximation, deliberately: locks reached through
//! distinct local variable names are distinct nodes (edges can be missed),
//! and call results in receiver chains are dropped (`MAP.get_or_init(..)
//! .lock()` identifies as `MAP`). Both choices lose edges before they
//! invent cycles, so a reported cycle is always worth reading.

use crate::lexer::{TokKind, Token};
use crate::report::Finding;
use crate::rules::LOCK_ORDER;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One `a → b` acquisition-order edge observed in a function body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired while `held` is held.
    pub acquired: String,
    /// Workspace-relative path of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
    /// Trimmed source line of the acquisition site.
    pub snippet: String,
}

/// One lock acquisition with its held span, in token coordinates.
#[derive(Debug)]
struct Acquisition {
    id: String,
    tok: usize,
    line: usize,
    /// Last token index (exclusive) at which the guard is still held.
    held_end: usize,
}

/// Bare names (fields/statics) declared as `Mutex<..>` or `RwLock<..>` in
/// `file` — the gate set deciding whether `.read()`/`.write()` receivers
/// are locks at all.
pub fn declared_lock_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut names = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("Mutex") || tok.is_ident("RwLock")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("<")) {
            continue;
        }
        // Walk outward through path segments and wrapper generics
        // (`OnceLock<Mutex<..>>`) until the `name :` introducing the
        // declaration, if any.
        let mut j = i;
        loop {
            while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            let Some(k) = j.checked_sub(1) else { break };
            if toks[k].is_punct(":") {
                if let Some(name) = k
                    .checked_sub(1)
                    .and_then(|n| toks.get(n))
                    .filter(|t| t.kind == TokKind::Ident)
                {
                    names.insert(name.text.clone());
                }
                break;
            } else if toks[k].is_punct("<")
                && k >= 1
                && toks.get(k - 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                j = k - 1;
            } else {
                break;
            }
        }
    }
    names
}

/// All acquisition-order edges of `file`, given the workspace-wide set of
/// declared lock names.
pub fn file_edges(file: &SourceFile, lock_names: &BTreeSet<String>) -> Vec<LockEdge> {
    let toks = &file.tokens;
    let mut per_fn: BTreeMap<usize, Vec<Acquisition>> = BTreeMap::new();
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) || tok.kind != TokKind::Ident {
            continue;
        }
        let is_lock = tok.text == "lock";
        let is_rw = tok.text == "read" || tok.text == "write";
        if !(is_lock || is_rw) {
            continue;
        }
        // Method-call shape: `.name(`.
        if !(i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let chain = receiver_chain(toks, i - 1);
        if chain.is_empty() {
            continue;
        }
        if is_rw && !chain.last().is_some_and(|s| lock_names.contains(s)) {
            continue;
        }
        let Some(fn_scope) = file.scope_tree.enclosing_fn(i) else {
            continue;
        };
        let id = qualify(file, i, &chain);
        let held_end = held_span_end(file, i);
        per_fn.entry(fn_scope).or_default().push(Acquisition {
            id,
            tok: i,
            line: tok.line,
            held_end,
        });
    }
    let mut edges = Vec::new();
    for acqs in per_fn.values() {
        for (ai, a) in acqs.iter().enumerate() {
            for b in &acqs[ai + 1..] {
                if b.tok < a.held_end && a.id != b.id {
                    edges.push(LockEdge {
                        held: a.id.clone(),
                        acquired: b.id.clone(),
                        file: file.rel_path.clone(),
                        line: b.line,
                        snippet: file.snippet(b.line),
                    });
                }
            }
        }
    }
    edges
}

/// Builds the global lock graph from every file's edges and reports each
/// acquisition site whose edge lies on a cycle.
pub fn analyze(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().insert(&e.acquired);
    }
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(&str, usize, &str, &str)> = BTreeSet::new();
    for e in edges {
        if !reaches(&adj, &e.acquired, &e.held) {
            continue;
        }
        if !seen.insert((&e.file, e.line, &e.held, &e.acquired)) {
            continue;
        }
        findings.push(Finding {
            rule: LOCK_ORDER.to_string(),
            file: e.file.clone(),
            line: e.line,
            message: format!(
                "acquiring `{}` while holding `{}` closes a cycle in the workspace lock \
                 graph (elsewhere `{}` is held while `{}` is acquired — reachable in \
                 reverse); pick one global acquisition order or waive with the proof \
                 the paths never interleave",
                e.acquired, e.held, e.acquired, e.held
            ),
            snippet: e.snippet.clone(),
            waived: false,
            waiver_reason: None,
        });
    }
    findings
}

/// DFS reachability `from → to` over the acquisition-order graph.
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !visited.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// The receiver chain of a method call, walking back from the `.` at
/// `dot_idx`: `self.state.lock()` → `["self", "state"]`. Call segments
/// (`MAP.get_or_init(..)`) are skipped over — the identity is carried by
/// the base and its field path. Leading `path::` segments fold into the
/// base (`fail::MAP` → `fail::MAP`).
fn receiver_chain(toks: &[Token], dot_idx: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot_idx; // toks[j] is the `.` before the current segment
    while let Some(k) = j.checked_sub(1) {
        match &toks[k] {
            t if t.kind == TokKind::Ident => {
                let mut base = k;
                let mut text = t.text.clone();
                // Fold a `path::to::NAME` prefix into the segment.
                while base >= 2
                    && toks[base - 1].is_punct("::")
                    && toks[base - 2].kind == TokKind::Ident
                {
                    base -= 2;
                    text = format!("{}::{}", toks[base].text, text);
                }
                segs.push(text);
                if base >= 1 && toks[base - 1].is_punct(".") {
                    j = base - 1;
                } else {
                    break;
                }
            }
            t if t.is_punct(")") || t.is_punct("]") => {
                // A call/index result: skip its balanced brackets and the
                // method name, without contributing a segment.
                let Some(open) = matching_open(toks, k) else {
                    break;
                };
                let Some(m) = open.checked_sub(1) else { break };
                if toks[m].kind != TokKind::Ident {
                    break;
                }
                if m >= 1 && toks[m - 1].is_punct(".") {
                    j = m - 1;
                } else {
                    // Free call result (`helper().lock()`): identify by the
                    // callee name, better than nothing.
                    segs.push(toks[m].text.clone());
                    break;
                }
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Index of the opener matching the closer at `close`, scanning backwards.
fn matching_open(toks: &[Token], close: usize) -> Option<usize> {
    let (open_txt, close_txt) = match toks.get(close)?.text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            if t.text == close_txt {
                depth += 1;
            } else if t.text == open_txt {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Stable identity of an acquisition: `self` becomes the enclosing `impl`
/// type so same-named fields of different structs stay distinct.
fn qualify(file: &SourceFile, tok_idx: usize, chain: &[String]) -> String {
    let mut parts: Vec<&str> = chain.iter().map(String::as_str).collect();
    if let Some(first) = parts.first_mut() {
        if *first == "self" {
            *first = file
                .scope_tree
                .enclosing_type_name(tok_idx)
                .unwrap_or("Self");
        }
    }
    parts.join("::")
}

/// One past the last token at which the guard from the acquisition at
/// `tok_idx` is held: a `let`-bound guard runs to the end of the innermost
/// enclosing block (or an earlier `drop(name)`); a temporary dies at its
/// statement's `;`.
fn held_span_end(file: &SourceFile, tok_idx: usize) -> usize {
    let toks = &file.tokens;
    // Statement start: nearest `;`, `{` or `}` before the acquisition.
    let mut start = 0usize;
    for k in (0..tok_idx).rev() {
        if toks[k].kind == TokKind::Punct && matches!(toks[k].text.as_str(), ";" | "{" | "}") {
            start = k + 1;
            break;
        }
    }
    let bound_name = toks.get(start).filter(|t| t.is_ident("let")).and_then(|_| {
        let mut n = start + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        toks.get(n)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
    });
    match bound_name {
        Some(name) => {
            let scope = file.scope_tree.innermost(tok_idx);
            let block_end = file.scope_tree.scopes[scope].close;
            // An explicit early `drop(name)` ends the span there.
            for k in tok_idx..block_end.min(toks.len()) {
                if toks[k].is_ident("drop")
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
                    && toks.get(k + 2).is_some_and(|t| t.is_ident(&name))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(")"))
                {
                    return k;
                }
            }
            block_end
        }
        None => {
            // Temporary: held to the end of the statement.
            let mut depth = 0i32;
            for k in tok_idx..toks.len() {
                let t = &toks[k];
                if t.kind != TokKind::Punct {
                    continue;
                }
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth < 0 {
                            return k;
                        }
                    }
                    ";" if depth <= 0 => return k,
                    _ => {}
                }
            }
            toks.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source("crates/graph/src/x.rs", src)
    }

    fn edges_of(src: &str) -> Vec<LockEdge> {
        let f = file(src);
        let names = declared_lock_names(&f);
        file_edges(&f, &names)
    }

    const TWO_LOCKS: &str = "struct S { a: Mutex<()>, b: Mutex<()> }\n";

    #[test]
    fn declared_names_found_through_wrappers() {
        let f = file(
            "struct S { state: Mutex<u8> }\nstatic MAP: OnceLock<Mutex<Vec<u8>>> = OnceLock::new();\nstatic T: RwLock<u8> = RwLock::new(0);\n",
        );
        let names = declared_lock_names(&f);
        assert!(names.contains("state"), "{names:?}");
        assert!(names.contains("MAP"), "{names:?}");
        assert!(names.contains("T"), "{names:?}");
    }

    #[test]
    fn nested_acquisition_makes_edge() {
        let src = format!(
            "{TWO_LOCKS}impl S {{ fn f(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); }} }}"
        );
        let edges = edges_of(&src);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].held, "S::a");
        assert_eq!(edges[0].acquired, "S::b");
    }

    #[test]
    fn temporaries_do_not_overlap() {
        let src = format!(
            "{TWO_LOCKS}impl S {{ fn f(&self) {{ self.a.lock().push(1); self.b.lock().push(2); }} }}"
        );
        assert!(edges_of(&src).is_empty());
    }

    #[test]
    fn early_drop_ends_held_span() {
        let src = format!(
            "{TWO_LOCKS}impl S {{ fn f(&self) {{ let ga = self.a.lock(); drop(ga); let gb = self.b.lock(); }} }}"
        );
        assert!(edges_of(&src).is_empty());
    }

    #[test]
    fn read_write_only_counts_declared_locks() {
        let src = "struct S { tbl: RwLock<u8> }\nimpl S { fn f(&self, io: &mut F) { let g = self.tbl.read(); io.read(); } }";
        let f = file(src);
        let names = declared_lock_names(&f);
        // Only the RwLock read is an acquisition; `io.read()` is I/O, so no
        // overlap edge forms even while `g` is held.
        let edges = file_edges(&f, &names);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn cycle_is_reported_consistent_order_is_not() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n fn ab(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); }}\n fn ba(&self) {{ let gb = self.b.lock(); let ga = self.a.lock(); }}\n}}"
        );
        let findings = analyze(&edges_of(&src));
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == LOCK_ORDER));

        let consistent = format!(
            "{TWO_LOCKS}impl S {{\n fn ab(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); }}\n fn ab2(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); }}\n}}"
        );
        assert!(analyze(&edges_of(&consistent)).is_empty());
    }

    #[test]
    fn same_field_name_in_different_types_does_not_alias() {
        let src = "struct A { state: Mutex<u8> }\nstruct B { state: Mutex<u8> }\nimpl A { fn f(&self, b: &B) { let g = self.state.lock(); let h = b.state.lock(); } }\nimpl B { fn g(&self, a: &A) { let g = self.state.lock(); let h = a.state.lock(); } }";
        // A::state → b::state and B::state → a::state: receiver bases differ
        // (`b`/`a` locals vs impl types), so no false cycle forms.
        let findings = analyze(&edges_of(src));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn call_results_identify_by_base() {
        let src = "static MAP: OnceLock<Mutex<u8>> = OnceLock::new();\nstatic AUX: OnceLock<Mutex<u8>> = OnceLock::new();\nfn f() { let g = MAP.get_or_init(init).lock(); let h = AUX.get_or_init(init).lock(); }";
        let edges = edges_of(src);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].held, "MAP");
        assert_eq!(edges[0].acquired, "AUX");
    }
}
