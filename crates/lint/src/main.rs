//! CLI entry point: `cargo run -p cirstag-lint [-- --json] [--root <dir>]
//! [--report <path>] [--no-report]`.
//!
//! Exit codes: `0` clean (no unwaived findings), `1` active findings,
//! `2` usage or I/O error.

use cirstag_lint::run_lint;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: bool,
    report_path: Option<PathBuf>,
    write_report: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        report_path: None,
        write_report: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--no-report" => opts.write_report = false,
            "--root" => {
                let v = args.next().ok_or("--root requires a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--report" => {
                let v = args.next().ok_or("--report requires a path argument")?;
                opts.report_path = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: cirstag-lint [--json] [--root <dir>] [--report <path>] [--no-report]\n\
    --json          print the report as JSON instead of human output\n\
    --root <dir>    workspace root to lint (default: current directory)\n\
    --report <path> where to write the JSON report (default: <root>/LINT_REPORT.json)\n\
    --no-report     skip writing the JSON report file";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match run_lint(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let json = match report.to_json() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cirstag-lint: failed to serialize report: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.write_report {
        let path = opts
            .report_path
            .clone()
            .unwrap_or_else(|| opts.root.join("LINT_REPORT.json"));
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("cirstag-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.json {
        println!("{json}");
    } else {
        print!("{}", report.render_human());
    }
    if report.active_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
