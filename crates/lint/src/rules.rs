//! The six repo-specific lint rules.
//!
//! Each rule is a pure function over one [`SourceFile`]'s token stream; the
//! driver applies waivers afterwards, so rules always report every raw hit.
//!
//! | Rule | Guards |
//! |------|--------|
//! | `no-panic-in-lib` | library code stays panic-free (typed errors only) |
//! | `float-discipline` | no `==`/`!=` on floats, no bare NaN literals |
//! | `feature-hygiene` | `rayon`/failpoint arming stays behind its feature |
//! | `determinism` | no order-dependent containers / ambient entropy in result-affecting crates |
//! | `error-hygiene` | public unit-returning fns must not panic on bad input |
//! | `cast-truncation` | no lossy `as` numeric casts in result-affecting crates |
//! | `pub-doc` | every public item in result-affecting crates carries a doc comment |
//! | `unsafe-safety` | every `unsafe` block/fn/impl carries an adjacent `// SAFETY:` rationale |
//! | `lock-order` | the workspace lock graph stays acyclic (see [`crate::locks`]) |
//! | `nondeterminism` | no hash iteration / clock reads / thread-count branching in result paths |

use crate::lexer::{TokKind, Token};
use crate::report::Finding;
use crate::source::{FileKind, SourceFile};
use crate::workspace::WorkspaceCtx;

/// Names of every rule, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    NO_PANIC,
    FLOAT_DISCIPLINE,
    FEATURE_HYGIENE,
    DETERMINISM,
    ERROR_HYGIENE,
    CAST_TRUNCATION,
    PUB_DOC,
    UNSAFE_SAFETY,
    LOCK_ORDER,
    NONDETERMINISM,
    WAIVER_SYNTAX,
];

/// Rule id: panic-free library code.
pub const NO_PANIC: &str = "no-panic-in-lib";
/// Rule id: float comparison / NaN literal discipline.
pub const FLOAT_DISCIPLINE: &str = "float-discipline";
/// Rule id: feature-gate hygiene for `parallel` / `failpoints`.
pub const FEATURE_HYGIENE: &str = "feature-hygiene";
/// Rule id: deterministic iteration and seeding in result-affecting crates.
pub const DETERMINISM: &str = "determinism";
/// Rule id: public API error hygiene.
pub const ERROR_HYGIENE: &str = "error-hygiene";
/// Rule id: lossy `as` numeric casts in result-affecting crates.
pub const CAST_TRUNCATION: &str = "cast-truncation";
/// Rule id: undocumented public items in result-affecting crates.
pub const PUB_DOC: &str = "pub-doc";
/// Rule id: `unsafe` without an adjacent `// SAFETY:` rationale.
pub const UNSAFE_SAFETY: &str = "unsafe-safety";
/// Rule id: cyclic lock-acquisition order across the workspace.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule id: run-to-run-variable behavior (hash iteration, clock reads,
/// thread-count branching) in result-affecting crates.
pub const NONDETERMINISM: &str = "nondeterminism";
/// Rule id: malformed waiver annotations (always unwaivable).
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Crates whose numeric output the paper's bit-identical determinism
/// guarantee covers (PR 1): any order-dependence here can silently change
/// η-scores or DMD rankings. `cirstag-serve` is held to the same bar — it
/// replays cached artifacts across tenants, so a panic or nondeterminism in
/// its library paths corrupts every client of the daemon at once.
const RESULT_AFFECTING: &[&str] = &[
    "cirstag-linalg",
    "cirstag-graph",
    "cirstag-solver",
    "cirstag-embed",
    "cirstag-pgm",
    "cirstag",
    "cirstag-serve",
];

/// Panicking macros forbidden in library code.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Macros that panic on invalid input, checked by the error-hygiene rule
/// inside public unit-returning functions (`debug_assert*` is exempt: it
/// vanishes in release builds and is the idiomatic invariant-audit form).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne", "panic"];

/// Ambient-entropy identifiers forbidden in result-affecting crates.
const ENTROPY_IDENTS: &[&str] = &["SystemTime", "thread_rng", "from_entropy"];

/// Cast targets for which `as` can silently lose information: every integer
/// type truncates or wraps out-of-range values, and `f32` rounds away
/// mantissa bits. `f64` is deliberately absent — every integer up to 2⁵³ and
/// every `f32` converts exactly, so `as f64` is the one lossless idiom.
const TRUNCATING_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Runs every rule over `file`, appending raw findings to `out`.
pub fn run_all(file: &SourceFile, ctx: &WorkspaceCtx, out: &mut Vec<Finding>) {
    if file.kind == FileKind::Exempt {
        return;
    }
    if file.kind == FileKind::Lib {
        no_panic_in_lib(file, out);
        float_discipline(file, out);
        error_hygiene(file, ctx, out);
    }
    // Feature hygiene also applies to bin sources: a binary unconditionally
    // touching rayon would break the `--no-default-features` serial build.
    feature_hygiene(file, out);
    // Unsafe code needs its rationale everywhere, binaries included.
    unsafe_safety(file, out);
    if RESULT_AFFECTING.contains(&file.crate_name.as_str()) && file.kind == FileKind::Lib {
        determinism(file, out);
        cast_truncation(file, out);
        pub_doc(file, out);
        nondeterminism(file, out);
    }
}

fn finding(file: &SourceFile, rule: &'static str, line: usize, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line),
        waived: false,
        waiver_reason: None,
    }
}

/// `no-panic-in-lib`: forbids `.unwrap()`, `.expect(...)`, the panicking
/// macros, and integer-literal slice indexing (`xs[0]`) in library code.
fn no_panic_in_lib(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) {
            continue;
        }
        match tok.kind {
            TokKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
                let method_call = prev_is(toks, i, ".") && next_is(toks, i, "(");
                if method_call {
                    out.push(finding(
                        file,
                        NO_PANIC,
                        tok.line,
                        format!(
                            "`.{}()` can panic; bubble a typed error instead (or waive with a reason)",
                            tok.text
                        ),
                    ));
                }
            }
            TokKind::Ident
                if PANIC_MACROS.contains(&tok.text.as_str())
                    && next_is(toks, i, "!")
                    && !prev_is(toks, i, ".") =>
            {
                out.push(finding(
                    file,
                    NO_PANIC,
                    tok.line,
                    format!(
                        "`{}!` aborts the caller; return a typed error instead",
                        tok.text
                    ),
                ));
            }
            TokKind::Punct if tok.text == "[" => {
                // `expr[<int literal>]` — the classic empty-input panic.
                let indexes_value = toks.get(i.wrapping_sub(1)).is_some_and(|p| {
                    p.kind == TokKind::Ident && !is_keyword(&p.text)
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                let literal_subscript = toks.get(i + 1).is_some_and(|t| t.kind == TokKind::IntLit)
                    && toks.get(i + 2).is_some_and(|t| t.is_punct("]"));
                if indexes_value && literal_subscript {
                    out.push(finding(
                        file,
                        NO_PANIC,
                        tok.line,
                        "integer-literal indexing panics on short input; use `.first()`/`.get(..)` \
                         or prove the bound and waive"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// `float-discipline`: forbids `==`/`!=` with a float operand and bare
/// `f64::NAN`/`f32::NAN` literals in library code.
fn float_discipline(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) {
            continue;
        }
        match tok.kind {
            TokKind::Punct if tok.text == "==" || tok.text == "!=" => {
                let float_neighbor = toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|t| t.kind == TokKind::FloatLit)
                    || toks.get(i + 1).is_some_and(|t| t.kind == TokKind::FloatLit)
                    // `x == -1.0`
                    || (toks.get(i + 1).is_some_and(|t| t.is_punct("-"))
                        && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::FloatLit));
                if float_neighbor {
                    out.push(finding(
                        file,
                        FLOAT_DISCIPLINE,
                        tok.line,
                        format!(
                            "`{}` against a float literal is exact-comparison; use a tolerance, \
                             `total_cmp`, or waive with the structural justification",
                            tok.text
                        ),
                    ));
                }
            }
            TokKind::Ident if tok.text == "NAN" => {
                let qualified = i >= 2
                    && toks.get(i - 1).is_some_and(|t| t.is_punct("::"))
                    && toks
                        .get(i - 2)
                        .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
                if qualified {
                    out.push(finding(
                        file,
                        FLOAT_DISCIPLINE,
                        tok.line,
                        "bare NaN literal in library code poisons downstream reductions; \
                         return a typed error or waive (e.g. deliberate failpoint corruption)"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// `feature-hygiene`: every `rayon` use must sit in a
/// `#[cfg(feature = "parallel")]` region with a serial fallback present in
/// the same file; failpoint *arming* must sit behind `failpoints`.
fn feature_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut gated_rayon = false;
    let mut first_gated_line = 0usize;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) {
            continue;
        }
        if tok.is_ident("rayon") {
            let cfgs = file.cfgs_at(i);
            let parallel_gated = cfgs.iter().any(|a| {
                let squeezed: String = a.chars().filter(|c| !c.is_whitespace()).collect();
                squeezed.contains("feature=\"parallel\"") && !squeezed.contains("not(feature")
            });
            if parallel_gated {
                gated_rayon = true;
                if first_gated_line == 0 {
                    first_gated_line = tok.line;
                }
            } else {
                out.push(finding(
                    file,
                    FEATURE_HYGIENE,
                    tok.line,
                    "`rayon` outside a `#[cfg(feature = \"parallel\")]` region breaks the \
                     `--no-default-features` serial build"
                        .to_string(),
                ));
            }
        }
        // Arming failpoints from library code would make production paths
        // injectable; the registry only exists behind the feature.
        if tok.kind == TokKind::Ident
            && matches!(tok.text.as_str(), "arm" | "arm_always")
            && prev_is(toks, i, "::")
            && toks.get(i.wrapping_sub(2)).is_some_and(|t| {
                t.is_ident("fail") || t.is_ident("failpoint") || t.is_ident("registry")
            })
            && file.kind == FileKind::Lib
        {
            let cfgs = file.cfgs_at(i);
            let failpoint_gated = cfgs.iter().any(|a| {
                let squeezed: String = a.chars().filter(|c| !c.is_whitespace()).collect();
                squeezed.contains("feature=\"failpoints\"")
            });
            if !failpoint_gated {
                out.push(finding(
                    file,
                    FEATURE_HYGIENE,
                    tok.line,
                    "failpoint arming outside `#[cfg(feature = \"failpoints\")]` makes \
                     production paths injectable"
                        .to_string(),
                ));
            }
        }
    }
    if gated_rayon {
        let has_serial_fallback = file.cfg_regions.iter().any(|r| {
            let squeezed: String = r.attr.chars().filter(|c| !c.is_whitespace()).collect();
            squeezed.contains("not(feature=\"parallel\")")
        });
        if !has_serial_fallback {
            out.push(finding(
                file,
                FEATURE_HYGIENE,
                first_gated_line,
                "file gates work behind `parallel` but has no \
                 `#[cfg(not(feature = \"parallel\"))]` serial fallback"
                    .to_string(),
            ));
        }
    }
}

/// `determinism`: forbids `HashMap`/`HashSet` (iteration order varies run to
/// run) and ambient entropy (`SystemTime`, `thread_rng`, …) in the
/// result-affecting crates.
fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) || tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "HashMap" | "HashSet" => {
                out.push(finding(
                    file,
                    DETERMINISM,
                    tok.line,
                    format!(
                        "`{}` iteration order is randomized per process; use `BTreeMap`/sorted \
                         vec in result-affecting code, or waive if provably never iterated",
                        tok.text
                    ),
                ));
            }
            "SystemTime" | "thread_rng" | "from_entropy" => {
                debug_assert!(ENTROPY_IDENTS.contains(&tok.text.as_str()));
                out.push(finding(
                    file,
                    DETERMINISM,
                    tok.line,
                    format!(
                        "`{}` injects ambient entropy; thread all randomness through the \
                         seeded entry points (`CirStagConfig::seed`)",
                        tok.text
                    ),
                ));
            }
            "random"
                if prev_is(toks, i, "::")
                    && toks
                        .get(i.wrapping_sub(2))
                        .is_some_and(|t| t.is_ident("rand")) =>
            {
                out.push(finding(
                    file,
                    DETERMINISM,
                    tok.line,
                    "`rand::random` bypasses the seeded RNG plumbing".to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// `cast-truncation`: forbids lossy `as` numeric casts in result-affecting
/// library code. `as` silently truncates (`u64 as u32`), wraps
/// (`i64 as u8`), or rounds (`f64 as f32`, float → int), any of which can
/// corrupt η-scores or rankings without a panic. Use `try_from` with a
/// typed error (or a saturating `unwrap_or`), a lossless `From`, or waive
/// with the range proof. `as f64` is exempt (see
/// [`TRUNCATING_CAST_TARGETS`]).
fn cast_truncation(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) || !tok.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !TRUNCATING_CAST_TARGETS.contains(&target.text.as_str())
        {
            continue;
        }
        out.push(finding(
            file,
            CAST_TRUNCATION,
            tok.line,
            format!(
                "`as {0}` silently truncates/wraps out-of-range values; use \
                 `{0}::try_from(..)` so the failure is typed (or saturates \
                 explicitly), or waive with the range proof",
                target.text
            ),
        ));
    }
}

/// `error-hygiene`: a `pub fn` that returns `()` must not contain
/// `assert!`/`assert_eq!`/`assert_ne!`/`panic!` — invalid input should
/// surface as the crate's typed error, not a panic.
fn error_hygiene(file: &SourceFile, ctx: &WorkspaceCtx, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if file.in_test_region(i) || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if next_is(toks, i, "(") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Allow `pub const fn`, `pub unsafe fn`, `pub async fn`.
        while toks
            .get(j)
            .is_some_and(|t| t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else {
            break;
        };
        let fn_name = name_tok.text.clone();
        // Find the parameter list and skip to its closing paren.
        let Some(params_open) = find_punct_from(toks, j + 1, "(") else {
            break;
        };
        let Some(params_close) = matching_close(toks, params_open) else {
            break;
        };
        // Return type: any `->` before the body block means non-unit.
        let mut k = params_close + 1;
        let mut returns_unit = true;
        while let Some(t) = toks.get(k) {
            if t.is_punct("->") {
                returns_unit = false;
            }
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            k += 1;
        }
        if !toks.get(k).is_some_and(|t| t.is_punct("{")) {
            // Trait method signature without body.
            i = k + 1;
            continue;
        }
        let body_open = k;
        let body_close = matching_close(toks, body_open).unwrap_or(toks.len());
        if returns_unit {
            for b in body_open..body_close {
                let t = match toks.get(b) {
                    Some(t) => t,
                    None => break,
                };
                if t.kind == TokKind::Ident
                    && ASSERT_MACROS.contains(&t.text.as_str())
                    && next_is(toks, b, "!")
                {
                    let hint = ctx
                        .error_type_of(&file.crate_name)
                        .map(|e| format!("return `Result<(), {e}>` using the crate's typed errors"))
                        .unwrap_or_else(|| "return a typed `Result` instead".to_string());
                    out.push(finding(
                        file,
                        ERROR_HYGIENE,
                        t.line,
                        format!(
                            "pub fn `{fn_name}` returns `()` but `{}!`s on invalid input; {hint}",
                            t.text
                        ),
                    ));
                }
            }
        }
        i = body_close.max(i + 1);
    }
}

/// `pub-doc`: every `pub` item (fn, struct, enum, trait, mod, const,
/// static, type, union, and named struct fields) in a result-affecting
/// crate must carry a doc comment — the public surface of these crates is
/// where numerical contracts (determinism, finiteness, accumulation order)
/// live, and an undocumented entry point is an unstated contract.
///
/// `pub(crate)`/`pub(super)` items are not public API and `pub use`
/// re-exports inherit their target's docs; both are exempt. Tuple-struct
/// fields are deliberately out of scope (their meaning is positional and
/// documented on the struct).
fn pub_doc(file: &SourceFile, out: &mut Vec<Finding>) {
    // Lines covered by attributes and by doc comments: walking upward from
    // a `pub` we skip attribute lines (`#[derive(..)]` sits between the doc
    // and the item) and accept the first doc-comment line.
    let mut attr_lines = std::collections::BTreeSet::new();
    for t in &file.tokens {
        if t.kind == TokKind::Attr {
            for l in t.line..=t.line + t.text.matches('\n').count() {
                attr_lines.insert(l);
            }
        }
    }
    let mut doc_lines = std::collections::BTreeSet::new();
    for c in &file.comments {
        if c.doc {
            for l in c.line..=c.line + c.text.matches('\n').count() {
                doc_lines.insert(l);
            }
        }
    }
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if file.in_test_region(i) || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if next_is(toks, i, "(") {
            i += 1;
            continue;
        }
        // Skip qualifiers so `pub const fn f` reads as a fn while
        // `pub const F: u64` reads as a const item.
        let mut j = i + 1;
        let mut saw_const = false;
        while let Some(t) = toks.get(j) {
            let qualifier = match t.kind {
                TokKind::Ident => match t.text.as_str() {
                    "const" => {
                        saw_const = true;
                        true
                    }
                    "unsafe" | "async" | "extern" => true,
                    _ => false,
                },
                // The ABI string of `pub extern "C" fn`.
                TokKind::StrLit => true,
                _ => false,
            };
            if !qualifier {
                break;
            }
            j += 1;
        }
        let Some(kw) = toks.get(j) else {
            break;
        };
        let item = if kw.kind != TokKind::Ident {
            None
        } else {
            match kw.text.as_str() {
                // Out-of-line `pub mod name;` is exempt: its docs live as a
                // `//!` header inside the module's own file, which a
                // single-file lexical pass cannot see.
                "mod" if toks.get(j + 2).is_some_and(|t| t.is_punct(";")) => None,
                "fn" | "struct" | "enum" | "trait" | "mod" | "static" | "type" | "union" => toks
                    .get(j + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| format!("`{} {}`", kw.text, n.text)),
                // Re-exports inherit their target's documentation.
                "use" => None,
                _ if saw_const => Some(format!("`const {}`", kw.text)),
                // `pub name: Type` — a named struct field.
                _ if next_is(toks, j, ":") => Some(format!("field `{}`", kw.text)),
                _ => None,
            }
        };
        if let Some(desc) = item {
            let mut l = toks[i].line.saturating_sub(1);
            let documented = loop {
                if l == 0 {
                    break false;
                }
                if attr_lines.contains(&l) {
                    l -= 1;
                    continue;
                }
                break doc_lines.contains(&l);
            };
            if !documented {
                out.push(finding(
                    file,
                    PUB_DOC,
                    toks[i].line,
                    format!(
                        "{desc} is public API of a result-affecting crate but has no doc \
                         comment; document the contract (units, ranges, determinism) or \
                         reduce visibility"
                    ),
                ));
            }
        }
        i = j + 1;
    }
}

/// `unsafe-safety`: every `unsafe` block, fn, impl or trait must carry an
/// adjacent `// SAFETY:` comment with a non-empty rationale — same line, or
/// in the contiguous comment block directly above (attribute lines are
/// skipped, like `pub-doc` does). A doc comment with a `# Safety` section
/// also satisfies the rule for `unsafe fn` declarations. An empty rationale
/// (`// SAFETY:` with nothing after it) is its own finding.
fn unsafe_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut attr_lines = std::collections::BTreeSet::new();
    for t in toks {
        if t.kind == TokKind::Attr {
            for l in t.line..=t.line + t.text.matches('\n').count() {
                attr_lines.insert(l);
            }
        }
    }
    // Per-line comment coverage (block comments span several lines).
    let mut comment_at = std::collections::BTreeMap::new();
    for (ci, c) in file.comments.iter().enumerate() {
        for l in c.line..=c.line + c.text.matches('\n').count() {
            comment_at.insert(l, ci);
        }
    }
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) || !tok.is_ident("unsafe") {
            continue;
        }
        let what = match toks.get(i + 1) {
            Some(t) if t.is_punct("{") => "unsafe block",
            Some(t) if t.is_ident("fn") => "unsafe fn",
            Some(t) if t.is_ident("impl") => "unsafe impl",
            Some(t) if t.is_ident("trait") => "unsafe trait",
            Some(t) if t.is_ident("extern") => "unsafe extern",
            _ => continue,
        };
        match safety_rationale(file, tok.line, &attr_lines, &comment_at) {
            None => out.push(finding(
                file,
                UNSAFE_SAFETY,
                tok.line,
                format!(
                    "{what} has no adjacent `// SAFETY:` comment; state the invariant that \
                     makes it sound (same line or the comment block directly above)"
                ),
            )),
            Some(rationale) if rationale.is_empty() => out.push(finding(
                file,
                UNSAFE_SAFETY,
                tok.line,
                format!(
                    "{what} has a `// SAFETY:` comment with an empty rationale; say *why* \
                     the invariant holds, not just that someone thought about it"
                ),
            )),
            Some(_) => {}
        }
    }
}

/// The rationale text of the `SAFETY:` comment adjacent to `line`, if one
/// exists: the text after `SAFETY:` plus any continuation comment lines
/// between it and the `unsafe` itself. `None` when no adjacent comment
/// mentions `SAFETY:` (or a doc `# Safety` section).
fn safety_rationale(
    file: &SourceFile,
    line: usize,
    attr_lines: &std::collections::BTreeSet<usize>,
    comment_at: &std::collections::BTreeMap<usize, usize>,
) -> Option<String> {
    // Comment indices of the adjacent block, nearest-to-`unsafe` first:
    // a trailing comment on the same line, then contiguous lines above.
    let mut block: Vec<usize> = Vec::new();
    if let Some(&ci) = comment_at.get(&line) {
        block.push(ci);
    }
    let mut l = line.saturating_sub(1);
    while l > 0 {
        if attr_lines.contains(&l) {
            l -= 1;
            continue;
        }
        if let Some(&ci) = comment_at.get(&l) {
            if block.last() != Some(&ci) {
                block.push(ci);
            }
            l = file.comments[ci].line.saturating_sub(1);
            continue;
        }
        break;
    }
    for (bi, &ci) in block.iter().enumerate() {
        let c = &file.comments[ci];
        if let Some(pos) = c.text.find("SAFETY:") {
            let mut rationale = c.text[pos + "SAFETY:".len()..].trim().to_string();
            // Continuation lines sit between the `SAFETY:` line and the
            // `unsafe` itself — the earlier entries of `block`.
            for &prior in block[..bi].iter().rev() {
                let t = file.comments[prior].text.trim();
                if !t.is_empty() {
                    if !rationale.is_empty() {
                        rationale.push(' ');
                    }
                    rationale.push_str(t);
                }
            }
            return Some(rationale);
        }
        if c.doc && c.text.contains("# Safety") {
            return Some("# Safety doc section".to_string());
        }
    }
    None
}

/// Methods whose call on a hash container exposes its randomized order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// `nondeterminism`: flags run-to-run-variable behavior in result-affecting
/// library code that the coarser `determinism` rule cannot see — iteration
/// over bindings *declared* as `HashMap`/`HashSet` (a keyed lookup is fine,
/// walking the table is not), wall-clock reads (`Instant::now`,
/// `.elapsed()`), thread identity (`ThreadId`, `thread::current`), and
/// thread-count reads inside `if`/`while`/`match` conditions (a branch on
/// pool width is exactly how "bit-identical at any thread count" breaks).
/// `SystemTime` stays the `determinism` rule's finding to avoid doubles.
fn nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let cond_spans = condition_spans(toks);
    let in_cond = |i: usize| cond_spans.iter().any(|&(s, e)| i >= s && i < e);
    let hash_bound = hash_container_names(toks);
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_region(i) || tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "Instant"
                if next_is(toks, i, "::") && toks.get(i + 2).is_some_and(|t| t.is_ident("now")) =>
            {
                out.push(finding(
                    file,
                    NONDETERMINISM,
                    tok.line,
                    "`Instant::now()` reads the wall clock; results must not depend on time \
                     (waive when the reading is diagnostics-only)"
                        .to_string(),
                ));
            }
            "elapsed" if prev_is(toks, i, ".") && next_is(toks, i, "(") => {
                out.push(finding(
                    file,
                    NONDETERMINISM,
                    tok.line,
                    "`.elapsed()` is a wall-clock read; results must not depend on time \
                     (waive when the reading is diagnostics-only)"
                        .to_string(),
                ));
            }
            "current_num_threads" | "available_parallelism" if in_cond(i) => {
                out.push(finding(
                    file,
                    NONDETERMINISM,
                    tok.line,
                    format!(
                        "branching on `{}` makes control flow depend on pool width; both \
                         branches must stay bit-identical (waive with that proof)",
                        tok.text
                    ),
                ));
            }
            "ThreadId" => {
                out.push(finding(
                    file,
                    NONDETERMINISM,
                    tok.line,
                    "`ThreadId` values differ run to run; results keyed or ordered by \
                     them are irreproducible"
                        .to_string(),
                ));
            }
            "current"
                if prev_is(toks, i, "::")
                    && toks
                        .get(i.wrapping_sub(2))
                        .is_some_and(|t| t.is_ident("thread")) =>
            {
                out.push(finding(
                    file,
                    NONDETERMINISM,
                    tok.line,
                    "`thread::current()` exposes thread identity; results must not depend \
                     on which worker ran the task"
                        .to_string(),
                ));
            }
            m if HASH_ITER_METHODS.contains(&m)
                && prev_is(toks, i, ".")
                && next_is(toks, i, "(")
                && toks
                    .get(i.wrapping_sub(2))
                    .is_some_and(|t| t.kind == TokKind::Ident && hash_bound.contains(&t.text)) =>
            {
                out.push(finding(
                    file,
                    NONDETERMINISM,
                    tok.line,
                    format!(
                        "`.{m}()` on `{}` iterates a hash container in randomized order; \
                         collect into a sorted structure first, or switch to `BTreeMap`",
                        toks[i - 2].text
                    ),
                ));
            }
            "in" => {
                // `for x in [&[mut]] NAME { .. }` over a hash binding.
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| t.is_punct("&") || t.is_punct("&&") || t.is_ident("mut"))
                {
                    j += 1;
                }
                if let Some(name) = toks
                    .get(j)
                    .filter(|t| t.kind == TokKind::Ident && hash_bound.contains(&t.text))
                {
                    // Only a bare binding (next token opens the loop body);
                    // `name.keys()` etc. is the method arm's job.
                    if toks.get(j + 1).is_some_and(|t| t.is_punct("{")) {
                        out.push(finding(
                            file,
                            NONDETERMINISM,
                            tok.line,
                            format!(
                                "`for .. in {}` iterates a hash container in randomized \
                                 order; iterate a sorted view instead",
                                name.text
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Token spans of `if`/`while`/`match` condition heads: from the keyword to
/// the `{` opening the body (nesting-aware, so closure braces inside call
/// arguments do not end the span early).
fn condition_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("if") || tok.is_ident("while") || tok.is_ident("match")) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "{" => {
                        if depth <= 0 {
                            spans.push((i + 1, j));
                            break;
                        }
                        depth += 1;
                    }
                    ";" if depth <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
    }
    spans
}

/// Names *declared* as hash containers in this file: `let [mut] name =
/// HashMap::..` bindings and `name: [Wrapper<..>]Hash{Map,Set}<..>` type
/// ascriptions (fields, statics, params).
fn hash_container_names(toks: &[Token]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        // Ascription: walk outward through path segments and wrapper
        // generics to a `name :` introducer.
        let mut j = i;
        let mut ascribed = false;
        loop {
            while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            let Some(k) = j.checked_sub(1) else { break };
            if toks[k].is_punct(":") {
                if let Some(name) = k
                    .checked_sub(1)
                    .and_then(|n| toks.get(n))
                    .filter(|t| t.kind == TokKind::Ident)
                {
                    names.insert(name.text.clone());
                    ascribed = true;
                }
                break;
            } else if toks[k].is_punct("<")
                && k >= 1
                && toks.get(k - 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                j = k - 1;
            } else {
                break;
            }
        }
        if ascribed {
            continue;
        }
        // Inferred binding: `let [mut] name = HashMap::new()` — scan back to
        // the `let` within this statement.
        for k in (0..i).rev() {
            let t = &toks[k];
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                break;
            }
            if t.is_ident("let") {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if let Some(name) = toks.get(n).filter(|t| t.kind == TokKind::Ident) {
                    names.insert(name.text.clone());
                }
                break;
            }
        }
    }
    names
}

/// `true` when the token before `i` is punctuation `p`.
fn prev_is(toks: &[Token], i: usize, p: &str) -> bool {
    i > 0 && toks.get(i - 1).is_some_and(|t| t.is_punct(p))
}

/// `true` when the token after `i` is punctuation `p`.
fn next_is(toks: &[Token], i: usize, p: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(p))
}

/// Finds the next token with punct text `p` at or after `from`.
fn find_punct_from(toks: &[Token], from: usize, p: &str) -> Option<usize> {
    (from..toks.len()).find(|&k| toks.get(k).is_some_and(|t| t.is_punct(p)))
}

/// Index one past the bracket matching the opener at `open`.
fn matching_close(toks: &[Token], open: usize) -> Option<usize> {
    let (inc, dec) = match toks.get(open)?.text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == inc {
                depth += 1;
            } else if t.text == dec {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Keywords that can precede `[` without forming an indexing expression.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::WorkspaceCtx;

    fn lint_lib(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/graph/src/x.rs", src);
        let mut out = Vec::new();
        run_all(&f, &WorkspaceCtx::default(), &mut out);
        out
    }

    #[test]
    fn unwrap_fires_unwrap_or_does_not() {
        let hits = lint_lib("fn f() { a.unwrap(); b.unwrap_or(0); c.unwrap_or_else(|| 1); }");
        assert_eq!(
            hits.iter().filter(|h| h.rule == NO_PANIC).count(),
            1,
            "{hits:?}"
        );
    }

    #[test]
    fn panic_macros_fire() {
        let hits = lint_lib("fn f() { panic!(\"boom\"); todo!(); }");
        assert_eq!(hits.iter().filter(|h| h.rule == NO_PANIC).count(), 2);
    }

    #[test]
    fn literal_indexing_fires_variable_indexing_does_not() {
        let hits = lint_lib("fn f(xs: &[u8], i: usize) { let a = xs[0]; let b = xs[i]; }");
        assert_eq!(hits.iter().filter(|h| h.rule == NO_PANIC).count(), 1);
    }

    #[test]
    fn array_type_and_literals_do_not_fire() {
        let hits =
            lint_lib("fn f() { let a: [u8; 4] = [0; 4]; let b = [1, 2]; let c = vec![0.0; 3]; }");
        // `vec![0.0; 3]` has `!` + `[` but prev token is `!`, not a value.
        assert!(hits.iter().all(|h| h.rule != NO_PANIC), "{hits:?}");
    }

    #[test]
    fn float_equality_fires() {
        let hits = lint_lib("fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(
            hits.iter().filter(|h| h.rule == FLOAT_DISCIPLINE).count(),
            1
        );
    }

    #[test]
    fn integer_equality_does_not_fire() {
        let hits = lint_lib("fn f(x: usize) -> bool { x == 0 }");
        assert!(hits.iter().all(|h| h.rule != FLOAT_DISCIPLINE));
    }

    #[test]
    fn nan_literal_fires() {
        let hits = lint_lib("fn f() -> f64 { f64::NAN }");
        assert_eq!(
            hits.iter().filter(|h| h.rule == FLOAT_DISCIPLINE).count(),
            1
        );
    }

    #[test]
    fn ungated_rayon_fires() {
        let hits = lint_lib("pub fn go() { rayon::scope(|| {}); }");
        assert_eq!(hits.iter().filter(|h| h.rule == FEATURE_HYGIENE).count(), 1);
    }

    #[test]
    fn gated_rayon_with_fallback_is_clean() {
        let src = "pub fn go() {\n    #[cfg(feature = \"parallel\")]\n    {\n        rayon::scope(|| {});\n    }\n    #[cfg(not(feature = \"parallel\"))]\n    {\n        serial();\n    }\n}\n";
        let hits = lint_lib(src);
        assert!(hits.iter().all(|h| h.rule != FEATURE_HYGIENE), "{hits:?}");
    }

    #[test]
    fn gated_rayon_without_fallback_fires() {
        let src = "pub fn go() {\n    #[cfg(feature = \"parallel\")]\n    {\n        rayon::scope(|| {});\n    }\n}\n";
        let hits = lint_lib(src);
        assert_eq!(hits.iter().filter(|h| h.rule == FEATURE_HYGIENE).count(), 1);
        assert!(hits[0].message.contains("serial fallback"));
    }

    #[test]
    fn hashmap_fires_in_result_affecting_crate_only() {
        let in_graph = lint_lib("use std::collections::HashMap;\n");
        assert_eq!(in_graph.iter().filter(|h| h.rule == DETERMINISM).count(), 1);
        let f = SourceFile::from_source(
            "crates/circuit/src/parser.rs",
            "use std::collections::HashMap;\n",
        );
        let mut out = Vec::new();
        run_all(&f, &WorkspaceCtx::default(), &mut out);
        assert!(out.iter().all(|h| h.rule != DETERMINISM));
    }

    #[test]
    fn ambient_entropy_fires() {
        let hits = lint_lib("fn f() { let t = SystemTime::now(); }");
        assert_eq!(hits.iter().filter(|h| h.rule == DETERMINISM).count(), 1);
    }

    #[test]
    fn unit_pub_fn_with_assert_fires() {
        let hits = lint_lib("pub fn set(&mut self, i: usize) { assert!(i < self.n); }");
        assert_eq!(hits.iter().filter(|h| h.rule == ERROR_HYGIENE).count(), 1);
    }

    #[test]
    fn result_pub_fn_with_assert_is_exempt() {
        let hits = lint_lib(
            "pub fn set(&mut self, i: usize) -> Result<(), E> { assert!(i < self.n); Ok(()) }",
        );
        assert!(hits.iter().all(|h| h.rule != ERROR_HYGIENE));
    }

    #[test]
    fn debug_assert_is_exempt() {
        let hits = lint_lib("pub fn set(&mut self, i: usize) { debug_assert!(i < self.n); }");
        assert!(hits.iter().all(|h| h.rule != ERROR_HYGIENE));
    }

    #[test]
    fn private_fn_with_assert_is_exempt() {
        let hits =
            lint_lib("fn set(i: usize) { assert!(i < 4); }\npub(crate) fn g() { assert!(true); }");
        assert!(hits.iter().all(|h| h.rule != ERROR_HYGIENE));
    }

    #[test]
    fn truncating_casts_fire_but_as_f64_does_not() {
        let hits = lint_lib(
            "fn f(x: usize, y: f64) -> u32 { let a = x as u64; let b = y as f64; let c = y as f32; x as u32 }",
        );
        assert_eq!(
            hits.iter().filter(|h| h.rule == CAST_TRUNCATION).count(),
            3,
            "{hits:?}"
        );
    }

    #[test]
    fn cast_rule_skips_non_result_affecting_crates_and_tests() {
        let f = SourceFile::from_source(
            "crates/circuit/src/x.rs",
            "fn f(x: usize) -> u32 { x as u32 }",
        );
        let mut out = Vec::new();
        run_all(&f, &WorkspaceCtx::default(), &mut out);
        assert!(out.iter().all(|h| h.rule != CAST_TRUNCATION), "{out:?}");

        let hits = lint_lib(
            "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: usize) -> u32 { x as u32 }\n}\n",
        );
        assert!(hits.iter().all(|h| h.rule != CAST_TRUNCATION), "{hits:?}");
    }

    #[test]
    fn use_alias_and_trait_casts_do_not_fire() {
        let hits = lint_lib(
            "use std::collections::BTreeMap as Map;\nfn f(x: &dyn std::fmt::Debug) { let _ = x as &dyn std::fmt::Debug; }",
        );
        assert!(hits.iter().all(|h| h.rule != CAST_TRUNCATION), "{hits:?}");
    }

    #[test]
    fn undocumented_pub_items_fire() {
        let hits = lint_lib("pub fn f() {}\npub struct S;\npub const N: usize = 4;\n");
        assert_eq!(
            hits.iter().filter(|h| h.rule == PUB_DOC).count(),
            3,
            "{hits:?}"
        );
    }

    #[test]
    fn documented_restricted_and_reexported_items_are_clean() {
        let src = "/// Docs.\npub fn f() {}\n\n/// A struct.\n#[derive(Debug)]\npub struct S {\n    /// A field.\n    pub x: usize,\n}\n\npub(crate) fn g() {}\npub use std::mem::swap;\n";
        let hits = lint_lib(src);
        assert!(hits.iter().all(|h| h.rule != PUB_DOC), "{hits:?}");
    }

    #[test]
    fn undocumented_pub_field_and_const_fn_fire() {
        let src = "/// A struct.\npub struct S {\n    pub x: usize,\n}\n/// Docs.\npub const fn f() -> usize { 1 }\npub const fn g() -> usize { 2 }\n";
        let hits = lint_lib(src);
        // The bare field and the undocumented `g`; the documented `const fn`
        // reads as a fn, not a const item.
        assert_eq!(
            hits.iter().filter(|h| h.rule == PUB_DOC).count(),
            2,
            "{hits:?}"
        );
    }

    #[test]
    fn pub_doc_skips_non_result_affecting_crates() {
        let f = SourceFile::from_source("crates/circuit/src/x.rs", "pub fn f() {}\n");
        let mut out = Vec::new();
        run_all(&f, &WorkspaceCtx::default(), &mut out);
        assert!(out.iter().all(|h| h.rule != PUB_DOC), "{out:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_everything() {
        let src = "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(); let y = v[0]; let b = z == 0.0; }\n}\n";
        let hits = lint_lib(src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn bin_files_exempt_from_lib_rules() {
        let f =
            SourceFile::from_source("crates/graph/src/bin/tool.rs", "fn main() { x.unwrap(); }");
        let mut out = Vec::new();
        run_all(&f, &WorkspaceCtx::default(), &mut out);
        assert!(out.is_empty());
    }
}
