//! `cirstag-lint` — workspace-aware static analysis for the CirSTAG repo.
//!
//! The repo's correctness story leans on invariants ordinary `clippy`
//! cannot see: library crates must stay panic-free so the fallback ladders
//! (PR 2) can catch every failure as a typed error; numeric crates must be
//! bit-deterministic so η-score rankings reproduce (PR 1); `rayon` and
//! failpoints must stay behind their cargo features so the
//! `--no-default-features` build is genuinely serial. This crate enforces
//! those rules with a self-contained lexical analyzer — no `syn`, no network,
//! no external deps beyond the vendored `serde` stand-ins.
//!
//! Pipeline: [`source::workspace_sources`] walks `src/` + `crates/*/src/`,
//! [`lexer::lex`] tokenizes each file (total: malformed input never panics),
//! [`scope::ScopeTree`] resolves the brace structure the dataflow-aware
//! rules walk, [`rules::run_all`] emits raw per-file findings, the
//! workspace-global [`locks`] pass folds every file's lock-acquisition
//! edges into one graph and reports cyclic orders, and [`waiver::WaiverSet`]
//! marks hits covered by an inline `// cirstag-lint: allow(<rule>) --
//! <reason>` annotation. Waivers without a reason are themselves findings
//! (`waiver-syntax`) and can never be waived; so are valid waivers that
//! suppress nothing (stale waivers rot into camouflage).
//!
//! Run it as `cargo run -p cirstag-lint` (human output + `LINT_REPORT.json`)
//! or embed via [`run_lint`].

pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;
pub mod scope;
pub mod source;
pub mod waiver;
pub mod workspace;

use report::{Finding, LintReport};
use source::SourceFile;
use std::fmt;
use std::path::Path;
use waiver::WaiverSet;
use workspace::WorkspaceCtx;

/// Failure while reading the workspace (I/O only — lint findings are data,
/// not errors).
#[derive(Debug)]
pub struct LintError {
    /// Path that failed.
    pub path: String,
    /// Underlying I/O message.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cirstag-lint: {}: {}", self.path, self.message)
    }
}

impl std::error::Error for LintError {}

/// Lints every workspace source under `root` and returns the full report.
///
/// # Errors
///
/// Fails only on I/O problems (unreadable workspace); rule hits are returned
/// inside the report, not as errors.
pub fn run_lint(root: &Path) -> Result<LintReport, LintError> {
    if !root.is_dir() {
        return Err(LintError {
            path: root.display().to_string(),
            message: "not a directory".to_string(),
        });
    }
    let ctx = WorkspaceCtx::discover(root);
    let paths = source::workspace_sources(root).map_err(|e| LintError {
        path: root.display().to_string(),
        message: e.to_string(),
    })?;
    // An empty walk means the root is not a workspace (e.g. a typo'd
    // `--root`) — a silent "0 files, clean" would defeat the CI gate.
    if paths.is_empty() {
        return Err(LintError {
            path: root.display().to_string(),
            message: "no Rust sources found under src/ or crates/*/src/".to_string(),
        });
    }
    // Pass 1: load and lex every file — the lock-order pass needs the
    // workspace-wide set of declared lock names before any edges resolve.
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push(SourceFile::load(root, path).map_err(|e| LintError {
            path: path.display().to_string(),
            message: e.to_string(),
        })?);
    }
    let mut lock_names = std::collections::BTreeSet::new();
    for file in &files {
        lock_names.extend(locks::declared_lock_names(file));
    }
    // Pass 2: per-file rules plus each file's lock-acquisition edges.
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    for file in &files {
        rules::run_all(file, &ctx, &mut findings);
        edges.extend(locks::file_edges(file, &lock_names));
    }
    // Global lock graph: cyclic acquisition orders become findings at their
    // acquisition sites.
    findings.extend(locks::analyze(&edges));
    // Pass 3: waivers apply per file, over per-file *and* global findings.
    for file in &files {
        apply_waivers(file, &mut findings);
    }
    Ok(LintReport::new(files.len(), findings))
}

/// Lints one already-loaded file in isolation: every per-file rule, the
/// lock-order analysis restricted to this file's declarations, then
/// waivers. The workspace driver [`run_lint`] uses the same pieces but
/// resolves lock edges globally.
pub fn lint_file(file: &SourceFile, ctx: &WorkspaceCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    rules::run_all(file, ctx, &mut findings);
    let lock_names = locks::declared_lock_names(file);
    findings.extend(locks::analyze(&locks::file_edges(file, &lock_names)));
    apply_waivers(file, &mut findings);
    findings
}

/// Marks `file`'s findings covered by its waivers, and appends the
/// `waiver-syntax` findings for malformed and stale (unused) annotations.
fn apply_waivers(file: &SourceFile, findings: &mut Vec<Finding>) {
    let waivers = WaiverSet::collect(file);
    for f in findings.iter_mut() {
        if f.file != file.rel_path {
            continue;
        }
        if let Some(w) = waivers.lookup(&f.rule, f.line) {
            f.waived = true;
            f.waiver_reason = Some(w.reason.clone());
        }
    }
    // Malformed waivers are findings in their own right — and deliberately
    // not waivable, so `allow()` without a reason can't hide itself.
    for err in &waivers.errors {
        findings.push(Finding {
            rule: rules::WAIVER_SYNTAX.to_string(),
            file: file.rel_path.clone(),
            line: err.line,
            message: err.message.clone(),
            snippet: file.snippet(err.line),
            waived: false,
            waiver_reason: None,
        });
    }
    // So are valid waivers that suppress nothing: a stale waiver is
    // camouflage for the next real finding on that line.
    for (applies_to, w) in waivers.entries() {
        let used = findings.iter().any(|f| {
            f.file == file.rel_path && f.line == applies_to && f.waived && w.rules.contains(&f.rule)
        });
        if !used {
            findings.push(Finding {
                rule: rules::WAIVER_SYNTAX.to_string(),
                file: file.rel_path.clone(),
                line: w.line,
                message: format!(
                    "stale waiver: no active `{}` finding on the line it applies to \
                     (line {applies_to}); delete the annotation",
                    w.rules.join(", ")
                ),
                snippet: file.snippet(w.line),
                waived: false,
                waiver_reason: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(rel_path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(rel_path, src);
        lint_file(&file, &WorkspaceCtx::default())
    }

    #[test]
    fn waived_finding_is_marked_not_dropped() {
        let src = "fn f() {\n    x.unwrap(); // cirstag-lint: allow(no-panic-in-lib) -- test scaffolding\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].waived);
        assert_eq!(hits[0].waiver_reason.as_deref(), Some("test scaffolding"));
    }

    #[test]
    fn reasonless_waiver_leaves_finding_active_and_adds_syntax_finding() {
        let src = "fn f() {\n    x.unwrap(); // cirstag-lint: allow(no-panic-in-lib)\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        let active: Vec<_> = hits.iter().filter(|h| !h.waived).collect();
        assert_eq!(active.len(), 2, "{hits:?}");
        assert!(active.iter().any(|h| h.rule == rules::NO_PANIC));
        assert!(active.iter().any(|h| h.rule == rules::WAIVER_SYNTAX));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress_and_reads_as_stale() {
        let src =
            "fn f() {\n    x.unwrap(); // cirstag-lint: allow(determinism) -- wrong rule\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|h| h.rule == rules::NO_PANIC && !h.waived));
        // The waiver matched nothing, so it is reported as stale rather
        // than silently ignored.
        assert!(hits
            .iter()
            .any(|h| h.rule == rules::WAIVER_SYNTAX && h.message.contains("stale")));
    }

    #[test]
    fn stale_waiver_on_clean_line_is_reported() {
        let src = "fn f() {\n    // cirstag-lint: allow(no-panic-in-lib) -- nothing here\n    let x = 1;\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, rules::WAIVER_SYNTAX);
        assert!(hits[0].message.contains("stale"));
        assert_eq!(hits[0].line, 2, "reported at the annotation line");
    }

    #[test]
    fn waiver_on_last_line_with_no_following_code_is_stale() {
        let src =
            "fn f() {\n    let x = 1;\n}\n// cirstag-lint: allow(no-panic-in-lib) -- dangling\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, rules::WAIVER_SYNTAX);
        assert!(hits[0].message.contains("stale"));
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn unknown_rule_waiver_is_an_active_syntax_finding() {
        let src = "fn f() {\n    x.unwrap(); // cirstag-lint: allow(no-panics) -- typo\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        // The typo'd waiver suppresses nothing (the real finding stays
        // active) and is itself reported as invalid.
        assert!(hits.iter().any(|h| h.rule == rules::NO_PANIC && !h.waived));
        assert!(hits.iter().any(|h| h.rule == rules::WAIVER_SYNTAX
            && !h.waived
            && h.message.contains("unknown rule")));
    }

    #[test]
    fn unsafe_block_without_safety_comment_fires() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let hits = lint_src("crates/linalg/src/x.rs", src);
        assert!(
            hits.iter()
                .any(|h| h.rule == rules::UNSAFE_SAFETY && !h.waived),
            "{hits:?}"
        );
    }

    #[test]
    fn lock_cycle_within_one_file_is_found_and_waivable() {
        let src = "struct S { a: Mutex<()>, b: Mutex<()> }\nimpl S {\n    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n    fn ba(&self) {\n        let gb = self.b.lock();\n        let ga = self.a.lock(); // cirstag-lint: allow(lock-order) -- test waiver\n    }\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        let lock_hits: Vec<_> = hits
            .iter()
            .filter(|h| h.rule == rules::LOCK_ORDER)
            .collect();
        assert_eq!(lock_hits.len(), 2, "{hits:?}");
        assert!(lock_hits.iter().any(|h| h.waived));
        assert!(lock_hits.iter().any(|h| !h.waived));
    }
}
