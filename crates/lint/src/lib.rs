//! `cirstag-lint` — workspace-aware static analysis for the CirSTAG repo.
//!
//! The repo's correctness story leans on invariants ordinary `clippy`
//! cannot see: library crates must stay panic-free so the fallback ladders
//! (PR 2) can catch every failure as a typed error; numeric crates must be
//! bit-deterministic so η-score rankings reproduce (PR 1); `rayon` and
//! failpoints must stay behind their cargo features so the
//! `--no-default-features` build is genuinely serial. This crate enforces
//! those rules with a self-contained lexical analyzer — no `syn`, no network,
//! no external deps beyond the vendored `serde` stand-ins.
//!
//! Pipeline: [`source::workspace_sources`] walks `src/` + `crates/*/src/`,
//! [`lexer::lex`] tokenizes each file (total: malformed input never panics),
//! [`rules::run_all`] emits raw findings, and [`waiver::WaiverSet`] marks
//! hits covered by an inline `// cirstag-lint: allow(<rule>) -- <reason>`
//! annotation. Waivers without a reason are themselves findings
//! (`waiver-syntax`) and can never be waived.
//!
//! Run it as `cargo run -p cirstag-lint` (human output + `LINT_REPORT.json`)
//! or embed via [`run_lint`].

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod waiver;
pub mod workspace;

use report::{Finding, LintReport};
use source::SourceFile;
use std::fmt;
use std::path::Path;
use waiver::WaiverSet;
use workspace::WorkspaceCtx;

/// Failure while reading the workspace (I/O only — lint findings are data,
/// not errors).
#[derive(Debug)]
pub struct LintError {
    /// Path that failed.
    pub path: String,
    /// Underlying I/O message.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cirstag-lint: {}: {}", self.path, self.message)
    }
}

impl std::error::Error for LintError {}

/// Lints every workspace source under `root` and returns the full report.
///
/// # Errors
///
/// Fails only on I/O problems (unreadable workspace); rule hits are returned
/// inside the report, not as errors.
pub fn run_lint(root: &Path) -> Result<LintReport, LintError> {
    if !root.is_dir() {
        return Err(LintError {
            path: root.display().to_string(),
            message: "not a directory".to_string(),
        });
    }
    let ctx = WorkspaceCtx::discover(root);
    let paths = source::workspace_sources(root).map_err(|e| LintError {
        path: root.display().to_string(),
        message: e.to_string(),
    })?;
    // An empty walk means the root is not a workspace (e.g. a typo'd
    // `--root`) — a silent "0 files, clean" would defeat the CI gate.
    if paths.is_empty() {
        return Err(LintError {
            path: root.display().to_string(),
            message: "no Rust sources found under src/ or crates/*/src/".to_string(),
        });
    }
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &paths {
        let file = SourceFile::load(root, path).map_err(|e| LintError {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        scanned += 1;
        findings.extend(lint_file(&file, &ctx));
    }
    Ok(LintReport::new(scanned, findings))
}

/// Lints one already-loaded file: runs every rule, then applies waivers.
pub fn lint_file(file: &SourceFile, ctx: &WorkspaceCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    rules::run_all(file, ctx, &mut findings);
    let waivers = WaiverSet::collect(file);
    for f in &mut findings {
        if let Some(w) = waivers.lookup(&f.rule, f.line) {
            f.waived = true;
            f.waiver_reason = Some(w.reason.clone());
        }
    }
    // Malformed waivers are findings in their own right — and deliberately
    // not waivable, so `allow()` without a reason can't hide itself.
    for err in &waivers.errors {
        findings.push(Finding {
            rule: rules::WAIVER_SYNTAX.to_string(),
            file: file.rel_path.clone(),
            line: err.line,
            message: err.message.clone(),
            snippet: file.snippet(err.line),
            waived: false,
            waiver_reason: None,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(rel_path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(rel_path, src);
        lint_file(&file, &WorkspaceCtx::default())
    }

    #[test]
    fn waived_finding_is_marked_not_dropped() {
        let src = "fn f() {\n    x.unwrap(); // cirstag-lint: allow(no-panic-in-lib) -- test scaffolding\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].waived);
        assert_eq!(hits[0].waiver_reason.as_deref(), Some("test scaffolding"));
    }

    #[test]
    fn reasonless_waiver_leaves_finding_active_and_adds_syntax_finding() {
        let src = "fn f() {\n    x.unwrap(); // cirstag-lint: allow(no-panic-in-lib)\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        let active: Vec<_> = hits.iter().filter(|h| !h.waived).collect();
        assert_eq!(active.len(), 2, "{hits:?}");
        assert!(active.iter().any(|h| h.rule == rules::NO_PANIC));
        assert!(active.iter().any(|h| h.rule == rules::WAIVER_SYNTAX));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src =
            "fn f() {\n    x.unwrap(); // cirstag-lint: allow(determinism) -- wrong rule\n}\n";
        let hits = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(!hits[0].waived);
    }
}
