//! Gate-level netlists.

use crate::{CellId, CellLibrary, CircuitError};

/// Index of a net within a [`Netlist`].
pub type NetId = usize;

/// An instantiated library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInstance {
    /// Library cell.
    pub cell: CellId,
    /// Instance name (unique within the netlist).
    pub name: String,
    /// Input nets, one per cell input pin.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A net: one driver (a cell output or a primary input) and its estimated
/// pre-routing wire capacitance.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Estimated wire capacitance (pF), from a wireload model.
    pub wire_cap: f64,
}

/// A gate-level netlist over a [`CellLibrary`].
///
/// Invariants enforced by [`Netlist::validate`]:
/// - every cell's input count matches its library arity;
/// - every net has exactly one driver (a cell output or a primary input);
/// - the combinational graph is acyclic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// All nets.
    pub nets: Vec<Net>,
    /// All cell instances.
    pub cells: Vec<CellInstance>,
    /// Nets driven by primary inputs.
    pub primary_inputs: Vec<NetId>,
    /// Nets observed by primary outputs.
    pub primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>, wire_cap: f64) -> NetId {
        let id = self.nets.len();
        self.nets.push(Net {
            name: name.into(),
            wire_cap,
        });
        id
    }

    /// Adds a cell instance.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NetOutOfBounds`] for invalid net references.
    /// (Arity against the library is checked by [`Netlist::validate`].)
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        cell: CellId,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> Result<usize, CircuitError> {
        for &n in inputs.iter().chain(std::iter::once(&output)) {
            if n >= self.nets.len() {
                return Err(CircuitError::NetOutOfBounds {
                    net: n,
                    num_nets: self.nets.len(),
                });
            }
        }
        let id = self.cells.len();
        self.cells.push(CellInstance {
            cell,
            name: name.into(),
            inputs,
            output,
        });
        Ok(id)
    }

    /// Number of gates.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// For each net, the indices of cells that read it, plus whether it feeds
    /// a primary output.
    pub fn net_sinks(&self) -> Vec<Vec<usize>> {
        let mut sinks = vec![Vec::new(); self.nets.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            for &n in &cell.inputs {
                sinks[n].push(ci);
            }
        }
        sinks
    }

    /// For each net, the index of the cell driving it (`None` when driven by
    /// a primary input).
    pub fn net_drivers(&self) -> Vec<Option<usize>> {
        let mut drivers = vec![None; self.nets.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            drivers[cell.output] = Some(ci);
        }
        drivers
    }

    /// Checks all structural invariants against `library`.
    ///
    /// # Errors
    ///
    /// - [`CircuitError::UnknownCell`] for out-of-library cell ids.
    /// - [`CircuitError::ArityMismatch`] for wrong input counts.
    /// - [`CircuitError::BadDriver`] for multiply- or un-driven nets.
    /// - [`CircuitError::CombinationalCycle`] when the gate graph is cyclic.
    pub fn validate(&self, library: &CellLibrary) -> Result<(), CircuitError> {
        // Arity and cell ids.
        for inst in &self.cells {
            let cell = library.get(inst.cell)?;
            if cell.arity() != inst.inputs.len() {
                return Err(CircuitError::ArityMismatch {
                    cell: inst.name.clone(),
                    expected: cell.arity(),
                    actual: inst.inputs.len(),
                });
            }
        }
        // Single driver per net.
        let mut drive_count = vec![0usize; self.nets.len()];
        for cell in &self.cells {
            drive_count[cell.output] += 1;
        }
        for &pi in &self.primary_inputs {
            if pi >= self.nets.len() {
                return Err(CircuitError::NetOutOfBounds {
                    net: pi,
                    num_nets: self.nets.len(),
                });
            }
            drive_count[pi] += 1;
        }
        for (net, &c) in drive_count.iter().enumerate() {
            if c != 1 {
                return Err(CircuitError::BadDriver { net, drivers: c });
            }
        }
        for &po in &self.primary_outputs {
            if po >= self.nets.len() {
                return Err(CircuitError::NetOutOfBounds {
                    net: po,
                    num_nets: self.nets.len(),
                });
            }
        }
        // Acyclicity via Kahn's algorithm on the cell graph.
        self.topological_order()?;
        Ok(())
    }

    /// Topological order of cell indices (inputs before outputs).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalCycle`] when the graph is cyclic.
    pub fn topological_order(&self) -> Result<Vec<usize>, CircuitError> {
        let drivers = self.net_drivers();
        let mut indegree = vec![0usize; self.cells.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.cells.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            for &n in &cell.inputs {
                if let Some(d) = drivers.get(n).copied().flatten() {
                    indegree[ci] += 1;
                    dependents[d].push(ci);
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.cells.len())
            .filter(|&c| indegree[c] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.cells.len());
        while let Some(c) = queue.pop() {
            order.push(c);
            for &d in &dependents[c] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != self.cells.len() {
            return Err(CircuitError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Logic depth of each cell (longest gate path from any primary input).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalCycle`] when the graph is cyclic.
    pub fn logic_depths(&self) -> Result<Vec<usize>, CircuitError> {
        let order = self.topological_order()?;
        let drivers = self.net_drivers();
        let mut depth = vec![0usize; self.cells.len()];
        for &ci in &order {
            let d = self.cells[ci]
                .inputs
                .iter()
                .filter_map(|&n| drivers[n].map(|dc| depth[dc] + 1))
                .max()
                .unwrap_or(0);
            depth[ci] = d;
        }
        Ok(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    /// y = NAND(a, b) through an inverter chain.
    fn small() -> (CellLibrary, Netlist) {
        let lib = CellLibrary::standard();
        let nand = lib.by_kind(CellKind::Nand2).unwrap();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let mut n = Netlist::new("small");
        let a = n.add_net("a", 0.001);
        let b = n.add_net("b", 0.001);
        let t = n.add_net("t", 0.001);
        let y = n.add_net("y", 0.001);
        n.primary_inputs = vec![a, b];
        n.primary_outputs = vec![y];
        n.add_cell("g0", nand, vec![a, b], t).unwrap();
        n.add_cell("g1", inv, vec![t], y).unwrap();
        (lib, n)
    }

    #[test]
    fn valid_netlist_passes() {
        let (lib, n) = small();
        n.validate(&lib).unwrap();
        assert_eq!(n.num_cells(), 2);
        assert_eq!(n.num_nets(), 4);
    }

    #[test]
    fn net_bookkeeping() {
        let (_, n) = small();
        let sinks = n.net_sinks();
        assert_eq!(sinks[0], vec![0]); // net a read by g0
        assert_eq!(sinks[2], vec![1]); // net t read by g1
        let drivers = n.net_drivers();
        assert_eq!(drivers[2], Some(0));
        assert_eq!(drivers[0], None); // primary input
    }

    #[test]
    fn arity_mismatch_detected() {
        let lib = CellLibrary::standard();
        let nand = lib.by_kind(CellKind::Nand2).unwrap();
        let mut n = Netlist::new("bad");
        let a = n.add_net("a", 0.0);
        let y = n.add_net("y", 0.0);
        n.primary_inputs = vec![a];
        n.add_cell("g0", nand, vec![a], y).unwrap(); // NAND2 with one input
        assert!(matches!(
            n.validate(&lib),
            Err(CircuitError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn multiple_drivers_detected() {
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let mut n = Netlist::new("bad");
        let a = n.add_net("a", 0.0);
        let y = n.add_net("y", 0.0);
        n.primary_inputs = vec![a];
        n.add_cell("g0", inv, vec![a], y).unwrap();
        n.add_cell("g1", inv, vec![a], y).unwrap(); // second driver on y
        assert!(matches!(
            n.validate(&lib),
            Err(CircuitError::BadDriver { .. })
        ));
    }

    #[test]
    fn undriven_net_detected() {
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let mut n = Netlist::new("bad");
        let a = n.add_net("a", 0.0); // never driven
        let y = n.add_net("y", 0.0);
        n.add_cell("g0", inv, vec![a], y).unwrap();
        assert!(matches!(
            n.validate(&lib),
            Err(CircuitError::BadDriver { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let mut n = Netlist::new("cyc");
        let a = n.add_net("a", 0.0);
        let b = n.add_net("b", 0.0);
        n.add_cell("g0", inv, vec![a], b).unwrap();
        n.add_cell("g1", inv, vec![b], a).unwrap();
        assert!(matches!(
            n.validate(&lib),
            Err(CircuitError::CombinationalCycle)
        ));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let (_, n) = small();
        let order = n.topological_order().unwrap();
        let pos0 = order.iter().position(|&c| c == 0).unwrap();
        let pos1 = order.iter().position(|&c| c == 1).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn logic_depths_increase_along_chain() {
        let (_, n) = small();
        let depths = n.logic_depths().unwrap();
        assert_eq!(depths, vec![0, 1]);
    }

    #[test]
    fn bad_net_reference_rejected_eagerly() {
        let mut n = Netlist::new("bad");
        let a = n.add_net("a", 0.0);
        assert!(n.add_cell("g0", 0, vec![a], 99).is_err());
    }
}
