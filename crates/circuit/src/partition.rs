//! Deterministic graph partitioning and typed netlist deltas for the
//! incremental (ECO) re-analysis flow.
//!
//! An ECO edit touches a bounded region of a large design, so the pipeline
//! should only recompute the partitions that region intersects. This module
//! supplies the two circuit-side ingredients:
//!
//! * [`partition_graph`] — a seeded multi-source lockstep-BFS partitioner.
//!   Region growth is fully deterministic (seed nodes are a hashed stride
//!   over the node range, claim conflicts resolve by partition id, frontiers
//!   are kept sorted), so the same `(graph, config)` pair always yields the
//!   same [`Partitioning`]. Partition ids are kept stable across
//!   node-count-preserving edits by *persisting* the base-design assignment
//!   and reusing it for every delta, never re-partitioning the edited graph.
//! * [`NetlistDelta`] / [`apply_delta`] — a typed edit script (add / remove /
//!   rescale edges, per-node feature drift) applied to a base graph, with a
//!   conservative report of which partitions the edit touches (every
//!   partition whose owned-plus-halo subgraph can see a touched node).
//!
//! The halo ring: partition `p` analyses the subgraph induced by its owned
//! nodes plus every node within `halo_depth` hops. An edit therefore dirties
//! partition `p` exactly when some touched node lies within `halo_depth`
//! hops of a node owned by `p`.

use crate::CircuitError;
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use serde::{DeError, Deserialize, Serialize, Value};

/// Smallest sensible owned-region size: the core pipeline needs at least 4
/// nodes per subgraph, and partitions below ~8 owned nodes produce manifolds
/// too small to carry any spectral signal.
pub const MIN_PARTITION_NODES: usize = 8;

/// Configuration for [`partition_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of regions to grow. Must satisfy
    /// `1 ≤ num_partitions ≤ num_nodes / MIN_PARTITION_NODES`.
    pub num_partitions: usize,
    /// Seed for the hashed seed-node placement.
    pub seed: u64,
    /// Halo ring depth in hops (`≥ 1`; ring 1 is required so every edge
    /// incident to an owned node lies inside the partition's subgraph).
    pub halo_depth: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_partitions: 8,
            seed: 0xEC0,
            halo_depth: 1,
        }
    }
}

impl PartitionConfig {
    /// Validates the partition count and halo depth against a node count.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidArgument`] when `num_partitions` is zero,
    /// absurd versus the node count (fewer than [`MIN_PARTITION_NODES`]
    /// nodes per partition), or `halo_depth` is zero.
    pub fn validate(&self, num_nodes: usize) -> Result<(), CircuitError> {
        if self.num_partitions == 0 {
            return Err(CircuitError::InvalidArgument {
                reason: "partitions must be at least 1".to_string(),
            });
        }
        if self.num_partitions.saturating_mul(MIN_PARTITION_NODES) > num_nodes {
            return Err(CircuitError::InvalidArgument {
                reason: format!(
                    "partitions = {} is absurd for {} nodes (need at least {} nodes per partition)",
                    self.num_partitions, num_nodes, MIN_PARTITION_NODES
                ),
            });
        }
        if self.halo_depth == 0 {
            return Err(CircuitError::InvalidArgument {
                reason: "halo depth must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// A deterministic assignment of every node to exactly one partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// Number of partitions (every id in `0..num_partitions` owns ≥ 1 node).
    pub num_partitions: usize,
    /// Halo ring depth the assignment was built for.
    pub halo_depth: usize,
    /// Seed the assignment was built with (recorded for provenance).
    pub seed: u64,
    /// `assignment[node]` is the owning partition id.
    pub assignment: Vec<u32>,
}

/// splitmix64: cheap, well-mixed hash for seed-node placement.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Grows `config.num_partitions` regions over `graph` by seeded multi-source
/// lockstep BFS.
///
/// Determinism contract: seed nodes are a fixed stride over `0..n` offset by
/// a hash of `config.seed`; each BFS round expands partitions in ascending
/// id order over sorted frontiers, so a node reachable from several regions
/// in the same round is claimed by the smallest partition id. Nodes in
/// components no seed reaches are assigned whole-component to the currently
/// smallest partition (ties to the smallest id), scanning components in
/// ascending node order.
///
/// # Errors
///
/// [`CircuitError::InvalidArgument`] on an invalid config (see
/// [`PartitionConfig::validate`]).
pub fn partition_graph(
    graph: &Graph,
    config: &PartitionConfig,
) -> Result<Partitioning, CircuitError> {
    let n = graph.num_nodes();
    config.validate(n)?;
    let p = config.num_partitions;

    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut counts = vec![0usize; p];

    // Seed placement: a stride of n/p keeps seeds spread over the node-id
    // range (generator ids correlate with topological placement), and the
    // hashed offset decorrelates placements across seeds. All p seeds are
    // distinct because i * stride < n for i < p.
    let stride = n / p;
    let offset = (splitmix64(config.seed) % n as u64) as usize;
    let mut frontiers: Vec<Vec<usize>> = Vec::with_capacity(p);
    for (pid, frontier_seed) in (0..p).map(|i| (i, (offset + i * stride) % n)) {
        assignment[frontier_seed] = pid as u32;
        counts[pid] += 1;
        frontiers.push(vec![frontier_seed]);
    }

    // Lockstep rounds: every partition advances one ring per round.
    loop {
        let mut any = false;
        for pid in 0..p {
            let frontier = std::mem::take(&mut frontiers[pid]);
            let mut next = Vec::new();
            for &u in &frontier {
                for (v, _w) in graph.neighbors(u) {
                    if assignment[v] == UNASSIGNED {
                        assignment[v] = pid as u32;
                        counts[pid] += 1;
                        next.push(v);
                    }
                }
            }
            next.sort_unstable();
            any = any || !next.is_empty();
            frontiers[pid] = next;
        }
        if !any {
            break;
        }
    }

    // Components unreached by every seed: assign each whole component to the
    // currently smallest partition, keeping sizes balanced deterministically.
    let mut stack = Vec::new();
    for start in 0..n {
        if assignment[start] != UNASSIGNED {
            continue;
        }
        let target = (0..p)
            .min_by_key(|&pid| (counts[pid], pid))
            .expect("num_partitions >= 1") as u32; // cirstag-lint: allow(no-panic-in-lib) -- validate() rejects num_partitions == 0, so the range is non-empty
        stack.push(start);
        assignment[start] = target;
        counts[target as usize] += 1;
        while let Some(u) = stack.pop() {
            for (v, _w) in graph.neighbors(u) {
                if assignment[v] == UNASSIGNED {
                    assignment[v] = target;
                    counts[target as usize] += 1;
                    stack.push(v);
                }
            }
        }
    }

    Ok(Partitioning {
        num_partitions: p,
        halo_depth: config.halo_depth,
        seed: config.seed,
        assignment,
    })
}

impl Partitioning {
    /// Nodes owned by partition `pid`, ascending.
    pub fn owned_nodes(&self, pid: u32) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == pid)
            .map(|(i, _)| i)
            .collect()
    }

    /// Halo ring of partition `pid` over `graph`: every node within
    /// `halo_depth` hops of an owned node that is not itself owned,
    /// ascending.
    pub fn halo_nodes(&self, graph: &Graph, pid: u32) -> Vec<usize> {
        let n = self.assignment.len();
        let mut depth = vec![usize::MAX; n];
        let mut frontier: Vec<usize> = self.owned_nodes(pid);
        for &u in &frontier {
            depth[u] = 0;
        }
        let mut halo = Vec::new();
        for ring in 1..=self.halo_depth {
            let mut next = Vec::new();
            for &u in &frontier {
                for (v, _w) in graph.neighbors(u) {
                    if depth[v] == usize::MAX {
                        depth[v] = ring;
                        next.push(v);
                        halo.push(v);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        halo.sort_unstable();
        halo
    }

    /// Partitions whose owned-plus-halo subgraph contains any node of
    /// `touched` (sorted, deduplicated partition ids). BFS runs over
    /// `graph`, which must still contain every edge the delta removes —
    /// callers pass the *base* adjacency (plus added edges) so invalidation
    /// is conservative in both directions.
    pub fn touched_partitions(&self, graph: &Graph, touched: &[usize]) -> Vec<usize> {
        let n = self.assignment.len();
        let mut depth = vec![usize::MAX; n];
        let mut frontier = Vec::new();
        let mut dirty = vec![false; self.num_partitions];
        for &t in touched {
            if t < n && depth[t] == usize::MAX {
                depth[t] = 0;
                dirty[self.assignment[t] as usize] = true;
                frontier.push(t);
            }
        }
        frontier.sort_unstable();
        for ring in 1..=self.halo_depth {
            let mut next = Vec::new();
            for &u in &frontier {
                for (v, _w) in graph.neighbors(u) {
                    if depth[v] == usize::MAX {
                        depth[v] = ring;
                        dirty[self.assignment[v] as usize] = true;
                        next.push(v);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        (0..self.num_partitions).filter(|&p| dirty[p]).collect()
    }
}

/// One primitive edit in a [`NetlistDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Connect `u`–`v` with `weight` (the edge must not already exist).
    AddEdge {
        /// One endpoint.
        u: usize,
        /// Other endpoint.
        v: usize,
        /// Positive, finite coupling weight.
        weight: f64,
    },
    /// Disconnect `u`–`v` (the edge must exist).
    RemoveEdge {
        /// One endpoint.
        u: usize,
        /// Other endpoint.
        v: usize,
    },
    /// Multiply the `u`–`v` weight by `factor` (the edge must exist).
    RescaleEdge {
        /// One endpoint.
        u: usize,
        /// Other endpoint.
        v: usize,
        /// Positive, finite scale factor.
        factor: f64,
    },
    /// Multiply every feature of `node` by `scale` (models drive-strength /
    /// capacitance drift on one pin).
    FeatureDrift {
        /// The drifting node.
        node: usize,
        /// Positive, finite scale factor.
        scale: f64,
    },
}

impl DeltaOp {
    fn kind(&self) -> &'static str {
        match self {
            DeltaOp::AddEdge { .. } => "add_edge",
            DeltaOp::RemoveEdge { .. } => "remove_edge",
            DeltaOp::RescaleEdge { .. } => "rescale_edge",
            DeltaOp::FeatureDrift { .. } => "feature_drift",
        }
    }

    /// Nodes this op touches, in declaration order.
    fn touched(&self) -> [Option<usize>; 2] {
        match *self {
            DeltaOp::AddEdge { u, v, .. }
            | DeltaOp::RemoveEdge { u, v }
            | DeltaOp::RescaleEdge { u, v, .. } => [Some(u), Some(v)],
            DeltaOp::FeatureDrift { node, .. } => [Some(node), None],
        }
    }
}

impl Serialize for DeltaOp {
    fn to_value(&self) -> Value {
        let mut fields = vec![("op".to_string(), Value::Str(self.kind().to_string()))];
        match *self {
            DeltaOp::AddEdge { u, v, weight } => {
                fields.push(("u".to_string(), u.to_value()));
                fields.push(("v".to_string(), v.to_value()));
                fields.push(("weight".to_string(), Value::Float(weight)));
            }
            DeltaOp::RemoveEdge { u, v } => {
                fields.push(("u".to_string(), u.to_value()));
                fields.push(("v".to_string(), v.to_value()));
            }
            DeltaOp::RescaleEdge { u, v, factor } => {
                fields.push(("u".to_string(), u.to_value()));
                fields.push(("v".to_string(), v.to_value()));
                fields.push(("factor".to_string(), Value::Float(factor)));
            }
            DeltaOp::FeatureDrift { node, scale } => {
                fields.push(("node".to_string(), node.to_value()));
                fields.push(("scale".to_string(), Value::Float(scale)));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for DeltaOp {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind: String = v.field("op")?;
        match kind.as_str() {
            "add_edge" => Ok(DeltaOp::AddEdge {
                u: v.field("u")?,
                v: v.field("v")?,
                weight: v.field("weight")?,
            }),
            "remove_edge" => Ok(DeltaOp::RemoveEdge {
                u: v.field("u")?,
                v: v.field("v")?,
            }),
            "rescale_edge" => Ok(DeltaOp::RescaleEdge {
                u: v.field("u")?,
                v: v.field("v")?,
                factor: v.field("factor")?,
            }),
            "feature_drift" => Ok(DeltaOp::FeatureDrift {
                node: v.field("node")?,
                scale: v.field("scale")?,
            }),
            other => Err(DeError::new(format!("unknown delta op {other:?}"))),
        }
    }
}

/// A typed, ordered edit script against a base design.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetlistDelta {
    /// Edits, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl Serialize for NetlistDelta {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str("cirstag-delta/v1".to_string()),
            ),
            ("ops".to_string(), self.ops.to_value()),
        ])
    }
}

impl Deserialize for NetlistDelta {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema: String = v.field_or("schema", "cirstag-delta/v1".to_string())?;
        if schema != "cirstag-delta/v1" {
            return Err(DeError::new(format!("unsupported delta schema {schema:?}")));
        }
        Ok(NetlistDelta {
            ops: v.field("ops")?,
        })
    }
}

impl NetlistDelta {
    /// Serializes to pretty JSON (`cirstag-delta/v1`).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidArgument`] when a float field is non-finite.
    pub fn to_json(&self) -> Result<String, CircuitError> {
        serde_json::to_string_pretty(self).map_err(|e| CircuitError::InvalidArgument {
            reason: format!("delta serialization failed: {e}"),
        })
    }

    /// Parses a `cirstag-delta/v1` JSON document.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidArgument`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CircuitError> {
        serde_json::from_str(text).map_err(|e| CircuitError::InvalidArgument {
            reason: format!("delta deserialization failed: {e}"),
        })
    }
}

/// Result of [`apply_delta`]: the edited design plus the invalidation set.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The edited graph (same node count as the base).
    pub graph: Graph,
    /// The edited feature matrix, when a base one was supplied.
    pub features: Option<DenseMatrix>,
    /// Nodes the edit touches directly, ascending and deduplicated.
    pub touched_nodes: Vec<usize>,
    /// Partitions whose owned-plus-halo subgraph sees a touched node,
    /// ascending. A conservative over-approximation: the per-partition
    /// fingerprints are the ground truth and silently dedupe any partition
    /// listed here whose subgraph did not actually change.
    pub touched_partitions: Vec<usize>,
}

fn check_endpoints(u: usize, v: usize, n: usize) -> Result<(usize, usize), CircuitError> {
    if u >= n || v >= n {
        return Err(CircuitError::InvalidArgument {
            reason: format!("delta edge ({u}, {v}) out of bounds for {n} nodes"),
        });
    }
    if u == v {
        return Err(CircuitError::InvalidArgument {
            reason: format!("delta edge ({u}, {v}) is a self-loop"),
        });
    }
    Ok((u.min(v), u.max(v)))
}

fn check_positive(value: f64, what: &str) -> Result<(), CircuitError> {
    if !(value.is_finite() && value > 0.0) {
        return Err(CircuitError::InvalidArgument {
            reason: format!("delta {what} must be positive and finite, got {value}"),
        });
    }
    Ok(())
}

/// Applies `delta` to `base` (and optionally `features`), reporting the
/// partitions the edit invalidates under `partitioning`'s halo rule.
///
/// Node count is preserved by construction — deltas edit couplings and
/// features, never the node set — which is what keeps the persisted
/// partition ids valid for the edited design.
///
/// # Errors
///
/// [`CircuitError::InvalidArgument`] on out-of-bounds nodes, self-loops,
/// adding an existing edge, removing/rescaling a missing edge, non-positive
/// or non-finite weights and factors, a feature drift without features, or a
/// delta that disconnects every edge of the design.
pub fn apply_delta(
    base: &Graph,
    features: Option<&DenseMatrix>,
    delta: &NetlistDelta,
    partitioning: &Partitioning,
) -> Result<DeltaOutcome, CircuitError> {
    let n = base.num_nodes();
    if partitioning.assignment.len() != n {
        return Err(CircuitError::InvalidArgument {
            reason: format!(
                "partitioning covers {} nodes but the graph has {n}",
                partitioning.assignment.len()
            ),
        });
    }

    let mut edges: std::collections::BTreeMap<(usize, usize), f64> = base
        .edges()
        .iter()
        .map(|e| ((e.u.min(e.v), e.u.max(e.v)), e.weight))
        .collect();
    let mut out_features = features.cloned();
    // Extra adjacency for added edges so touched-partition BFS sees them;
    // removed edges stay visible through the base adjacency.
    let mut added: Vec<(usize, usize)> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();

    for op in &delta.ops {
        match *op {
            DeltaOp::AddEdge { u, v, weight } => {
                let key = check_endpoints(u, v, n)?;
                check_positive(weight, "edge weight")?;
                if edges.contains_key(&key) {
                    return Err(CircuitError::InvalidArgument {
                        reason: format!("delta adds edge ({u}, {v}) which already exists"),
                    });
                }
                edges.insert(key, weight);
                added.push(key);
            }
            DeltaOp::RemoveEdge { u, v } => {
                let key = check_endpoints(u, v, n)?;
                if edges.remove(&key).is_none() {
                    return Err(CircuitError::InvalidArgument {
                        reason: format!("delta removes edge ({u}, {v}) which does not exist"),
                    });
                }
            }
            DeltaOp::RescaleEdge { u, v, factor } => {
                let key = check_endpoints(u, v, n)?;
                check_positive(factor, "rescale factor")?;
                match edges.get_mut(&key) {
                    Some(w) => *w *= factor,
                    None => {
                        return Err(CircuitError::InvalidArgument {
                            reason: format!("delta rescales edge ({u}, {v}) which does not exist"),
                        })
                    }
                }
            }
            DeltaOp::FeatureDrift { node, scale } => {
                if node >= n {
                    return Err(CircuitError::InvalidArgument {
                        reason: format!("delta drifts node {node}, out of bounds for {n} nodes"),
                    });
                }
                check_positive(scale, "feature drift scale")?;
                match out_features.as_mut() {
                    Some(f) => {
                        for x in f.row_mut(node) {
                            *x *= scale;
                        }
                    }
                    None => {
                        return Err(CircuitError::InvalidArgument {
                            reason: "delta drifts features but the design has none".to_string(),
                        })
                    }
                }
            }
        }
        for t in op.touched().into_iter().flatten() {
            touched.push(t);
        }
    }

    if edges.is_empty() {
        return Err(CircuitError::InvalidArgument {
            reason: "delta removes every edge of the design".to_string(),
        });
    }
    touched.sort_unstable();
    touched.dedup();

    let edge_list: Vec<(usize, usize, f64)> = edges.iter().map(|(&(u, v), &w)| (u, v, w)).collect();
    let graph = Graph::from_edges(n, &edge_list)?;

    // Invalidation BFS over base adjacency plus added edges.
    let union = if added.is_empty() {
        None
    } else {
        let mut u = base.clone();
        for &(a, b) in &added {
            // Parallel to an existing base edge is impossible (AddEdge
            // rejects existing keys), so add_edge only fails on the
            // endpoint/weight checks already performed above.
            u.add_edge(a, b, 1.0)?;
        }
        Some(u)
    };
    let touched_partitions =
        partitioning.touched_partitions(union.as_ref().unwrap_or(base), &touched);

    Ok(DeltaOutcome {
        graph,
        features: out_features,
        touched_nodes: touched,
        touched_partitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D grid graph: deterministic, locally connected — a decent stand-in
    /// for placed-netlist locality.
    fn grid(side: usize) -> Graph {
        let n = side * side;
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let u = r * side + c;
                if c + 1 < side {
                    edges.push((u, u + 1, 1.0));
                }
                if r + 1 < side {
                    edges.push((u, u + side, 1.0));
                }
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn config(p: usize) -> PartitionConfig {
        PartitionConfig {
            num_partitions: p,
            seed: 7,
            halo_depth: 1,
        }
    }

    #[test]
    fn partitioning_is_deterministic_and_total() {
        let g = grid(12);
        let a = partition_graph(&g, &config(6)).unwrap();
        let b = partition_graph(&g, &config(6)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.assignment.len(), g.num_nodes());
        for pid in 0..6 {
            assert!(
                !a.owned_nodes(pid as u32).is_empty(),
                "partition {pid} empty"
            );
        }
        let total: usize = (0..6).map(|p| a.owned_nodes(p as u32).len()).sum();
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn different_seeds_move_regions() {
        let g = grid(12);
        let a = partition_graph(&g, &config(6)).unwrap();
        let b = partition_graph(
            &g,
            &PartitionConfig {
                seed: 8,
                ..config(6)
            },
        )
        .unwrap();
        assert_ne!(a.assignment, b.assignment);
    }

    #[test]
    fn disconnected_components_are_assigned() {
        // Two disjoint rings; seeds may all land in one of them.
        let mut edges = Vec::new();
        for i in 0..40 {
            edges.push((i, (i + 1) % 40, 1.0));
        }
        for i in 0..40 {
            edges.push((40 + i, 40 + (i + 1) % 40, 1.0));
        }
        let g = Graph::from_edges(80, &edges).unwrap();
        let p = partition_graph(&g, &config(4)).unwrap();
        assert!(p.assignment.iter().all(|&a| (a as usize) < 4));
    }

    #[test]
    fn validation_rejects_absurd_counts() {
        let g = grid(6); // 36 nodes
        assert!(matches!(
            partition_graph(&g, &config(0)),
            Err(CircuitError::InvalidArgument { .. })
        ));
        // 36 / 8 = 4 partitions max.
        assert!(partition_graph(&g, &config(4)).is_ok());
        assert!(matches!(
            partition_graph(&g, &config(5)),
            Err(CircuitError::InvalidArgument { .. })
        ));
        assert!(matches!(
            PartitionConfig {
                halo_depth: 0,
                ..config(2)
            }
            .validate(36),
            Err(CircuitError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn halo_ring_is_adjacent_and_disjoint() {
        let g = grid(10);
        let p = partition_graph(&g, &config(4)).unwrap();
        for pid in 0..4u32 {
            let owned = p.owned_nodes(pid);
            let halo = p.halo_nodes(&g, pid);
            for &h in &halo {
                assert_ne!(p.assignment[h], pid, "halo node owned by its own partition");
                assert!(
                    g.neighbors(h).any(|(v, _)| p.assignment[v] == pid),
                    "depth-1 halo node {h} not adjacent to partition {pid}"
                );
            }
            for &o in &owned {
                assert!(halo.binary_search(&o).is_err());
            }
        }
    }

    #[test]
    fn apply_delta_edits_weights_and_reports_partitions() {
        let g = grid(10);
        let p = partition_graph(&g, &config(4)).unwrap();
        let feats = DenseMatrix::from_rows(
            &(0..g.num_nodes())
                .map(|i| vec![i as f64, 1.0])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let delta = NetlistDelta {
            ops: vec![
                DeltaOp::RescaleEdge {
                    u: 0,
                    v: 1,
                    factor: 2.5,
                },
                DeltaOp::RemoveEdge { u: 1, v: 2 },
                DeltaOp::AddEdge {
                    u: 0,
                    v: 99,
                    weight: 0.5,
                },
                DeltaOp::FeatureDrift {
                    node: 5,
                    scale: 3.0,
                },
            ],
        };
        let out = apply_delta(&g, Some(&feats), &delta, &p).unwrap();
        assert_eq!(out.graph.num_nodes(), g.num_nodes());
        assert_eq!(out.graph.edge_weight(0, 1), Some(2.5));
        assert_eq!(out.graph.edge_weight(1, 2), None);
        assert_eq!(out.graph.edge_weight(0, 99), Some(0.5));
        let f = out.features.unwrap();
        assert_eq!(f.get(5, 0), 15.0);
        assert_eq!(f.get(5, 1), 3.0);
        assert_eq!(out.touched_nodes, vec![0, 1, 2, 5, 99]);
        for &t in &out.touched_nodes {
            assert!(
                out.touched_partitions.contains(&(p.assignment[t] as usize)),
                "owner of touched node {t} not invalidated"
            );
        }
    }

    #[test]
    fn apply_delta_rejects_bad_ops() {
        let g = grid(6);
        let p = partition_graph(&g, &config(4)).unwrap();
        let bad = |ops| apply_delta(&g, None, &NetlistDelta { ops }, &p);
        assert!(bad(vec![DeltaOp::AddEdge {
            u: 0,
            v: 1,
            weight: 1.0
        }])
        .is_err());
        assert!(bad(vec![DeltaOp::AddEdge {
            u: 0,
            v: 0,
            weight: 1.0
        }])
        .is_err());
        assert!(bad(vec![DeltaOp::AddEdge {
            u: 0,
            v: 999,
            weight: 1.0
        }])
        .is_err());
        assert!(bad(vec![DeltaOp::AddEdge {
            u: 0,
            v: 7,
            weight: -1.0
        }])
        .is_err());
        assert!(bad(vec![DeltaOp::RemoveEdge { u: 0, v: 7 }]).is_err());
        assert!(bad(vec![DeltaOp::RescaleEdge {
            u: 0,
            v: 7,
            factor: 2.0
        }])
        .is_err());
        assert!(bad(vec![DeltaOp::RescaleEdge {
            u: 0,
            v: 1,
            factor: f64::NAN
        }])
        .is_err());
        assert!(bad(vec![DeltaOp::FeatureDrift {
            node: 3,
            scale: 2.0
        }])
        .is_err());
    }

    #[test]
    fn delta_json_roundtrip() {
        let delta = NetlistDelta {
            ops: vec![
                DeltaOp::AddEdge {
                    u: 3,
                    v: 9,
                    weight: 0.25,
                },
                DeltaOp::RemoveEdge { u: 1, v: 2 },
                DeltaOp::RescaleEdge {
                    u: 0,
                    v: 1,
                    factor: 1.75,
                },
                DeltaOp::FeatureDrift {
                    node: 4,
                    scale: 0.5,
                },
            ],
        };
        let json = delta.to_json().unwrap();
        let back = NetlistDelta::from_json(&json).unwrap();
        assert_eq!(back, delta);
        assert!(NetlistDelta::from_json("nope").is_err());
        assert!(NetlistDelta::from_json(r#"{"schema": "cirstag-delta/v9", "ops": []}"#).is_err());
    }
}
