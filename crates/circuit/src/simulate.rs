//! Boolean logic simulation of combinational netlists.
//!
//! Evaluates a validated netlist on explicit input assignments — the
//! functional ground truth used to verify that generated sub-circuits
//! (adders, comparators, …) actually compute their advertised functions,
//! and to compare designs before and after topology perturbations.

use crate::{CellLibrary, CircuitError, Netlist};
use std::collections::HashMap;

/// Evaluates `netlist` with the given primary-input assignment and returns
/// the value of every net.
///
/// # Errors
///
/// - [`CircuitError::InvalidArgument`] when `inputs.len()` differs from the
///   number of primary inputs.
/// - Propagates [`Netlist::topological_order`] / library-lookup failures.
pub fn simulate(
    netlist: &Netlist,
    library: &CellLibrary,
    inputs: &[bool],
) -> Result<Vec<bool>, CircuitError> {
    if inputs.len() != netlist.primary_inputs.len() {
        return Err(CircuitError::InvalidArgument {
            reason: format!(
                "{} input values supplied for {} primary inputs",
                inputs.len(),
                netlist.primary_inputs.len()
            ),
        });
    }
    let order = netlist.topological_order()?;
    let mut values = vec![false; netlist.num_nets()];
    for (&net, &v) in netlist.primary_inputs.iter().zip(inputs) {
        values[net] = v;
    }
    let mut in_buf = Vec::with_capacity(3);
    for &ci in &order {
        let cell = &netlist.cells[ci];
        let kind = library.get(cell.cell)?.kind;
        in_buf.clear();
        in_buf.extend(cell.inputs.iter().map(|&n| values[n]));
        values[cell.output] = kind.evaluate(&in_buf);
    }
    Ok(values)
}

/// Evaluates the netlist and returns only the primary-output values, in
/// `primary_outputs` order.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_outputs(
    netlist: &Netlist,
    library: &CellLibrary,
    inputs: &[bool],
) -> Result<Vec<bool>, CircuitError> {
    let values = simulate(netlist, library, inputs)?;
    Ok(netlist.primary_outputs.iter().map(|&n| values[n]).collect())
}

/// Exhaustively compares two netlists with identical primary-input counts on
/// all `2^k` assignments (capped at `max_inputs` to keep this tractable) and
/// returns the fraction of (assignment, output) pairs that agree — `1.0`
/// means functionally equivalent on the sampled space.
///
/// Output correspondence is by *net name* intersection, so designs that
/// renumber nets still compare meaningfully.
///
/// # Errors
///
/// - [`CircuitError::InvalidArgument`] when input counts differ or exceed
///   `max_inputs` (exhaustive comparison would explode).
/// - Propagates simulation failures.
pub fn functional_agreement(
    a: &Netlist,
    b: &Netlist,
    library: &CellLibrary,
    max_inputs: usize,
) -> Result<f64, CircuitError> {
    let k = a.primary_inputs.len();
    if b.primary_inputs.len() != k {
        return Err(CircuitError::InvalidArgument {
            reason: format!("input counts differ: {k} vs {}", b.primary_inputs.len()),
        });
    }
    // Cap at 63 regardless of the caller's limit: `1u64 << 64` would be a
    // masked shift in release builds and silently compare a single pattern.
    if k > max_inputs.min(63) {
        return Err(CircuitError::InvalidArgument {
            reason: format!(
                "{k} inputs exceed the exhaustive cap of {}",
                max_inputs.min(63)
            ),
        });
    }
    // Shared output names.
    let names_a: HashMap<&str, usize> = a
        .primary_outputs
        .iter()
        .map(|&n| (a.nets[n].name.as_str(), n))
        .collect();
    let shared: Vec<(&str, usize, usize)> = b
        .primary_outputs
        .iter()
        .filter_map(|&nb| {
            let name = b.nets[nb].name.as_str();
            names_a.get(name).map(|&na| (name, na, nb))
        })
        .collect();
    if shared.is_empty() {
        return Err(CircuitError::InvalidArgument {
            reason: "netlists share no output names".to_string(),
        });
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for pattern in 0..(1u64 << k) {
        let inputs: Vec<bool> = (0..k).map(|i| (pattern >> i) & 1 == 1).collect();
        let va = simulate(a, library, &inputs)?;
        let vb = simulate(b, library, &inputs)?;
        for &(_, na, nb) in &shared {
            total += 1;
            if va[na] == vb[nb] {
                agree += 1;
            }
        }
    }
    Ok(agree as f64 / total.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, CellLibrary};

    /// Builds a full adder: sum = a ⊕ b ⊕ cin, cout = MAJ(a, b, cin).
    fn full_adder() -> (CellLibrary, Netlist) {
        let lib = CellLibrary::standard();
        let xor = lib.by_kind(CellKind::Xor2).unwrap();
        let maj = lib.by_kind(CellKind::Maj3).unwrap();
        let mut n = Netlist::new("fa");
        let a = n.add_net("a", 0.001);
        let b = n.add_net("b", 0.001);
        let cin = n.add_net("cin", 0.001);
        let p = n.add_net("p", 0.001);
        let sum = n.add_net("sum", 0.001);
        let cout = n.add_net("cout", 0.001);
        n.primary_inputs = vec![a, b, cin];
        n.primary_outputs = vec![sum, cout];
        n.add_cell("x0", xor, vec![a, b], p).unwrap();
        n.add_cell("x1", xor, vec![p, cin], sum).unwrap();
        n.add_cell("m0", maj, vec![a, b, cin], cout).unwrap();
        (lib, n)
    }

    #[test]
    fn full_adder_truth_table() {
        let (lib, n) = full_adder();
        for pattern in 0..8u32 {
            let a = pattern & 1 == 1;
            let b = (pattern >> 1) & 1 == 1;
            let cin = (pattern >> 2) & 1 == 1;
            let outs = simulate_outputs(&n, &lib, &[a, b, cin]).unwrap();
            let expect = a as u32 + b as u32 + cin as u32;
            assert_eq!(outs[0], expect & 1 == 1, "sum for pattern {pattern}");
            assert_eq!(outs[1], expect >= 2, "cout for pattern {pattern}");
        }
    }

    #[test]
    fn wrong_input_count_rejected() {
        let (lib, n) = full_adder();
        assert!(simulate(&n, &lib, &[true, false]).is_err());
    }

    #[test]
    fn netlist_is_self_equivalent() {
        let (lib, n) = full_adder();
        assert_eq!(functional_agreement(&n, &n, &lib, 8).unwrap(), 1.0);
    }

    #[test]
    fn inequivalent_designs_detected() {
        let (lib, fa) = full_adder();
        // A broken variant: sum gate replaced by XNOR.
        let mut broken = fa.clone();
        broken.cells[1].cell = lib.by_kind(CellKind::Xnor2).unwrap();
        let agreement = functional_agreement(&fa, &broken, &lib, 8).unwrap();
        assert!(agreement < 1.0);
        // Only the sum output flips; cout still agrees → agreement = 0.5.
        assert!((agreement - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_cap_enforced() {
        let (lib, n) = full_adder();
        assert!(functional_agreement(&n, &n, &lib, 2).is_err());
    }

    #[test]
    fn feedthrough_outputs_follow_inputs() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("wire");
        let a = n.add_net("a", 0.001);
        n.primary_inputs = vec![a];
        n.primary_outputs = vec![a];
        assert_eq!(simulate_outputs(&n, &lib, &[true]).unwrap(), vec![true]);
        assert_eq!(simulate_outputs(&n, &lib, &[false]).unwrap(), vec![false]);
    }
}
