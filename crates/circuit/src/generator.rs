//! Synthetic benchmark-circuit generation.
//!
//! Substitutes for the paper's proprietary benchmark designs: a seeded
//! generator emits layered combinational DAGs with realistic fanin locality
//! and fanout distributions, and [`benchmark_suite`] reproduces a nine-design
//! ladder of graded sizes for Table I / Fig. 5.

use crate::{CellKind, CellLibrary, CircuitError, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`generate_circuit`].
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of gates to instantiate.
    pub num_gates: usize,
    /// Number of primary inputs (0 = auto: `max(4, num_gates / 12)`).
    pub num_primary_inputs: usize,
    /// Probability that a gate input connects to a *recent* net (locality),
    /// which controls circuit depth.
    pub locality: f64,
    /// Window of recent nets considered "local".
    pub locality_window: usize,
    /// Wire-capacitance range `(min, max)` in pF (wireload model).
    pub wire_cap_range: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_gates: 1000,
            num_primary_inputs: 0,
            locality: 0.75,
            locality_window: 64,
            wire_cap_range: (0.0005, 0.003),
        }
    }
}

/// Generates a random combinational netlist.
///
/// The construction adds gates in topological order, wiring each input
/// either to a recent net (probability `locality`) or to a uniformly random
/// existing net, which yields the long-critical-path / high-fanout structure
/// typical of synthesized logic. Every net left unread becomes a primary
/// output. Deterministic in `(config, seed)`.
///
/// # Errors
///
/// - [`CircuitError::InvalidArgument`] for a zero gate count or an invalid
///   locality/capacitance range.
/// - Propagates netlist validation failures (should not occur).
pub fn generate_circuit(
    library: &CellLibrary,
    config: &GeneratorConfig,
    seed: u64,
) -> Result<Netlist, CircuitError> {
    if config.num_gates == 0 {
        return Err(CircuitError::InvalidArgument {
            reason: "num_gates must be positive".to_string(),
        });
    }
    if !(0.0..=1.0).contains(&config.locality) {
        return Err(CircuitError::InvalidArgument {
            reason: format!("locality {} must be in [0, 1]", config.locality),
        });
    }
    let (cap_lo, cap_hi) = config.wire_cap_range;
    if !(cap_lo > 0.0 && cap_hi >= cap_lo && cap_hi.is_finite()) {
        return Err(CircuitError::InvalidArgument {
            reason: "wire_cap_range must be positive and ordered".to_string(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let num_pis = if config.num_primary_inputs == 0 {
        (config.num_gates / 12).max(4)
    } else {
        config.num_primary_inputs
    };

    // Gate-kind mix loosely follows synthesized-netlist statistics: mostly
    // NAND/NOR/INV, some buffers, a sprinkle of complex cells.
    let kind_weights: &[(CellKind, f64)] = &[
        (CellKind::Nand2, 0.22),
        (CellKind::Nor2, 0.14),
        (CellKind::Inv, 0.16),
        (CellKind::Buf, 0.06),
        (CellKind::And2, 0.10),
        (CellKind::Or2, 0.08),
        (CellKind::Xor2, 0.07),
        (CellKind::Xnor2, 0.04),
        (CellKind::Mux2, 0.06),
        (CellKind::Aoi21, 0.04),
        (CellKind::Maj3, 0.03),
    ];
    let total_weight: f64 = kind_weights.iter().map(|&(_, w)| w).sum();

    let mut netlist = Netlist::new(format!("synth_{}g_s{}", config.num_gates, seed));
    for i in 0..num_pis {
        let cap = rng.random_range(cap_lo..=cap_hi);
        let id = netlist.add_net(format!("pi{i}"), cap);
        netlist.primary_inputs.push(id);
    }

    for gi in 0..config.num_gates {
        // Pick a kind by weight.
        let mut pick = rng.random_range(0.0..total_weight);
        let mut kind = CellKind::Nand2;
        for &(k, w) in kind_weights {
            if pick < w {
                kind = k;
                break;
            }
            pick -= w;
        }
        let cell_id = library
            .by_kind(kind)
            .ok_or_else(|| CircuitError::UnknownCell {
                name: kind.name().to_string(),
            })?;
        let arity = kind.arity();
        let available = netlist.num_nets();
        let mut inputs = Vec::with_capacity(arity);
        for _ in 0..arity {
            let n = if rng.random_range(0.0..1.0) < config.locality {
                let lo = available.saturating_sub(config.locality_window);
                rng.random_range(lo..available)
            } else {
                rng.random_range(0..available)
            };
            inputs.push(n);
        }
        let cap = rng.random_range(cap_lo..=cap_hi);
        let out = netlist.add_net(format!("n{gi}"), cap);
        netlist.add_cell(format!("g{gi}"), cell_id, inputs, out)?;
    }

    // Every unread net becomes a primary output — including unread primary
    // inputs, which turn into feed-throughs so no pin is left floating.
    let sinks = netlist.net_sinks();
    for (net, s) in sinks.iter().enumerate() {
        if s.is_empty() {
            netlist.primary_outputs.push(net);
        }
    }
    if netlist.primary_outputs.is_empty() {
        netlist.primary_outputs.push(netlist.num_nets() - 1);
    }
    netlist.validate(library)?;
    Ok(netlist)
}

/// One entry of the nine-benchmark ladder.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Gate count.
    pub num_gates: usize,
    /// Generator seed (distinct per design so structures differ).
    pub seed: u64,
}

/// The nine synthetic benchmarks standing in for the paper's nine designs
/// (sizes ladder from ~300 to ~32k gates; pin counts roughly 4×).
pub fn benchmark_suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "syn_ctl300",
            num_gates: 300,
            seed: 101,
        },
        BenchmarkSpec {
            name: "syn_alu600",
            num_gates: 600,
            seed: 102,
        },
        BenchmarkSpec {
            name: "syn_dsp1k",
            num_gates: 1200,
            seed: 103,
        },
        BenchmarkSpec {
            name: "syn_if2k",
            num_gates: 2200,
            seed: 104,
        },
        BenchmarkSpec {
            name: "syn_core4k",
            num_gates: 4000,
            seed: 105,
        },
        BenchmarkSpec {
            name: "syn_noc7k",
            num_gates: 7000,
            seed: 106,
        },
        BenchmarkSpec {
            name: "syn_mem12k",
            num_gates: 12000,
            seed: 107,
        },
        BenchmarkSpec {
            name: "syn_cpu20k",
            num_gates: 20000,
            seed: 108,
        },
        BenchmarkSpec {
            name: "syn_soc32k",
            num_gates: 32000,
            seed: 109,
        },
    ]
}

/// Stress designs beyond the paper's nine-benchmark ladder, sized for the
/// neighbor-index benchmarks: pin counts run roughly 3× the gate count, so
/// the largest entry crosses one million pins.
pub fn stress_suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "syn_axi85k",
            num_gates: 85_000,
            seed: 110,
        },
        BenchmarkSpec {
            name: "syn_gpu170k",
            num_gates: 170_000,
            seed: 111,
        },
        BenchmarkSpec {
            name: "syn_chip340k",
            num_gates: 340_000,
            seed: 112,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StaEngine, TimingGraph};

    #[test]
    fn generated_netlist_is_valid_and_sized() {
        let lib = CellLibrary::standard();
        let cfg = GeneratorConfig {
            num_gates: 200,
            ..Default::default()
        };
        let n = generate_circuit(&lib, &cfg, 3).unwrap();
        assert_eq!(n.num_cells(), 200);
        n.validate(&lib).unwrap();
        assert!(!n.primary_outputs.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let lib = CellLibrary::standard();
        let cfg = GeneratorConfig {
            num_gates: 100,
            ..Default::default()
        };
        let a = generate_circuit(&lib, &cfg, 7).unwrap();
        let b = generate_circuit(&lib, &cfg, 7).unwrap();
        assert_eq!(a, b);
        let c = generate_circuit(&lib, &cfg, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn locality_controls_depth() {
        let lib = CellLibrary::standard();
        let deep = generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 400,
                locality: 0.95,
                locality_window: 8,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let shallow = generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 400,
                locality: 0.0,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let d_deep = *deep.logic_depths().unwrap().iter().max().unwrap();
        let d_shallow = *shallow.logic_depths().unwrap().iter().max().unwrap();
        assert!(d_deep > d_shallow, "{d_deep} vs {d_shallow}");
    }

    #[test]
    fn generated_circuit_times_cleanly() {
        let lib = CellLibrary::standard();
        let n = generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 150,
                ..Default::default()
            },
            11,
        )
        .unwrap();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let sta = StaEngine::new(&tg);
        assert!(sta.critical_arrival() > 0.0);
        assert!(sta.arrival_times().iter().all(|a| a.is_finite()));
    }

    #[test]
    fn suite_has_nine_increasing_benchmarks() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 9);
        for w in suite.windows(2) {
            assert!(w[0].num_gates < w[1].num_gates);
        }
        // Names are unique.
        let mut names: Vec<_> = suite.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn stress_suite_largest_crosses_a_million_pins() {
        let suite = stress_suite();
        assert!(suite.windows(2).all(|w| w[0].num_gates < w[1].num_gates));
        let largest = suite.last().unwrap();
        // Generating the full design is too slow for unit tests; instead pin
        // down the pins-per-gate ratio on a scaled instance (the generator's
        // fanin distribution is size-independent) and extrapolate.
        let lib = CellLibrary::standard();
        let cfg = GeneratorConfig {
            num_gates: 4000,
            ..Default::default()
        };
        let n = generate_circuit(&lib, &cfg, largest.seed).unwrap();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let ratio = tg.num_pins() as f64 / cfg.num_gates as f64;
        assert!(ratio >= 3.0, "pins-per-gate ratio collapsed: {ratio}");
        assert!(
            largest.num_gates as f64 * ratio >= 1.0e6,
            "largest stress design must reach one million pins \
             ({} gates × {ratio:.2} pins/gate)",
            largest.num_gates
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let lib = CellLibrary::standard();
        assert!(generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 0,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(generate_circuit(
            &lib,
            &GeneratorConfig {
                locality: 1.5,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(generate_circuit(
            &lib,
            &GeneratorConfig {
                wire_cap_range: (0.0, 1.0),
                ..Default::default()
            },
            0
        )
        .is_err());
    }
}
