//! GNN node-feature extraction from timing graphs.

use crate::{CellKind, CellLibrary, CircuitError, Netlist, PinRole, TimingGraph};
use cirstag_linalg::DenseMatrix;

/// Options for [`extract_features`].
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Scale applied to pin capacitances so they land near O(1)
    /// (default `1 / 0.002` — the PO load).
    pub cap_scale: f64,
    /// Include the 11-way cell-kind one-hot (zeros for IO pins).
    pub cell_onehot: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            cap_scale: 500.0,
            cell_onehot: true,
        }
    }
}

/// Number of base (non-one-hot) features.
const BASE_FEATURES: usize = 7;

/// Builds the per-pin feature matrix for the timing GNN.
///
/// Columns:
/// 0. scaled pin capacitance (the perturbed feature of Case Study A)
/// 1. log1p(driver fanout)
/// 2. normalized topological level
/// 3. – 6. role one-hot (PI, PO, cell input, cell output)
/// 7. … cell-kind one-hot (optional)
///
/// `pin_caps` allows evaluating perturbed capacitances without rebuilding
/// the graph (pass `&timing.pin_caps()` for the nominal design).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidArgument`] when `pin_caps` has the wrong
/// length.
pub fn extract_features(
    timing: &TimingGraph,
    netlist: &Netlist,
    library: &CellLibrary,
    pin_caps: &[f64],
    config: &FeatureConfig,
) -> Result<DenseMatrix, CircuitError> {
    let n = timing.num_pins();
    if pin_caps.len() != n {
        return Err(CircuitError::InvalidArgument {
            reason: format!("pin_caps has {} entries for {n} pins", pin_caps.len()),
        });
    }
    let width = BASE_FEATURES
        + if config.cell_onehot {
            CellKind::ALL.len()
        } else {
            0
        };
    let max_level = timing.levels().iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut x = DenseMatrix::zeros(n, width);
    for p in 0..n {
        let info = timing.pin(p);
        x.set(p, 0, pin_caps[p] * config.cap_scale);
        x.set(p, 1, (1.0 + timing.driver_fanout(p) as f64).ln());
        x.set(p, 2, timing.levels()[p] as f64 / max_level);
        let (role_idx, cell) = match info.role {
            PinRole::PrimaryInput => (0, None),
            PinRole::PrimaryOutput => (1, None),
            PinRole::CellInput { cell, .. } => (2, Some(cell)),
            PinRole::CellOutput { cell } => (3, Some(cell)),
        };
        x.set(p, 3 + role_idx, 1.0);
        if config.cell_onehot {
            if let Some(ci) = cell {
                let kind = library.cell(netlist.cells[ci].cell).kind;
                let k = CellKind::ALL
                    .iter()
                    .position(|&kk| kk == kind)
                    .expect("kind in ALL"); // cirstag-lint: allow(no-panic-in-lib) -- CellKind::ALL enumerates every variant, so position always exists
                x.set(p, BASE_FEATURES + k, 1.0);
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_circuit, GeneratorConfig};

    fn setup() -> (CellLibrary, Netlist, TimingGraph) {
        let lib = CellLibrary::standard();
        let n = generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 40,
                ..Default::default()
            },
            9,
        )
        .unwrap();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        (lib, n, tg)
    }

    #[test]
    fn shape_and_finiteness() {
        let (lib, n, tg) = setup();
        let x = extract_features(&tg, &n, &lib, &tg.pin_caps(), &FeatureConfig::default()).unwrap();
        assert_eq!(x.nrows(), tg.num_pins());
        assert_eq!(x.ncols(), BASE_FEATURES + CellKind::ALL.len());
        assert!(x.all_finite());
    }

    #[test]
    fn no_onehot_shrinks_width() {
        let (lib, n, tg) = setup();
        let x = extract_features(
            &tg,
            &n,
            &lib,
            &tg.pin_caps(),
            &FeatureConfig {
                cell_onehot: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(x.ncols(), BASE_FEATURES);
    }

    #[test]
    fn role_onehot_is_exclusive() {
        let (lib, n, tg) = setup();
        let x = extract_features(&tg, &n, &lib, &tg.pin_caps(), &FeatureConfig::default()).unwrap();
        for p in 0..tg.num_pins() {
            let ones: f64 = (3..7).map(|j| x.get(p, j)).sum();
            assert_eq!(ones, 1.0, "pin {p} role one-hot");
        }
    }

    #[test]
    fn cap_column_reflects_perturbation() {
        let (lib, n, tg) = setup();
        let mut caps = tg.pin_caps();
        let victim = tg.net_sink_pins(tg.pin(tg.pi_pins()[0]).net)[0];
        caps[victim] *= 10.0;
        let cfg = FeatureConfig::default();
        let base = extract_features(&tg, &n, &lib, &tg.pin_caps(), &cfg).unwrap();
        let pert = extract_features(&tg, &n, &lib, &caps, &cfg).unwrap();
        assert!((pert.get(victim, 0) - 10.0 * base.get(victim, 0)).abs() < 1e-9);
        // All other rows unchanged.
        for p in 0..tg.num_pins() {
            if p != victim {
                assert_eq!(pert.get(p, 0), base.get(p, 0));
            }
        }
    }

    #[test]
    fn wrong_cap_length_rejected() {
        let (lib, n, tg) = setup();
        assert!(extract_features(&tg, &n, &lib, &[0.0], &FeatureConfig::default()).is_err());
    }
}
