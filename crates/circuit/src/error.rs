use std::error::Error;
use std::fmt;

/// Error type for circuit construction, parsing and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A cell id was not present in the library.
    UnknownCell {
        /// The offending cell name or id description.
        name: String,
    },
    /// A net id exceeded the netlist's net count.
    NetOutOfBounds {
        /// The offending net id.
        net: usize,
        /// Number of nets.
        num_nets: usize,
    },
    /// A gate's input count does not match its library cell.
    ArityMismatch {
        /// Cell name.
        cell: String,
        /// Expected input count.
        expected: usize,
        /// Supplied input count.
        actual: usize,
    },
    /// A net has no driver or several drivers.
    BadDriver {
        /// The offending net id.
        net: usize,
        /// Number of drivers found.
        drivers: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle,
    /// Parsing a netlist file failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An argument was invalid.
    InvalidArgument {
        /// Description of the violated requirement.
        reason: String,
    },
    /// An underlying graph operation failed.
    Graph(cirstag_graph::GraphError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownCell { name } => write!(f, "unknown cell: {name}"),
            CircuitError::NetOutOfBounds { net, num_nets } => {
                write!(
                    f,
                    "net {net} out of bounds for netlist with {num_nets} nets"
                )
            }
            CircuitError::ArityMismatch {
                cell,
                expected,
                actual,
            } => write!(f, "cell {cell} expects {expected} inputs, got {actual}"),
            CircuitError::BadDriver { net, drivers } => {
                write!(f, "net {net} has {drivers} drivers (exactly one required)")
            }
            CircuitError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            CircuitError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cirstag_graph::GraphError> for CircuitError {
    fn from(e: cirstag_graph::GraphError) -> Self {
        CircuitError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = CircuitError::ArityMismatch {
            cell: "NAND2".to_string(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("NAND2"));
        let p = CircuitError::Parse {
            line: 7,
            message: "bad token".to_string(),
        };
        assert!(p.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
