//! Pre-routing static timing analysis over a [`TimingGraph`].

use crate::timing_graph::ArcKind;
use crate::{PinId, TimingGraph};

/// Wire resistance factor (kΩ per unit) for the pre-routing wireload model:
/// a net arc contributes `WIRE_RESISTANCE × (wire_cap + sink pin cap)`.
pub const WIRE_RESISTANCE: f64 = 0.8;

/// A pre-routing STA engine: computes per-pin arrival times, slacks and the
/// critical path under the linear delay model.
///
/// Modeling note: a driver's load sums the net wire capacitance and the
/// *sink* pin capacitances; the driver's own output-pin parasitic is kept as
/// a feature (the GNN sees it) but does not enter the delay model, so
/// perturbing output-pin capacitance probes GNN sensitivity only.
/// `cell delay = intrinsic + drive_resistance × load`, where the load of a
/// driver is the net wire capacitance plus all sink pin capacitances.
///
/// The engine is *pure*: it borrows a timing graph and a capacitance vector,
/// so perturbation studies re-run it with modified capacitances without
/// rebuilding the graph.
///
/// # Example
///
/// ```
/// use cirstag_circuit::{generate_circuit, CellLibrary, GeneratorConfig, StaEngine, TimingGraph};
///
/// # fn main() -> Result<(), cirstag_circuit::CircuitError> {
/// let lib = CellLibrary::standard();
/// let netlist = generate_circuit(&lib, &GeneratorConfig { num_gates: 30, ..Default::default() }, 1)?;
/// let tg = TimingGraph::new(&netlist, &lib)?;
/// let sta = StaEngine::new(&tg);
/// let wns = sta.critical_arrival();
/// assert!(wns > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaEngine {
    arrivals: Vec<f64>,
    critical: f64,
    /// Load capacitance seen by each driver pin (0 for sink pins).
    loads: Vec<f64>,
    /// Pin capacitances the analysis ran with.
    pin_caps: Vec<f64>,
    /// Per-cell drive-resistance multipliers (1.0 = nominal).
    drive_scale: Vec<f64>,
}

impl StaEngine {
    /// Runs STA with the graph's base pin capacitances.
    pub fn new(timing: &TimingGraph) -> Self {
        Self::with_caps(timing, &timing.pin_caps())
    }

    /// Runs STA with an explicit pin-capacitance vector (perturbation
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if `pin_caps.len() != timing.num_pins()`.
    pub fn with_caps(timing: &TimingGraph, pin_caps: &[f64]) -> Self {
        Self::with_adjustments(timing, pin_caps, None)
    }

    /// Runs STA with explicit pin capacitances *and* per-cell drive-strength
    /// scaling: cell `c`'s drive resistance is multiplied by
    /// `drive_scale[c]` (values < 1 model upsizing). `None` leaves all
    /// drives nominal — the hook used by gate-sizing studies.
    ///
    /// # Panics
    ///
    /// Panics when vector lengths mismatch the graph, or a scale is not
    /// positive and finite.
    pub fn with_adjustments(
        timing: &TimingGraph,
        pin_caps: &[f64],
        drive_scale: Option<&[f64]>,
    ) -> Self {
        assert_eq!(
            pin_caps.len(),
            timing.num_pins(),
            "capacitance vector length mismatch"
        );
        if let Some(ds) = drive_scale {
            assert_eq!(
                ds.len(),
                timing.cell_timing().len(),
                "drive scale length mismatch"
            );
            assert!(
                ds.iter().all(|s| s.is_finite() && *s > 0.0),
                "drive scales must be positive and finite"
            );
        }
        // Load of each driver pin: wire cap + Σ sink pin caps.
        let n = timing.num_pins();
        let mut load = vec![0.0f64; n];
        for p in 0..n {
            let info = timing.pin(p);
            match info.role {
                crate::PinRole::PrimaryInput | crate::PinRole::CellOutput { .. } => {
                    let net = info.net;
                    let mut l = timing.wire_cap(net);
                    for &s in timing.net_sink_pins(net) {
                        l += pin_caps[s];
                    }
                    load[p] = l;
                }
                _ => {}
            }
        }
        let drive: Vec<f64> = match drive_scale {
            Some(ds) => ds.to_vec(),
            None => vec![1.0; timing.cell_timing().len()],
        };
        let mut arrivals = vec![0.0f64; n];
        for &p in timing.topological_order() {
            let mut best: f64 = 0.0;
            for &ai in timing.fanin_arcs(p) {
                let (from, _, _) = timing.arcs()[ai];
                let delay = arc_delay(timing, ai, &load, pin_caps, &drive);
                best = best.max(arrivals[from] + delay);
            }
            arrivals[p] = best;
        }
        let critical = timing
            .po_pins()
            .iter()
            .map(|&p| arrivals[p])
            .fold(0.0f64, f64::max);
        StaEngine {
            arrivals,
            critical,
            loads: load,
            pin_caps: pin_caps.to_vec(),
            drive_scale: drive,
        }
    }

    /// Arrival time at every pin (ns).
    pub fn arrival_times(&self) -> &[f64] {
        &self.arrivals
    }

    /// Arrival time at pin `p`.
    pub fn arrival(&self, p: PinId) -> f64 {
        self.arrivals[p]
    }

    /// The latest primary-output arrival (critical-path delay).
    pub fn critical_arrival(&self) -> f64 {
        self.critical
    }

    /// Incrementally re-times the design after a pin-capacitance change,
    /// recomputing only the affected cone: loads of drivers whose nets touch
    /// a changed pin, then arrivals propagated with a worklist in
    /// topological order, cut off where values stop moving.
    ///
    /// Produces results identical (to fp round-off) to a fresh
    /// [`StaEngine::with_caps`]; the payoff is asymptotic — a localized
    /// change re-touches a small downstream cone instead of every pin.
    ///
    /// # Panics
    ///
    /// Panics if `new_caps.len() != timing.num_pins()`.
    pub fn retime_with_caps(&self, timing: &TimingGraph, new_caps: &[f64]) -> StaEngine {
        assert_eq!(
            new_caps.len(),
            timing.num_pins(),
            "capacitance vector length mismatch"
        );
        let n = timing.num_pins();
        // 1. Which pins changed capacitance?
        let changed_pins: Vec<usize> = (0..n)
            .filter(|&p| new_caps[p] != self.pin_caps[p])
            .collect();
        if changed_pins.is_empty() {
            return self.clone();
        }
        // 2. Recompute loads only for drivers of nets touching changed pins,
        //    and collect the pins whose incoming arc delays changed: the
        //    sinks of those nets (net-arc delay depends on the sink cap) and
        //    the cells whose output load changed (cell-arc delay).
        let mut loads = self.loads.clone();
        let mut dirty = vec![false; n];
        let mut worklist: Vec<usize> = Vec::new();
        let mut nets: Vec<usize> = changed_pins.iter().map(|&p| timing.pin(p).net).collect();
        nets.sort_unstable();
        nets.dedup();
        for &net in &nets {
            let driver = timing.net_driver_pin(net);
            let mut load = timing.wire_cap(net);
            for &s in timing.net_sink_pins(net) {
                load += new_caps[s];
            }
            loads[driver] = load;
            // Net arcs into each sink re-evaluate (sink cap may have moved).
            for &s in timing.net_sink_pins(net) {
                if !dirty[s] {
                    dirty[s] = true;
                    worklist.push(s);
                }
            }
            // The driving cell's output-arc delay changed with its load.
            if let crate::PinRole::CellOutput { .. } = timing.pin(driver).role {
                if !dirty[driver] {
                    dirty[driver] = true;
                    worklist.push(driver);
                }
            }
        }
        // 3. Propagate in topological order with early cut-off.
        let mut arrivals = self.arrivals.clone();
        let mut rank = vec![0usize; n];
        for (r, &p) in timing.topological_order().iter().enumerate() {
            rank[p] = r;
        }
        let drive = &self.drive_scale;
        // Simple ordered worklist: sort pending pins by topological rank and
        // sweep; newly-dirtied pins are always downstream of the sweep
        // position, so one pass with a binary-heap suffices.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = worklist
            .iter()
            .map(|&p| std::cmp::Reverse((rank[p], p)))
            .collect();
        let mut processed = vec![false; n];
        while let Some(std::cmp::Reverse((_, p))) = heap.pop() {
            if processed[p] {
                continue;
            }
            processed[p] = true;
            let mut best: f64 = 0.0;
            for &ai in timing.fanin_arcs(p) {
                let (from, _, _) = timing.arcs()[ai];
                let delay = arc_delay(timing, ai, &loads, new_caps, drive);
                best = best.max(arrivals[from] + delay);
            }
            if timing.fanin_arcs(p).is_empty() {
                best = arrivals[p]; // sources keep their arrival (0.0)
            }
            if (best - arrivals[p]).abs() > 1e-15 {
                arrivals[p] = best;
                for &ai in timing.fanout_arcs(p) {
                    let to = timing.arcs()[ai].1;
                    if !processed[to] {
                        heap.push(std::cmp::Reverse((rank[to], to)));
                    }
                }
            }
        }
        let critical = timing
            .po_pins()
            .iter()
            .map(|&p| arrivals[p])
            .fold(0.0f64, f64::max);
        StaEngine {
            arrivals,
            critical,
            loads,
            pin_caps: new_caps.to_vec(),
            drive_scale: self.drive_scale.clone(),
        }
    }

    /// Slack at each pin against the critical arrival used as the required
    /// time at every primary output (zero-slack convention for the worst
    /// path).
    pub fn slacks(&self, timing: &TimingGraph) -> Vec<f64> {
        let n = timing.num_pins();
        let mut required = vec![f64::INFINITY; n];
        for &p in timing.po_pins() {
            required[p] = self.critical;
        }
        for &p in timing.topological_order().iter().rev() {
            for &ai in timing.fanin_arcs(p) {
                let (from, _, _) = timing.arcs()[ai];
                let delay = arc_delay(timing, ai, &self.loads, &self.pin_caps, &self.drive_scale);
                let cand = required[p] - delay;
                if cand < required[from] {
                    required[from] = cand;
                }
            }
        }
        (0..n)
            .map(|p| {
                if required[p].is_finite() {
                    required[p] - self.arrivals[p]
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }
}

/// Delay of arc `ai` given the per-driver loads, pin capacitances and
/// per-cell drive scaling.
fn arc_delay(
    timing: &TimingGraph,
    ai: usize,
    loads: &[f64],
    pin_caps: &[f64],
    drive_scale: &[f64],
) -> f64 {
    let (_, to, kind) = timing.arcs()[ai];
    match kind {
        ArcKind::Cell { cell } => {
            let (intrinsic, drive_r) = timing.cell_timing()[cell];
            let out_pin = timing.cell_output_pin(cell);
            intrinsic + drive_r * drive_scale[cell] * loads[out_pin]
        }
        ArcKind::Net { net } => WIRE_RESISTANCE * (timing.wire_cap(net) + pin_caps[to]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, CellLibrary, Netlist, TimingGraph};

    fn chain(lengths: usize) -> (CellLibrary, TimingGraph) {
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let mut n = Netlist::new("chain");
        let mut prev = n.add_net("n0", 0.001);
        n.primary_inputs = vec![prev];
        for i in 0..lengths {
            let next = n.add_net(format!("n{}", i + 1), 0.001);
            n.add_cell(format!("g{i}"), inv, vec![prev], next).unwrap();
            prev = next;
        }
        n.primary_outputs = vec![prev];
        let tg = TimingGraph::new(&n, &lib).unwrap();
        (lib, tg)
    }

    #[test]
    fn arrival_monotone_along_arcs() {
        let (_, tg) = chain(5);
        let sta = StaEngine::new(&tg);
        for &(from, to, _) in tg.arcs() {
            assert!(sta.arrival(to) >= sta.arrival(from));
        }
    }

    #[test]
    fn longer_chain_has_larger_critical_delay() {
        let (_, tg3) = chain(3);
        let (_, tg6) = chain(6);
        let d3 = StaEngine::new(&tg3).critical_arrival();
        let d6 = StaEngine::new(&tg6).critical_arrival();
        assert!(d6 > d3 * 1.5, "{d6} vs {d3}");
    }

    #[test]
    fn hand_computed_single_inverter() {
        // PI -> inv -> PO, all caps known.
        let lib = CellLibrary::standard();
        let inv_id = lib.by_kind(CellKind::Inv).unwrap();
        let inv = lib.cell(inv_id).clone();
        let mut n = Netlist::new("one");
        let a = n.add_net("a", 0.001);
        let y = n.add_net("y", 0.002);
        n.primary_inputs = vec![a];
        n.primary_outputs = vec![y];
        n.add_cell("g0", inv_id, vec![a], y).unwrap();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let sta = StaEngine::new(&tg);
        // Pins: 0 = PI(a), 1 = g0 input, 2 = g0 output, 3 = PO(y).
        // Net arc a: delay = WIRE_R * (0.001 + cin).
        let cin = inv.input_caps[0];
        let t1 = WIRE_RESISTANCE * (0.001 + cin);
        assert!((sta.arrival(1) - t1).abs() < 1e-12);
        // Cell arc: load(output) = wire(y) + PO cap.
        let load = 0.002 + crate::timing_graph::PO_LOAD_CAP;
        let t2 = t1 + inv.intrinsic_delay + inv.drive_resistance * load;
        assert!((sta.arrival(2) - t2).abs() < 1e-12);
        // Net arc y: delay = WIRE_R * (0.002 + PO cap).
        let t3 = t2 + WIRE_RESISTANCE * (0.002 + crate::timing_graph::PO_LOAD_CAP);
        assert!((sta.arrival(3) - t3).abs() < 1e-12);
        assert!((sta.critical_arrival() - t3).abs() < 1e-12);
    }

    #[test]
    fn increasing_any_pin_cap_never_decreases_arrivals() {
        let (_, tg) = chain(4);
        let base = StaEngine::new(&tg);
        let caps = tg.pin_caps();
        for p in 0..tg.num_pins() {
            let mut perturbed = caps.clone();
            perturbed[p] += 0.01;
            let sta = StaEngine::with_caps(&tg, &perturbed);
            for q in 0..tg.num_pins() {
                assert!(
                    sta.arrival(q) >= base.arrival(q) - 1e-12,
                    "pin {p} perturbation decreased arrival at {q}"
                );
            }
        }
    }

    #[test]
    fn slack_zero_on_critical_path() {
        let (_, tg) = chain(4);
        let sta = StaEngine::new(&tg);
        let slacks = sta.slacks(&tg);
        // On a pure chain every pin is on the critical path.
        for (p, &s) in slacks.iter().enumerate() {
            assert!(s.abs() < 1e-9, "pin {p} slack {s}");
        }
    }

    #[test]
    fn incremental_retiming_matches_full_sta() {
        let lib = CellLibrary::standard();
        let netlist = crate::generate_circuit(
            &lib,
            &crate::GeneratorConfig {
                num_gates: 200,
                ..Default::default()
            },
            13,
        )
        .unwrap();
        let tg = TimingGraph::new(&netlist, &lib).unwrap();
        let base = StaEngine::new(&tg);
        // Perturb a handful of scattered pins.
        let mut caps = tg.pin_caps();
        for p in (0..tg.num_pins()).step_by(37) {
            caps[p] *= 5.0;
        }
        let incremental = base.retime_with_caps(&tg, &caps);
        let full = StaEngine::with_caps(&tg, &caps);
        for p in 0..tg.num_pins() {
            assert!(
                (incremental.arrival(p) - full.arrival(p)).abs() < 1e-12,
                "pin {p}: {} vs {}",
                incremental.arrival(p),
                full.arrival(p)
            );
        }
        assert!((incremental.critical_arrival() - full.critical_arrival()).abs() < 1e-12);
    }

    #[test]
    fn incremental_retiming_noop_for_unchanged_caps() {
        let (_, tg) = chain(5);
        let base = StaEngine::new(&tg);
        let same = base.retime_with_caps(&tg, &tg.pin_caps());
        for p in 0..tg.num_pins() {
            assert_eq!(same.arrival(p), base.arrival(p));
        }
    }

    #[test]
    fn incremental_retiming_chains() {
        // Apply two successive perturbations incrementally; must match the
        // one-shot full analysis of the final capacitances.
        let (_, tg) = chain(6);
        let base = StaEngine::new(&tg);
        let mut caps1 = tg.pin_caps();
        caps1[1] *= 3.0;
        let step1 = base.retime_with_caps(&tg, &caps1);
        let mut caps2 = caps1.clone();
        caps2[5] *= 2.0;
        let step2 = step1.retime_with_caps(&tg, &caps2);
        let full = StaEngine::with_caps(&tg, &caps2);
        for p in 0..tg.num_pins() {
            assert!(
                (step2.arrival(p) - full.arrival(p)).abs() < 1e-12,
                "pin {p}"
            );
        }
    }

    #[test]
    fn drive_scaling_speeds_up_and_slows_down() {
        let (_, tg) = chain(4);
        let base = StaEngine::new(&tg).critical_arrival();
        let faster =
            StaEngine::with_adjustments(&tg, &tg.pin_caps(), Some(&[0.5; 4])).critical_arrival();
        let slower =
            StaEngine::with_adjustments(&tg, &tg.pin_caps(), Some(&[2.0; 4])).critical_arrival();
        assert!(faster < base, "{faster} vs {base}");
        assert!(slower > base, "{slower} vs {base}");
    }

    #[test]
    fn slack_positive_off_critical_path() {
        // Two parallel paths of different depth converging on a MAJ3 gate.
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let maj = lib.by_kind(CellKind::Maj3).unwrap();
        let mut n = Netlist::new("two_paths");
        let a = n.add_net("a", 0.001);
        let b = n.add_net("b", 0.001);
        let c = n.add_net("c", 0.001);
        // Long path: a through 3 inverters.
        let a1 = n.add_net("a1", 0.001);
        let a2 = n.add_net("a2", 0.001);
        let a3 = n.add_net("a3", 0.001);
        n.add_cell("i0", inv, vec![a], a1).unwrap();
        n.add_cell("i1", inv, vec![a1], a2).unwrap();
        n.add_cell("i2", inv, vec![a2], a3).unwrap();
        let y = n.add_net("y", 0.001);
        n.add_cell("m", maj, vec![a3, b, c], y).unwrap();
        n.primary_inputs = vec![a, b, c];
        n.primary_outputs = vec![y];
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let sta = StaEngine::new(&tg);
        let slacks = sta.slacks(&tg);
        // The b and c PIs are off the critical path: positive slack.
        assert!(slacks[tg.pi_pins()[1]] > 1e-6);
        assert!(slacks[tg.pi_pins()[2]] > 1e-6);
        // The a PI is critical: ~zero slack.
        assert!(slacks[tg.pi_pins()[0]].abs() < 1e-9);
    }
}
