//! Pin-level timing graphs derived from gate-level netlists.

use crate::{CellLibrary, CircuitError, NetId, Netlist};
use cirstag_graph::Graph;

/// Index of a pin within a [`TimingGraph`].
pub type PinId = usize;

/// What a pin is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinRole {
    /// A primary-input driver pin.
    PrimaryInput,
    /// A primary-output load pin.
    PrimaryOutput,
    /// Input pin `pin` of cell instance `cell`.
    CellInput {
        /// Cell-instance index in the netlist.
        cell: usize,
        /// Input-pin position within the cell.
        pin: usize,
    },
    /// Output pin of cell instance `cell`.
    CellOutput {
        /// Cell-instance index in the netlist.
        cell: usize,
    },
}

/// Static information about one pin.
#[derive(Debug, Clone, PartialEq)]
pub struct PinInfo {
    /// Role of the pin.
    pub role: PinRole,
    /// Pin capacitance (pF) — the node feature perturbed in Case Study A.
    pub capacitance: f64,
    /// The net the pin touches.
    pub net: NetId,
}

/// A timing arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcKind {
    /// Intra-cell arc (input pin → output pin of the same cell instance).
    Cell {
        /// Cell-instance index.
        cell: usize,
    },
    /// Net arc (driver pin → sink pin).
    Net {
        /// Net index.
        net: NetId,
    },
}

/// The pin-level DAG used for STA and as CirSTAG's circuit graph: nodes are
/// cell pins (plus primary-IO pins), edges are net connections and internal
/// cell arcs — the graph convention of the pre-routing timing GNN \[17\].
#[derive(Debug, Clone)]
pub struct TimingGraph {
    pins: Vec<PinInfo>,
    arcs: Vec<(PinId, PinId, ArcKind)>,
    fanin: Vec<Vec<usize>>,
    fanout: Vec<Vec<usize>>,
    topo: Vec<PinId>,
    pi_pins: Vec<PinId>,
    po_pins: Vec<PinId>,
    /// Per-cell output-pin id.
    cell_output_pin: Vec<PinId>,
    /// Per-net driver pin id.
    net_driver_pin: Vec<PinId>,
    /// Per-net sink pin ids.
    net_sink_pins: Vec<Vec<PinId>>,
    /// Per-net wire capacitance (copied from the netlist).
    wire_caps: Vec<f64>,
    /// Per-cell (intrinsic delay, drive resistance) from the library.
    cell_timing: Vec<(f64, f64)>,
    levels: Vec<usize>,
}

/// External load attached to each primary output (pF).
pub const PO_LOAD_CAP: f64 = 0.002;

impl TimingGraph {
    /// Builds the pin graph for a validated netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::validate`] failures.
    pub fn new(netlist: &Netlist, library: &CellLibrary) -> Result<Self, CircuitError> {
        netlist.validate(library)?;
        let mut pins: Vec<PinInfo> = Vec::new();
        let mut net_driver_pin = vec![usize::MAX; netlist.num_nets()];
        let mut net_sink_pins: Vec<Vec<PinId>> = vec![Vec::new(); netlist.num_nets()];

        let mut pi_pins = Vec::new();
        for &net in &netlist.primary_inputs {
            let pin = pins.len();
            pins.push(PinInfo {
                role: PinRole::PrimaryInput,
                capacitance: 0.0,
                net,
            });
            net_driver_pin[net] = pin;
            pi_pins.push(pin);
        }

        let mut cell_output_pin = vec![usize::MAX; netlist.num_cells()];
        let mut cell_input_pins: Vec<Vec<PinId>> = vec![Vec::new(); netlist.num_cells()];
        let mut cell_timing = Vec::with_capacity(netlist.num_cells());
        for (ci, inst) in netlist.cells.iter().enumerate() {
            let cell = library.get(inst.cell)?;
            for (k, &net) in inst.inputs.iter().enumerate() {
                let pin = pins.len();
                pins.push(PinInfo {
                    role: PinRole::CellInput { cell: ci, pin: k },
                    capacitance: cell.input_caps[k],
                    net,
                });
                net_sink_pins[net].push(pin);
                cell_input_pins[ci].push(pin);
            }
            let pin = pins.len();
            pins.push(PinInfo {
                role: PinRole::CellOutput { cell: ci },
                capacitance: cell.output_cap,
                net: inst.output,
            });
            net_driver_pin[inst.output] = pin;
            cell_output_pin[ci] = pin;
            cell_timing.push((cell.intrinsic_delay, cell.drive_resistance));
        }

        let mut po_pins = Vec::new();
        for &net in &netlist.primary_outputs {
            let pin = pins.len();
            pins.push(PinInfo {
                role: PinRole::PrimaryOutput,
                capacitance: PO_LOAD_CAP,
                net,
            });
            net_sink_pins[net].push(pin);
            po_pins.push(pin);
        }

        // Arcs.
        let mut arcs: Vec<(PinId, PinId, ArcKind)> = Vec::new();
        for (ci, inputs) in cell_input_pins.iter().enumerate() {
            for &ip in inputs {
                arcs.push((ip, cell_output_pin[ci], ArcKind::Cell { cell: ci }));
            }
        }
        for net in 0..netlist.num_nets() {
            let d = net_driver_pin[net];
            for &s in &net_sink_pins[net] {
                arcs.push((d, s, ArcKind::Net { net }));
            }
        }

        let n = pins.len();
        let mut fanin: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ai, &(from, to, _)) in arcs.iter().enumerate() {
            fanout[from].push(ai);
            fanin[to].push(ai);
        }

        // Topological order over pins (Kahn).
        let mut indegree: Vec<usize> = fanin.iter().map(Vec::len).collect();
        let mut queue: Vec<PinId> = (0..n).filter(|&p| indegree[p] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut levels = vec![0usize; n];
        while let Some(p) = queue.pop() {
            topo.push(p);
            for &ai in &fanout[p] {
                let to = arcs[ai].1;
                levels[to] = levels[to].max(levels[p] + 1);
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(to);
                }
            }
        }
        if topo.len() != n {
            return Err(CircuitError::CombinationalCycle);
        }

        Ok(TimingGraph {
            pins,
            arcs,
            fanin,
            fanout,
            topo,
            pi_pins,
            po_pins,
            cell_output_pin,
            net_driver_pin,
            net_sink_pins,
            wire_caps: netlist.nets.iter().map(|nt| nt.wire_cap).collect(),
            cell_timing,
            levels,
        })
    }

    /// Number of pins (graph nodes).
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Number of timing arcs (directed edges).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Pin metadata.
    pub fn pin(&self, p: PinId) -> &PinInfo {
        &self.pins[p]
    }

    /// All pins.
    pub fn pins(&self) -> &[PinInfo] {
        &self.pins
    }

    /// All arcs as `(from, to, kind)`.
    pub fn arcs(&self) -> &[(PinId, PinId, ArcKind)] {
        &self.arcs
    }

    /// Primary-input pins.
    pub fn pi_pins(&self) -> &[PinId] {
        &self.pi_pins
    }

    /// Primary-output pins.
    pub fn po_pins(&self) -> &[PinId] {
        &self.po_pins
    }

    /// Topological pin order (sources first).
    pub fn topological_order(&self) -> &[PinId] {
        &self.topo
    }

    /// Longest-path level of each pin.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Indices into [`TimingGraph::arcs`] entering `p`.
    pub fn fanin_arcs(&self, p: PinId) -> &[usize] {
        &self.fanin[p]
    }

    /// Indices into [`TimingGraph::arcs`] leaving `p`.
    pub fn fanout_arcs(&self, p: PinId) -> &[usize] {
        &self.fanout[p]
    }

    /// Per-cell `(intrinsic delay, drive resistance)`.
    pub fn cell_timing(&self) -> &[(f64, f64)] {
        &self.cell_timing
    }

    /// Output pin of cell `ci`.
    pub fn cell_output_pin(&self, ci: usize) -> PinId {
        self.cell_output_pin[ci]
    }

    /// Driver pin of `net`.
    pub fn net_driver_pin(&self, net: NetId) -> PinId {
        self.net_driver_pin[net]
    }

    /// Sink pins of `net`.
    pub fn net_sink_pins(&self, net: NetId) -> &[PinId] {
        &self.net_sink_pins[net]
    }

    /// Wire capacitance of `net`.
    pub fn wire_cap(&self, net: NetId) -> f64 {
        self.wire_caps[net]
    }

    /// Base pin capacitances in pin order (the default feature vector).
    pub fn pin_caps(&self) -> Vec<f64> {
        self.pins.iter().map(|p| p.capacitance).collect()
    }

    /// Fanout count of the *net* a driver pin drives (0 for sink pins).
    pub fn driver_fanout(&self, p: PinId) -> usize {
        let info = &self.pins[p];
        match info.role {
            PinRole::PrimaryInput | PinRole::CellOutput { .. } => {
                self.net_sink_pins[info.net].len()
            }
            _ => 0,
        }
    }

    /// The undirected view of the pin graph (unit edge weights) used as
    /// CirSTAG's input graph `G`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures (cannot occur for a valid
    /// timing graph).
    pub fn to_undirected_graph(&self) -> Result<Graph, CircuitError> {
        let mut g = Graph::new(self.num_pins());
        for &(from, to, _) in &self.arcs {
            g.add_edge(from, to, 1.0)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, CellLibrary, Netlist};

    fn chain() -> (CellLibrary, Netlist) {
        // a -> INV -> INV -> y
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(CellKind::Inv).unwrap();
        let mut n = Netlist::new("chain");
        let a = n.add_net("a", 0.001);
        let t = n.add_net("t", 0.001);
        let y = n.add_net("y", 0.001);
        n.primary_inputs = vec![a];
        n.primary_outputs = vec![y];
        n.add_cell("g0", inv, vec![a], t).unwrap();
        n.add_cell("g1", inv, vec![t], y).unwrap();
        (lib, n)
    }

    #[test]
    fn pin_count_and_roles() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        // 1 PI + 2*(1 input + 1 output) + 1 PO = 6 pins.
        assert_eq!(tg.num_pins(), 6);
        assert_eq!(tg.pi_pins().len(), 1);
        assert_eq!(tg.po_pins().len(), 1);
        assert_eq!(tg.pin(tg.pi_pins()[0]).role, PinRole::PrimaryInput);
        assert_eq!(tg.pin(tg.po_pins()[0]).role, PinRole::PrimaryOutput);
    }

    #[test]
    fn arc_count() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        // Cell arcs: 2. Net arcs: a->g0.in, t->g1.in, y->PO = 3.
        assert_eq!(tg.num_arcs(), 5);
    }

    #[test]
    fn topological_order_is_complete_and_causal() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let order = tg.topological_order();
        assert_eq!(order.len(), tg.num_pins());
        let mut pos = vec![0usize; tg.num_pins()];
        for (i, &p) in order.iter().enumerate() {
            pos[p] = i;
        }
        for &(from, to, _) in tg.arcs() {
            assert!(pos[from] < pos[to], "arc {from}->{to} violates order");
        }
    }

    #[test]
    fn levels_increase_along_arcs() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        for &(from, to, _) in tg.arcs() {
            assert!(tg.levels()[to] > tg.levels()[from]);
        }
        assert_eq!(tg.levels()[tg.po_pins()[0]], 5); // PI →net→ in →cell→ out →net→ in →cell→ out →net→ PO
    }

    #[test]
    fn driver_fanout_counts_sinks() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let pi = tg.pi_pins()[0];
        assert_eq!(tg.driver_fanout(pi), 1);
        // A sink pin has no driver fanout.
        let sink = tg.net_sink_pins(0)[0];
        assert_eq!(tg.driver_fanout(sink), 0);
    }

    #[test]
    fn undirected_view_is_connected() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        let g = tg.to_undirected_graph().unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_nodes(), tg.num_pins());
        assert_eq!(g.num_edges(), tg.num_arcs());
    }

    #[test]
    fn fanin_fanout_indices_consistent() {
        let (lib, n) = chain();
        let tg = TimingGraph::new(&n, &lib).unwrap();
        for p in 0..tg.num_pins() {
            for &ai in tg.fanout_arcs(p) {
                assert_eq!(tg.arcs()[ai].0, p);
            }
            for &ai in tg.fanin_arcs(p) {
                assert_eq!(tg.arcs()[ai].1, p);
            }
        }
    }
}
