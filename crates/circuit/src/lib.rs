//! Circuit substrate for the CirSTAG reproduction: cell library, gate-level
//! netlists, pin-level timing graphs, a pre-routing static timing analysis
//! (STA) engine, synthetic benchmark generation, a BLIF-flavoured netlist
//! format, GNN feature extraction and capacitance perturbations.
//!
//! This crate plays the role of the proprietary datasets and the STA ground
//! truth in the paper's Case Study A: nodes of the derived [`TimingGraph`]
//! are cell pins, edges are net connections and intra-cell arcs (exactly the
//! graph convention of the timing-GNN the paper builds on), and
//! [`StaEngine`] produces the arrival times the GNN learns to predict.
//!
//! # Example
//!
//! ```
//! use cirstag_circuit::{generate_circuit, CellLibrary, GeneratorConfig, StaEngine, TimingGraph};
//!
//! # fn main() -> Result<(), cirstag_circuit::CircuitError> {
//! let library = CellLibrary::standard();
//! let netlist = generate_circuit(&library, &GeneratorConfig { num_gates: 50, ..Default::default() }, 7)?;
//! let timing = TimingGraph::new(&netlist, &library)?;
//! let sta = StaEngine::new(&timing);
//! let arrivals = sta.arrival_times();
//! assert_eq!(arrivals.len(), timing.num_pins());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod error;
mod features;
mod generator;
mod netlist;
mod parser;
mod partition;
mod perturb;
mod simulate;
mod sta;
mod timing_graph;

pub use cell::{Cell, CellId, CellKind, CellLibrary};
pub use error::CircuitError;
pub use features::{extract_features, FeatureConfig};
pub use generator::{
    benchmark_suite, generate_circuit, stress_suite, BenchmarkSpec, GeneratorConfig,
};
pub use netlist::{CellInstance, Net, NetId, Netlist};
pub use parser::{parse_netlist, write_netlist};
pub use partition::{
    apply_delta, partition_graph, DeltaOp, DeltaOutcome, NetlistDelta, PartitionConfig,
    Partitioning, MIN_PARTITION_NODES,
};
pub use perturb::{perturb_pin_caps, CapPerturbation};
pub use simulate::{functional_agreement, simulate, simulate_outputs};
pub use sta::StaEngine;
pub use timing_graph::{PinId, PinInfo, PinRole, TimingGraph};
