//! Capacitance perturbations for stability studies (Case Study A).

use crate::{CircuitError, PinId, PinRole, TimingGraph};

/// A multiplicative pin-capacitance perturbation: the capacitance of every
/// listed pin is scaled by `scale` (the paper uses 5× and 10×).
#[derive(Debug, Clone, PartialEq)]
pub struct CapPerturbation {
    /// Pins whose capacitance is scaled.
    pub pins: Vec<PinId>,
    /// Multiplicative factor (e.g. `5.0`, `10.0`).
    pub scale: f64,
}

impl CapPerturbation {
    /// Creates a perturbation after validating the scale.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidArgument`] for non-positive or
    /// non-finite scales.
    pub fn new(pins: Vec<PinId>, scale: f64) -> Result<Self, CircuitError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(CircuitError::InvalidArgument {
                reason: format!("scale {scale} must be positive and finite"),
            });
        }
        Ok(CapPerturbation { pins, scale })
    }
}

/// Applies a perturbation to the graph's base capacitances, returning the
/// perturbed vector.
///
/// Primary-output pins are silently skipped, matching the paper's protocol
/// ("nodes representing output pins were excluded, as they do not directly
/// affect internal timing dynamics").
///
/// # Errors
///
/// Returns [`CircuitError::InvalidArgument`] when a pin id is out of range.
pub fn perturb_pin_caps(
    timing: &TimingGraph,
    perturbation: &CapPerturbation,
) -> Result<Vec<f64>, CircuitError> {
    let mut caps = timing.pin_caps();
    for &p in &perturbation.pins {
        if p >= caps.len() {
            return Err(CircuitError::InvalidArgument {
                reason: format!("pin {p} out of range for {} pins", caps.len()),
            });
        }
        if timing.pin(p).role == PinRole::PrimaryOutput {
            continue;
        }
        caps[p] *= perturbation.scale;
    }
    Ok(caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_circuit, CellLibrary, GeneratorConfig, StaEngine, TimingGraph};

    fn setup() -> TimingGraph {
        let lib = CellLibrary::standard();
        let n = generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 60,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        TimingGraph::new(&n, &lib).unwrap()
    }

    #[test]
    fn scales_selected_pins_only() {
        let tg = setup();
        // Pick a couple of cell-input pins.
        let victims: Vec<usize> = (0..tg.num_pins())
            .filter(|&p| matches!(tg.pin(p).role, crate::PinRole::CellInput { .. }))
            .take(3)
            .collect();
        let pert = CapPerturbation::new(victims.clone(), 5.0).unwrap();
        let caps = perturb_pin_caps(&tg, &pert).unwrap();
        let base = tg.pin_caps();
        for p in 0..tg.num_pins() {
            if victims.contains(&p) {
                assert!((caps[p] - 5.0 * base[p]).abs() < 1e-15);
            } else {
                assert_eq!(caps[p], base[p]);
            }
        }
    }

    #[test]
    fn primary_outputs_are_skipped() {
        let tg = setup();
        let po = tg.po_pins()[0];
        let pert = CapPerturbation::new(vec![po], 10.0).unwrap();
        let caps = perturb_pin_caps(&tg, &pert).unwrap();
        assert_eq!(caps[po], tg.pin_caps()[po]);
    }

    #[test]
    fn perturbation_increases_critical_delay() {
        let tg = setup();
        let base = StaEngine::new(&tg).critical_arrival();
        let victims: Vec<usize> = (0..tg.num_pins())
            .filter(|&p| matches!(tg.pin(p).role, crate::PinRole::CellInput { .. }))
            .collect();
        let pert = CapPerturbation::new(victims, 10.0).unwrap();
        let caps = perturb_pin_caps(&tg, &pert).unwrap();
        let perturbed = StaEngine::with_caps(&tg, &caps).critical_arrival();
        assert!(perturbed > base, "{perturbed} vs {base}");
    }

    #[test]
    fn validation() {
        let tg = setup();
        assert!(CapPerturbation::new(vec![0], 0.0).is_err());
        assert!(CapPerturbation::new(vec![0], f64::NAN).is_err());
        let pert = CapPerturbation::new(vec![999_999], 2.0).unwrap();
        assert!(perturb_pin_caps(&tg, &pert).is_err());
    }
}
