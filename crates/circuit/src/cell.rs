//! Standard-cell library with a linear delay model.

use crate::CircuitError;

/// Index of a cell within a [`CellLibrary`].
pub type CellId = usize;

/// Logical function family of a cell, used for feature one-hots and for the
/// Boolean bookkeeping in the reverse-engineering case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CellKind {
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input NAND.
    Nand2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer (inputs: a, b, select).
    Mux2,
    /// 3-input AND-OR-invert (inputs: a, b, c) computing `!(a·b + c)`.
    Aoi21,
    /// Full-adder majority (carry) gate, 3 inputs.
    Maj3,
}

impl CellKind {
    /// All kinds in library order.
    pub const ALL: [CellKind; 11] = [
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::Nand2,
        CellKind::Or2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Maj3,
    ];

    /// Canonical cell name.
    pub fn name(&self) -> &'static str {
        match self {
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::Nand2 => "NAND2",
            CellKind::Or2 => "OR2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Maj3 => "MAJ3",
        }
    }

    /// Parses a canonical cell name.
    pub fn from_name(name: &str) -> Option<CellKind> {
        CellKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Evaluates the cell's Boolean function (used by the reverse-engineering
    /// substrate to derive functionality features).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the cell arity.
    pub fn evaluate(&self, inputs: &[bool]) -> bool {
        match self {
            CellKind::Buf => inputs[0], // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Inv => !inputs[0], // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::And2 => inputs[0] && inputs[1], // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Nand2 => !(inputs[0] && inputs[1]), // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Or2 => inputs[0] || inputs[1], // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Nor2 => !(inputs[0] || inputs[1]), // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Xor2 => inputs[0] ^ inputs[1], // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]), // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Mux2 => {
                // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
                if inputs[2] {
                    inputs[1] // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
                } else {
                    inputs[0] // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
                }
            }
            CellKind::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]), // cirstag-lint: allow(no-panic-in-lib) -- arity is the documented panic contract of evaluate; netlist construction fixes fan-in
            CellKind::Maj3 => {
                // Majority: at least two of the three inputs are high.
                inputs.iter().filter(|&&b| b).count() >= 2
            }
        }
    }

    /// Number of input pins.
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::Mux2 | CellKind::Aoi21 | CellKind::Maj3 => 3,
            _ => 2,
        }
    }
}

/// A library cell with a linear (load-dependent) delay model:
/// `delay = intrinsic_delay + drive_resistance × load_capacitance`.
///
/// Units are arbitrary but consistent: delays in nanoseconds, capacitance in
/// picofarads, resistance in kΩ (so kΩ·pF = ns).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Function family.
    pub kind: CellKind,
    /// Fixed delay component (ns).
    pub intrinsic_delay: f64,
    /// Output drive resistance (kΩ).
    pub drive_resistance: f64,
    /// Input-pin capacitances, one per input pin (pF).
    pub input_caps: Vec<f64>,
    /// Parasitic capacitance of the output pin itself (pF).
    pub output_cap: f64,
}

impl Cell {
    /// Number of input pins.
    pub fn arity(&self) -> usize {
        self.input_caps.len()
    }

    /// Gate delay for the given load capacitance.
    pub fn delay(&self, load_cap: f64) -> f64 {
        self.intrinsic_delay + self.drive_resistance * load_cap
    }
}

/// A standard-cell library.
///
/// # Example
///
/// ```
/// use cirstag_circuit::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::standard();
/// let nand = lib.by_kind(CellKind::Nand2).expect("standard library has NAND2");
/// assert_eq!(lib.cell(nand).arity(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    cells: Vec<Cell>,
}

impl CellLibrary {
    /// Builds a library from explicit cells.
    pub fn new(cells: Vec<Cell>) -> Self {
        CellLibrary { cells }
    }

    /// The default 11-cell library with 45 nm-flavoured characteristics:
    /// inverting gates are fast with low input capacitance, complex gates
    /// (XOR/MUX/MAJ) are slower and heavier, matching the relative ordering
    /// of open PDKs.
    pub fn standard() -> Self {
        fn cell(kind: CellKind, d: f64, r: f64, cin: f64) -> Cell {
            Cell {
                kind,
                intrinsic_delay: d,
                drive_resistance: r,
                input_caps: vec![cin; kind.arity()],
                output_cap: 0.2 * cin,
            }
        }
        CellLibrary::new(vec![
            cell(CellKind::Buf, 0.030, 1.8, 0.0015),
            cell(CellKind::Inv, 0.015, 1.4, 0.0016),
            cell(CellKind::And2, 0.045, 2.2, 0.0018),
            cell(CellKind::Nand2, 0.025, 1.8, 0.0017),
            cell(CellKind::Or2, 0.050, 2.4, 0.0018),
            cell(CellKind::Nor2, 0.030, 2.0, 0.0017),
            cell(CellKind::Xor2, 0.070, 3.0, 0.0026),
            cell(CellKind::Xnor2, 0.072, 3.0, 0.0026),
            cell(CellKind::Mux2, 0.065, 2.6, 0.0022),
            cell(CellKind::Aoi21, 0.040, 2.3, 0.0019),
            cell(CellKind::Maj3, 0.080, 3.2, 0.0024),
        ])
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Borrows cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds; use [`CellLibrary::get`] for a
    /// fallible lookup.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id]
    }

    /// Fallible lookup of cell `id`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownCell`] when `id` is out of bounds.
    pub fn get(&self, id: CellId) -> Result<&Cell, CircuitError> {
        self.cells.get(id).ok_or_else(|| CircuitError::UnknownCell {
            name: format!("#{id}"),
        })
    }

    /// Finds the first cell of the given kind.
    pub fn by_kind(&self, kind: CellKind) -> Option<CellId> {
        self.cells.iter().position(|c| c.kind == kind)
    }

    /// Finds a cell by canonical name.
    pub fn by_name(&self, name: &str) -> Option<CellId> {
        CellKind::from_name(name).and_then(|k| self.by_kind(k))
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate()
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_covers_all_kinds() {
        let lib = CellLibrary::standard();
        assert_eq!(lib.len(), CellKind::ALL.len());
        for kind in CellKind::ALL {
            let id = lib.by_kind(kind).expect("kind present");
            assert_eq!(lib.cell(id).kind, kind);
            assert_eq!(lib.cell(id).arity(), kind.arity());
        }
    }

    #[test]
    fn delay_model_is_affine_in_load() {
        let lib = CellLibrary::standard();
        let inv = lib.cell(lib.by_kind(CellKind::Inv).unwrap());
        let d0 = inv.delay(0.0);
        let d1 = inv.delay(1.0);
        let d2 = inv.delay(2.0);
        assert!((d2 - d1 - (d1 - d0)).abs() < 1e-12);
        assert_eq!(d0, inv.intrinsic_delay);
    }

    #[test]
    fn boolean_functions_truth_tables() {
        assert!(CellKind::Nand2.evaluate(&[true, false]));
        assert!(!CellKind::Nand2.evaluate(&[true, true]));
        assert!(CellKind::Xor2.evaluate(&[true, false]));
        assert!(!CellKind::Xor2.evaluate(&[true, true]));
        assert!(CellKind::Mux2.evaluate(&[false, true, true])); // selects b
        assert!(!CellKind::Mux2.evaluate(&[false, true, false])); // selects a
        assert!(CellKind::Maj3.evaluate(&[true, true, false]));
        assert!(!CellKind::Maj3.evaluate(&[true, false, false]));
        assert!(!CellKind::Aoi21.evaluate(&[true, true, false]));
        assert!(CellKind::Aoi21.evaluate(&[false, true, false]));
    }

    #[test]
    fn name_roundtrip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CellKind::from_name("BOGUS"), None);
    }

    #[test]
    fn library_lookup() {
        let lib = CellLibrary::standard();
        assert!(lib.by_name("XOR2").is_some());
        assert!(lib.by_name("NOPE").is_none());
        assert!(lib.get(999).is_err());
        assert!(!lib.is_empty());
    }

    #[test]
    fn inverting_gates_are_faster_than_complex_gates() {
        let lib = CellLibrary::standard();
        let nand = lib.cell(lib.by_kind(CellKind::Nand2).unwrap());
        let xor = lib.cell(lib.by_kind(CellKind::Xor2).unwrap());
        assert!(nand.intrinsic_delay < xor.intrinsic_delay);
        assert!(nand.input_caps[0] < xor.input_caps[0]);
    }
}
