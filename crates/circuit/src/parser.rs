//! A BLIF-flavoured text format for netlists.
//!
//! ```text
//! .model adder4
//! .inputs a b cin
//! .outputs sum cout
//! .wirecap n1 0.0012
//! .gate NAND2 a b n1
//! .gate INV n1 sum
//! .end
//! ```
//!
//! Each `.gate` line is `KIND in1 … inK out`. `.wirecap` lines are optional
//! (default 0.001 pF) and may appear before or after the nets they name are
//! first used.

use crate::{CellLibrary, CircuitError, Netlist};
use std::collections::HashMap;

/// Serializes a netlist to the text format (see module docs).
pub fn write_netlist(netlist: &Netlist, library: &CellLibrary) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", netlist.name));
    let names: Vec<&str> = netlist.nets.iter().map(|n| n.name.as_str()).collect();
    out.push_str(".inputs");
    for &pi in &netlist.primary_inputs {
        out.push(' ');
        out.push_str(names[pi]);
    }
    out.push('\n');
    // Emit `.wirecap` for every net, in net-id order, *before* `.outputs`:
    // the parser interns nets at first mention, so this ordering makes
    // parse(write(n)) reproduce the original net ids exactly.
    for net in &netlist.nets {
        out.push_str(&format!(".wirecap {} {}\n", net.name, net.wire_cap));
    }
    out.push_str(".outputs");
    for &po in &netlist.primary_outputs {
        out.push(' ');
        out.push_str(names[po]);
    }
    out.push('\n');
    for cell in &netlist.cells {
        let kind = library.cell(cell.cell).kind.name();
        out.push_str(&format!(".gate {kind}"));
        for &i in &cell.inputs {
            out.push(' ');
            out.push_str(names[i]);
        }
        out.push(' ');
        out.push_str(names[cell.output]);
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

/// Parses the text format produced by [`write_netlist`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with a line number for malformed input,
/// and propagates [`Netlist::validate`] failures for structurally invalid
/// designs.
pub fn parse_netlist(text: &str, library: &CellLibrary) -> Result<Netlist, CircuitError> {
    let mut netlist = Netlist::new("unnamed");
    let mut net_ids: HashMap<String, usize> = HashMap::new();
    let mut pending_caps: HashMap<String, f64> = HashMap::new();
    let mut gate_counter = 0usize;
    let mut saw_end = false;

    let intern = |netlist: &mut Netlist,
                  net_ids: &mut HashMap<String, usize>,
                  pending: &HashMap<String, f64>,
                  name: &str| {
        if let Some(&id) = net_ids.get(name) {
            return id;
        }
        let cap = pending.get(name).copied().unwrap_or(0.001);
        let id = netlist.add_net(name, cap);
        net_ids.insert(name.to_string(), id);
        id
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if saw_end {
            return Err(CircuitError::Parse {
                line: lineno,
                message: "content after .end".to_string(),
            });
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token"); // cirstag-lint: allow(no-panic-in-lib) -- split_whitespace on a non-blank line always yields a head token
        match head {
            ".model" => {
                netlist.name = tokens.next().unwrap_or("unnamed").to_string();
            }
            ".inputs" => {
                for t in tokens {
                    let id = intern(&mut netlist, &mut net_ids, &pending_caps, t);
                    netlist.primary_inputs.push(id);
                }
            }
            ".outputs" => {
                for t in tokens {
                    let id = intern(&mut netlist, &mut net_ids, &pending_caps, t);
                    netlist.primary_outputs.push(id);
                }
            }
            ".wirecap" => {
                let name = tokens.next().ok_or_else(|| CircuitError::Parse {
                    line: lineno,
                    message: ".wirecap needs a net name".to_string(),
                })?;
                let cap: f64 = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    CircuitError::Parse {
                        line: lineno,
                        message: ".wirecap needs a numeric value".to_string(),
                    }
                })?;
                pending_caps.insert(name.to_string(), cap);
                let id = intern(&mut netlist, &mut net_ids, &pending_caps, name);
                netlist.nets[id].wire_cap = cap;
            }
            ".gate" => {
                let kind_name = tokens.next().ok_or_else(|| CircuitError::Parse {
                    line: lineno,
                    message: ".gate needs a cell kind".to_string(),
                })?;
                let cell_id = library
                    .by_name(kind_name)
                    .ok_or_else(|| CircuitError::Parse {
                        line: lineno,
                        message: format!("unknown cell kind {kind_name}"),
                    })?;
                let nets: Vec<&str> = tokens.collect();
                let arity = library.cell(cell_id).arity();
                if nets.len() != arity + 1 {
                    return Err(CircuitError::Parse {
                        line: lineno,
                        message: format!(
                            "{kind_name} needs {arity} inputs + 1 output, got {} nets",
                            nets.len()
                        ),
                    });
                }
                let ids: Vec<usize> = nets
                    .iter()
                    .map(|t| intern(&mut netlist, &mut net_ids, &pending_caps, t))
                    .collect();
                let output = *ids.last().expect("arity + 1 nets"); // cirstag-lint: allow(no-panic-in-lib) -- token-count check above guarantees arity + 1 nets
                let inputs = ids[..ids.len() - 1].to_vec();
                netlist.add_cell(format!("g{gate_counter}"), cell_id, inputs, output)?;
                gate_counter += 1;
            }
            ".end" => {
                saw_end = true;
            }
            other => {
                return Err(CircuitError::Parse {
                    line: lineno,
                    message: format!("unknown directive {other}"),
                });
            }
        }
    }
    netlist.validate(library)?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_circuit, GeneratorConfig};

    const SAMPLE: &str = "\
.model tiny
.inputs a b
.outputs y
.wirecap t 0.005
.gate NAND2 a b t
.gate INV t y
.end
";

    #[test]
    fn parses_sample() {
        let lib = CellLibrary::standard();
        let n = parse_netlist(SAMPLE, &lib).unwrap();
        assert_eq!(n.name, "tiny");
        assert_eq!(n.num_cells(), 2);
        assert_eq!(n.primary_inputs.len(), 2);
        assert_eq!(n.primary_outputs.len(), 1);
        // Wirecap applied even though declared before first use.
        let t = n.nets.iter().find(|nt| nt.name == "t").unwrap();
        assert_eq!(t.wire_cap, 0.005);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = CellLibrary::standard();
        let original = generate_circuit(
            &lib,
            &GeneratorConfig {
                num_gates: 60,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        let text = write_netlist(&original, &lib);
        let parsed = parse_netlist(&text, &lib).unwrap();
        assert_eq!(parsed.num_cells(), original.num_cells());
        assert_eq!(parsed.num_nets(), original.num_nets());
        assert_eq!(parsed.primary_inputs.len(), original.primary_inputs.len());
        assert_eq!(parsed.primary_outputs.len(), original.primary_outputs.len());
        for (a, b) in parsed.cells.iter().zip(&original.cells) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.output, b.output);
        }
        for (a, b) in parsed.nets.iter().zip(&original.nets) {
            assert!((a.wire_cap - b.wire_cap).abs() < 1e-15);
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let lib = CellLibrary::standard();
        let bad = ".model x\n.inputs a\n.gate BOGUS a y\n.end\n";
        match parse_netlist(bad, &lib) {
            Err(CircuitError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_gate_arity_rejected() {
        let lib = CellLibrary::standard();
        let bad = ".model x\n.inputs a\n.gate NAND2 a y\n.end\n";
        assert!(matches!(
            parse_netlist(bad, &lib),
            Err(CircuitError::Parse { .. })
        ));
    }

    #[test]
    fn content_after_end_rejected() {
        let lib = CellLibrary::standard();
        let bad = ".model x\n.end\n.inputs a\n";
        assert!(matches!(
            parse_netlist(bad, &lib),
            Err(CircuitError::Parse { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let lib = CellLibrary::standard();
        let text = format!("# header comment\n\n{SAMPLE}");
        assert!(parse_netlist(&text, &lib).is_ok());
    }

    #[test]
    fn structurally_invalid_parse_fails_validation() {
        let lib = CellLibrary::standard();
        // Net y driven twice.
        let bad = "\
.model x
.inputs a
.outputs y
.gate INV a y
.gate BUF a y
.end
";
        assert!(matches!(
            parse_netlist(bad, &lib),
            Err(CircuitError::BadDriver { .. })
        ));
    }
}
