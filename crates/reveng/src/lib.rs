//! Functional reverse-engineering substrate (Case Study B).
//!
//! Reproduces the data side of the paper's second case study: netlists are
//! stitched together from labelled sub-circuit modules (adders, comparators,
//! parity trees, mux trees, decoders, multipliers, incrementers), a
//! gate-level graph is derived (nodes = gates, edges = gate connections),
//! and per-gate features encode the Boolean functionality of the local
//! neighborhood — the setup of the GAT-based sub-circuit classifier \[4\].
//! Topology perturbations (input rewiring) complete the stability-study
//! tooling.
//!
//! # Example
//!
//! ```
//! use cirstag_reveng::{build_interconnected, InterconnectedConfig};
//!
//! # fn main() -> Result<(), cirstag_circuit::CircuitError> {
//! let dataset = build_interconnected(&InterconnectedConfig::default(), 7)?;
//! assert_eq!(dataset.labels.len(), dataset.netlist.num_cells());
//! assert!(dataset.gate_graph.is_connected());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod features;
mod modules;
mod perturb;

pub use dataset::{build_interconnected, gate_graph, InterconnectedConfig, LabeledDataset};
pub use features::{functionality_features, NeighborhoodConfig};
pub use modules::{build_standalone_module, StandaloneModule, SubcircuitKind, NUM_CLASSES};
pub use perturb::rewire_gate_inputs;
