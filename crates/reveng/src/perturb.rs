//! Topology perturbations: gate-input rewiring (Case Study B).

use cirstag_circuit::{CircuitError, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Rewires one input of each selected gate to a different, *earlier* net
/// (preserving acyclicity), returning the perturbed netlist. This is the
/// topology perturbation of Case Study B: the gate-level graph changes while
/// gate counts and labels stay fixed, so classifier embeddings / F1 can be
/// compared before and after.
///
/// Deterministic in `seed`.
///
/// # Errors
///
/// - [`CircuitError::InvalidArgument`] for out-of-range gate indices.
/// - Propagates validation failures (cannot occur: rewiring to earlier nets
///   keeps the DAG property and drivers unchanged).
pub fn rewire_gate_inputs(
    netlist: &Netlist,
    gates: &[usize],
    seed: u64,
) -> Result<Netlist, CircuitError> {
    let mut out = netlist.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    // A net is "earlier" than gate g when it is a primary input or driven by
    // a cell with smaller topological rank.
    let order = netlist.topological_order()?;
    let mut rank = vec![0usize; netlist.num_cells()];
    for (r, &c) in order.iter().enumerate() {
        rank[c] = r;
    }
    let drivers = netlist.net_drivers();
    for &g in gates {
        if g >= out.cells.len() {
            return Err(CircuitError::InvalidArgument {
                reason: format!("gate {g} out of range for {} gates", out.cells.len()),
            });
        }
        // Candidate replacement nets: primary inputs or outputs of
        // strictly-earlier gates, excluding current inputs and own output.
        let current = out.cells[g].clone();
        let candidates: Vec<usize> = (0..out.nets.len())
            .filter(|&n| {
                n != current.output
                    && !current.inputs.contains(&n)
                    && match drivers[n] {
                        None => true, // primary input
                        Some(d) => rank[d] < rank[g],
                    }
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let which_input = rng.random_range(0..current.inputs.len());
        let replacement = candidates[rng.random_range(0..candidates.len())];
        out.cells[g].inputs[which_input] = replacement;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_interconnected, gate_graph, InterconnectedConfig};

    #[test]
    fn rewired_netlist_stays_valid() {
        let d = build_interconnected(&InterconnectedConfig::default(), 11).unwrap();
        let victims: Vec<usize> = (0..d.netlist.num_cells()).step_by(5).collect();
        let rewired = rewire_gate_inputs(&d.netlist, &victims, 3).unwrap();
        rewired.validate(&d.library).unwrap();
        assert_eq!(rewired.num_cells(), d.netlist.num_cells());
    }

    #[test]
    fn rewiring_changes_topology() {
        let d = build_interconnected(&InterconnectedConfig::default(), 12).unwrap();
        let victims: Vec<usize> = (0..d.netlist.num_cells()).step_by(3).collect();
        let rewired = rewire_gate_inputs(&d.netlist, &victims, 5).unwrap();
        let g_before = gate_graph(&d.netlist).unwrap();
        let g_after = gate_graph(&rewired).unwrap();
        // Some edges must differ.
        let changed = g_before
            .edges()
            .iter()
            .filter(|e| g_after.edge_weight(e.u, e.v).is_none())
            .count();
        assert!(changed > 0, "no edges changed");
    }

    #[test]
    fn empty_selection_is_identity() {
        let d = build_interconnected(&InterconnectedConfig::default(), 13).unwrap();
        let rewired = rewire_gate_inputs(&d.netlist, &[], 1).unwrap();
        assert_eq!(rewired, d.netlist);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = build_interconnected(&InterconnectedConfig::default(), 14).unwrap();
        let victims = vec![3usize, 8, 15];
        let a = rewire_gate_inputs(&d.netlist, &victims, 9).unwrap();
        let b = rewire_gate_inputs(&d.netlist, &victims, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_rejected() {
        let d = build_interconnected(&InterconnectedConfig::default(), 15).unwrap();
        assert!(rewire_gate_inputs(&d.netlist, &[999_999], 0).is_err());
    }
}
