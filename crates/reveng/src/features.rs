//! Neighborhood Boolean-functionality features for gate classification.

use cirstag_circuit::{CellKind, CellLibrary, CircuitError, Netlist};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;

/// Options for [`functionality_features`].
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodConfig {
    /// Neighborhood radius in hops (1 or 2 is typical).
    pub radius: usize,
    /// Include normalized fanin/fanout counts.
    pub degree_features: bool,
}

impl Default for NeighborhoodConfig {
    fn default() -> Self {
        NeighborhoodConfig {
            radius: 2,
            degree_features: true,
        }
    }
}

/// Builds per-gate features describing the Boolean functionality of each
/// gate's local neighborhood, as used by the sub-circuit classifier of \[4\]:
///
/// - own cell-kind one-hot (11 columns);
/// - for each hop `1..=radius`, a normalized histogram of the cell kinds
///   found at exactly that hop distance in the gate graph (11 columns per
///   hop);
/// - optionally, normalized in/out degree (2 columns).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidArgument`] when `radius == 0` or the graph
/// node count does not match the netlist gate count.
pub fn functionality_features(
    netlist: &Netlist,
    library: &CellLibrary,
    gate_graph: &Graph,
    config: &NeighborhoodConfig,
) -> Result<DenseMatrix, CircuitError> {
    if config.radius == 0 {
        return Err(CircuitError::InvalidArgument {
            reason: "radius must be at least 1".to_string(),
        });
    }
    let n = netlist.num_cells();
    if gate_graph.num_nodes() != n {
        return Err(CircuitError::InvalidArgument {
            reason: format!(
                "gate graph has {} nodes but netlist has {n} gates",
                gate_graph.num_nodes()
            ),
        });
    }
    let k = CellKind::ALL.len();
    let kind_index: Vec<usize> = netlist
        .cells
        .iter()
        .map(|c| {
            let kind = library.cell(c.cell).kind;
            CellKind::ALL
                .iter()
                .position(|&kk| kk == kind)
                .expect("kind in ALL") // cirstag-lint: allow(no-panic-in-lib) -- CellKind::ALL enumerates every variant, so position always exists
        })
        .collect();

    let deg_cols = if config.degree_features { 2 } else { 0 };
    let width = k * (1 + config.radius) + deg_cols;
    let mut x = DenseMatrix::zeros(n, width);

    // BFS per node out to `radius` hops (cheap: gate graphs are sparse and
    // the radius is tiny).
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for g in 0..n {
        x.set(g, kind_index[g], 1.0);
        // BFS.
        dist[g] = 0;
        touched.push(g);
        let mut frontier = vec![g];
        for hop in 1..=config.radius {
            let mut next = Vec::new();
            let mut hist = vec![0usize; k];
            for &u in &frontier {
                for (v, _) in gate_graph.neighbors(u) {
                    if dist[v] == usize::MAX {
                        dist[v] = hop;
                        touched.push(v);
                        next.push(v);
                        hist[kind_index[v]] += 1;
                    }
                }
            }
            let total: usize = hist.iter().sum();
            if total > 0 {
                for (j, &h) in hist.iter().enumerate() {
                    x.set(g, k * hop + j, h as f64 / total as f64);
                }
            }
            frontier = next;
        }
        for &t in &touched {
            dist[t] = usize::MAX;
        }
        touched.clear();
        if config.degree_features {
            let drivers = &netlist.cells[g].inputs;
            x.set(g, width - 2, drivers.len() as f64 / 3.0);
            x.set(
                g,
                width - 1,
                (1.0 + gate_graph.neighbor_count(g) as f64).ln(),
            );
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_interconnected, InterconnectedConfig};

    #[test]
    fn shape_and_finiteness() {
        let d = build_interconnected(&InterconnectedConfig::default(), 9).unwrap();
        let x = functionality_features(
            &d.netlist,
            &d.library,
            &d.gate_graph,
            &NeighborhoodConfig::default(),
        )
        .unwrap();
        assert_eq!(x.nrows(), d.netlist.num_cells());
        assert_eq!(x.ncols(), 11 * 3 + 2);
        assert!(x.all_finite());
    }

    #[test]
    fn own_kind_onehot_set() {
        let d = build_interconnected(&InterconnectedConfig::default(), 2).unwrap();
        let x = functionality_features(
            &d.netlist,
            &d.library,
            &d.gate_graph,
            &NeighborhoodConfig {
                radius: 1,
                degree_features: false,
            },
        )
        .unwrap();
        for g in 0..d.netlist.num_cells() {
            let own: f64 = (0..11).map(|j| x.get(g, j)).sum();
            assert_eq!(own, 1.0, "gate {g}");
        }
    }

    #[test]
    fn hop_histograms_are_normalized() {
        let d = build_interconnected(&InterconnectedConfig::default(), 4).unwrap();
        let x = functionality_features(
            &d.netlist,
            &d.library,
            &d.gate_graph,
            &NeighborhoodConfig {
                radius: 2,
                degree_features: false,
            },
        )
        .unwrap();
        for g in 0..d.netlist.num_cells() {
            for hop in 1..=2 {
                let s: f64 = (0..11).map(|j| x.get(g, 11 * hop + j)).sum();
                assert!(
                    s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9,
                    "gate {g} hop {hop} histogram sums to {s}"
                );
            }
        }
    }

    #[test]
    fn different_classes_have_different_features_on_average() {
        let d = build_interconnected(&InterconnectedConfig::default(), 6).unwrap();
        let x = functionality_features(
            &d.netlist,
            &d.library,
            &d.gate_graph,
            &NeighborhoodConfig::default(),
        )
        .unwrap();
        // Mean feature vector per class; adder and parity should differ.
        let mut means = vec![vec![0.0; x.ncols()]; crate::NUM_CLASSES];
        let mut counts = vec![0usize; crate::NUM_CLASSES];
        for (g, &l) in d.labels.iter().enumerate() {
            counts[l] += 1;
            for j in 0..x.ncols() {
                means[l][j] += x.get(g, j);
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                for v in m.iter_mut() {
                    *v /= c as f64;
                }
            }
        }
        let diff: f64 = means[0]
            .iter()
            .zip(&means[2])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.1, "class means too similar: {diff}");
    }

    #[test]
    fn validation() {
        let d = build_interconnected(&InterconnectedConfig::default(), 0).unwrap();
        assert!(functionality_features(
            &d.netlist,
            &d.library,
            &d.gate_graph,
            &NeighborhoodConfig {
                radius: 0,
                degree_features: true
            }
        )
        .is_err());
        let wrong = cirstag_graph::Graph::new(3);
        assert!(functionality_features(
            &d.netlist,
            &d.library,
            &wrong,
            &NeighborhoodConfig::default()
        )
        .is_err());
    }
}
